//! §4's blind spot, made concrete: the trace model cannot express
//! deadlock, but the operational tools built beside it can find one.
//!
//! This example demonstrates:
//! 1. a network that *jams* (mismatched rendezvous) — found by bounded
//!    deadlock search with a shortest witness trace;
//! 2. the §4 identity: `STOP | P` and `P` have identical trace sets, so
//!    no assertion (and no trace-based tool) can tell them apart;
//! 3. that `STOP` satisfies every satisfiable invariant — the reason the
//!    paper's title says *partial* correctness.
//!
//! Run with: `cargo run --example deadlock`

use csp::prelude::*;
use csp::{compare, timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A jammable network --------------------------------------
    let mut wb = Workbench::new().with_universe(Universe::new(9));
    wb.define_source(
        "-- the peers agree on the first exchange but not the second
         left  = w!1 -> w!2 -> STOP
         right = w?x:{1} -> w?y:{9} -> STOP
         net   = left || right",
    )?;
    let report = wb.deadlocks("net", 4)?;
    println!(
        "deadlock search over `net` ({} states explored):",
        report.states_explored
    );
    for d in &report.deadlocks {
        println!(
            "  {} after {} — stuck at `{}`",
            if d.terminated {
                "terminates"
            } else {
                "DEADLOCKS"
            },
            d.trace,
            d.state
        );
        println!("{}", timeline(&d.trace));
    }
    assert!(!report.deadlock_free());

    // The runtime hits the same wall:
    let run = wb.run("net", RunOptions::default())?;
    println!(
        "executor: {} event(s) then deadlocked = {}\n",
        run.steps, run.deadlocked
    );
    assert!(run.deadlocked);

    // ---- 2. The §4 identity -----------------------------------------
    let mut pipe = Workbench::new().with_universe(Universe::new(1));
    pipe.define_source(csp::examples::PIPELINE_SRC)?;
    let plain = pipe.denote("copier", 4)?;
    let mut with_stop = Workbench::new().with_universe(Universe::new(1));
    with_stop.define_source(csp::examples::PIPELINE_SRC)?;
    with_stop.define_source("maybe = STOP | copier")?;
    let chosen = with_stop.denote("maybe", 4)?;
    println!(
        "§4 identity: traces(STOP | copier) == traces(copier)?  {}",
        compare(&plain, &chosen).is_none()
    );
    assert!(compare(&plain, &chosen).is_none());

    // ---- 3. STOP satisfies everything satisfiable --------------------
    let mut idle = Workbench::new();
    idle.define_source("donothing = STOP")?;
    idle.declare_channels(["input", "output"]);
    let verdict = idle.check_sat("donothing", "output <= input", 4)?;
    println!(
        "STOP sat output <= input?  {}   (hence: *partial* correctness only)",
        verdict.holds()
    );
    assert!(verdict.holds());

    println!(
        "\nthe deadlock finder sees what the trace model provably cannot —\n\
         the §4 gap this reproduction keeps faithfully open in the theory\n\
         and closes operationally in the tooling."
    );
    Ok(())
}
