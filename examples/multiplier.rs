//! The matrix-vector multiplier network of §1.3(5), driven with a real
//! matrix.
//!
//! The paper's network inputs successive matrix rows on channels
//! `row[1..3]` and emits the scalar products `Σⱼ v[j] × row[j]ᵢ` on
//! `output`. Here we attach *generator* processes that feed a concrete
//! matrix into the rows — showing how open networks compose — execute
//! the whole thing on threads, and check the outputs against an ordinary
//! matrix multiply. The §2 invariant is also model-checked.
//!
//! Run with: `cargo run --example multiplier`

use csp::prelude::*;

const V: [i64; 3] = [2, 3, 5];
const MATRIX: [[i64; 3]; 3] = [
    // Column j of this array feeds row[j] over time; each "instant" i
    // contributes one scalar product.
    [1, 0, 2],
    [0, 1, 1],
    [2, 2, 0],
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wb = Workbench::new().with_universe(Universe::new(30));
    wb.bind_vector("v", &V);

    // The paper's network (§1.3(5)) …
    wb.define_source(csp::examples::MULTIPLIER_SRC)?;

    // … plus three drivers feeding the matrix into the rows, and a
    // closed application network. Driver gen<j> sends MATRIX[i][j-1] for
    // i = 0, 1, 2, then stops.
    let mut drivers = String::new();
    for j in 1..=3 {
        let sends: Vec<String> = (0..3)
            .map(|i| format!("row[{j}]!{}", MATRIX[i][j - 1]))
            .collect();
        drivers.push_str(&format!("gen{j} = {} -> STOP\n", sends.join(" -> ")));
    }
    drivers.push_str("app = chan row[1..3]; (gen1 || gen2 || gen3 || network)\n");
    wb.define_source(&drivers)?;

    // Model-check the paper's §2 invariant on the open network first.
    let invariant = "forall i:NAT. 1 <= i and i <= #output => \
                     output[i] == v[1]*row[1][i] + v[2]*row[2][i] + v[3]*row[3][i]";
    println!("model-checking the §2 scalar-product invariant …");
    // (On the open multiplier with small rows; see csp-verify's tests for
    // the full sweep.)
    let mut small = Workbench::new().with_universe(Universe::new(10));
    small.bind_vector("v", &V);
    small.define_source(
        "mult[i:1..3] = row[i]?x:{0..1} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
         zeroes = col[0]!0 -> zeroes
         last = col[3]?y:NAT -> output!y -> last
         network = zeroes || mult[1] || mult[2] || mult[3] || last
         multiplier = chan col[0..3]; network",
    )?;
    let verdict = small.check_sat("multiplier", invariant, 4)?;
    println!("  invariant holds: {}\n", verdict.holds());
    assert!(verdict.holds());

    // Execute the driven application network.
    let run = wb.run(
        "app",
        RunOptions {
            max_steps: 60,
            scheduler: Scheduler::seeded(7),
            ..RunOptions::default()
        },
    )?;
    let outputs = run.visible.messages_on(&Channel::simple("output"));
    println!("network outputs: {outputs}");

    // Compare with a plain matrix-vector product.
    for (i, row) in MATRIX.iter().enumerate() {
        let expected: i64 = row.iter().zip(V.iter()).map(|(a, b)| a * b).sum();
        let got = outputs
            .at(i + 1)
            .and_then(Value::as_int)
            .ok_or("missing output")?;
        println!("  row {:?} · v {:?} = {expected}  (network: {got})", row, V);
        assert_eq!(got, expected, "output {i} mismatch");
    }
    println!(
        "\nall {} scalar products match the direct computation",
        MATRIX.len()
    );
    Ok(())
}
