//! Faults: run the copier pipeline while components crash, stall, and
//! starve — and watch partial correctness survive every one of them.
//!
//! The paper's §4 self-critique is that trace semantics proves only
//! *partial* correctness: `STOP | P = P`, so a silently dying component
//! is invisible to the proof system. This example turns that observation
//! into an experiment. Because failures only remove behaviour, every
//! degraded run's visible trace is still a trace of the healthy network,
//! and the proven invariant `output <= input` holds on every prefix of
//! it. And because a process's state is a function of its communication
//! history (§3), a crashed component can be rebuilt *exactly* by
//! replaying its alphabet's projection of the trace — which is what
//! `RestartPolicy::Replay` does.
//!
//! Run with: `cargo run --example faults`

use csp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(
        "copier = input?x:NAT -> wire!x -> copier
         recopier = wire?y:NAT -> output!y -> recopier
         pipeline = chan wire; (copier || recopier)",
    )?;

    // 1. A healthy baseline run.
    let healthy = wb.run(
        "pipeline",
        RunOptions {
            max_steps: 20,
            scheduler: Scheduler::seeded(7),
            ..RunOptions::default()
        },
    )?;
    println!("healthy:    {} — {}", healthy.outcome, healthy.visible);

    // 2. Kill the copier mid-run, fail-stop. The pipeline degrades: the
    //    recopier drains the wire, then the network stops. The outcome
    //    reports the death; the trace so far is still correct.
    let crashed = wb.run(
        "pipeline",
        RunOptions {
            max_steps: 20,
            scheduler: Scheduler::seeded(7),
            faults: FaultPlan::none().crash("copier", 6),
            ..RunOptions::default()
        },
    )?;
    println!("fail-stop:  {} — {}", crashed.outcome, crashed.visible);
    let conf = wb.conformance("pipeline", &crashed, ["output <= input"])?;
    println!(
        "            conformant degraded prefix: {}",
        conf.conforms()
    );

    // 3. Same crash, but supervised with restart-by-replay: the crashed
    //    copier is respawned and fast-forwarded through its alphabet's
    //    projection of the trace so far. §3 says state is a function of
    //    history, so the rebuilt copier is indistinguishable from the
    //    one that died — the run is event-for-event the healthy run.
    let replayed = wb.run(
        "pipeline",
        RunOptions {
            max_steps: 20,
            scheduler: Scheduler::seeded(7),
            faults: FaultPlan::none()
                .crash("copier", 6)
                .with_restart(RestartPolicy::Replay),
            ..RunOptions::default()
        },
    )?;
    println!("replayed:   {} — {}", replayed.outcome, replayed.visible);
    println!(
        "            identical to healthy run: {} ({} recovery)",
        replayed.full == healthy.full,
        replayed.recoveries(),
    );

    // 4. Sweep the claim: seeds × {healthy, crash, stall, delay} plans,
    //    every degraded prefix checked against the semantics and the
    //    invariant. This is the §4 caveat made precise — safety survives
    //    every fail-stop fault; only liveness is lost.
    let sweep = FaultSweep::new(
        0..6u64,
        [
            FaultPlan::none(),
            FaultPlan::none().crash("copier", 5),
            FaultPlan::none().stall("recopier", 3, 4),
            FaultPlan::none().delay("copier", 2, 3),
        ],
    )
    .with_max_steps(18);
    let report = wb.fault_conformance("pipeline", ["output <= input"], &sweep)?;
    let (ok, total) = report.tally();
    println!("\nfault sweep: {ok}/{total} degraded runs conformant");

    // 5. The watchdog: a deadline bounds even a run that would spin
    //    forever, and the outcome says why it ended.
    let bounded = wb.run(
        "pipeline",
        RunOptions {
            max_steps: usize::MAX,
            scheduler: Scheduler::seeded(7),
            supervision: Supervision::default().with_deadline(std::time::Duration::from_millis(50)),
            ..RunOptions::default()
        },
    )?;
    println!("watchdog:   {}", bounded.outcome);
    Ok(())
}
