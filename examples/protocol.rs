//! The ACK/NACK retransmission protocol of §1.3(2)–(4) and §2.2,
//! end-to-end:
//!
//! * prints the machine-checked **Table 1** proof of the sender lemma,
//! * completes the §2.2(2) receiver exercise,
//! * replays the six-step §2.2(3) theorem `protocol sat output ≤ input`,
//! * model-checks every claim, and
//! * executes the protocol, showing retransmissions on the concealed
//!   wire versus clean delivery on the visible channels.
//!
//! Run with: `cargo run --example protocol`

use csp::prelude::*;
use csp::proofs;
use csp::render_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Δ1–Δ3, with the abstract message set M sampled finitely.
    let mut wb = Workbench::new()
        .with_universe(Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp::examples::PROTOCOL_SRC)?;

    // --- Table 1 -----------------------------------------------------
    let table1 = proofs::protocol::sender_table1();
    let report = table1.check()?;
    println!("{}", render_report(table1.paper_ref, &report));

    // --- The receiver exercise ---------------------------------------
    let receiver = proofs::protocol::receiver_exercise();
    let report = receiver.check()?;
    println!("{}", render_report(receiver.paper_ref, &report));

    // --- The six-step protocol theorem --------------------------------
    let protocol = proofs::protocol::protocol_output_le_input();
    let report = protocol.check()?;
    println!(
        "protocol theorem checked: {} rule applications, {} pure premises\n",
        report.rule_count(),
        report.obligations.len()
    );

    // --- Independent model checking -----------------------------------
    for (name, claim) in [
        ("sender", "f(wire) <= input"),
        ("receiver", "output <= f(wire)"),
        ("protocol", "output <= input"),
    ] {
        let verdict = wb.check_sat(name, claim, 4)?;
        println!("model check {name} sat {claim}: {}", verdict.holds());
        assert!(verdict.holds());
    }

    // --- Live execution ------------------------------------------------
    // The receiver non-deterministically NACKs; the seeded scheduler
    // exercises retransmission. The full trace shows the wire chatter,
    // the visible trace only clean delivery.
    let run = wb.run(
        "protocol",
        RunOptions {
            max_steps: 40,
            scheduler: Scheduler::seeded(1981),
            ..RunOptions::default()
        },
    )?;
    let retransmissions = run
        .full
        .iter()
        .filter(|e| e.value() == &Value::sym("NACK"))
        .count();
    println!(
        "\nexecuted {} events ({} NACK retransmissions on the wire)",
        run.steps, retransmissions
    );
    println!("full trace   : {}", run.full);
    println!("visible trace: {}", run.visible);

    let conf = wb.conformance("protocol", &run, ["output <= input"])?;
    assert!(conf.conforms(), "run does not conform: {conf:?}");
    println!("run conforms to the semantics and maintains output <= input");
    Ok(())
}
