//! Checks and prints every proof in the paper, then cross-validates each
//! claim with the bounded model checker and demonstrates the §4 defect.
//!
//! Run with: `cargo run --example prove_paper`

use csp::proofs::all_scripts;
use csp::{cross_validate_scripts, render_report, stop_choice_identity, Universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== machine-checking every proof in the paper ==\n");
    for script in all_scripts() {
        let report = script.check()?;
        println!(
            "[ok] {:<16} {:>3} rule applications, {:>2} pure premises  — {}",
            script.name,
            report.rule_count(),
            report.obligations.len(),
            script.paper_ref,
        );
    }

    println!("\n== the proof the paper displays in full (Table 1) ==\n");
    let table1 = csp::proofs::protocol::sender_table1();
    println!("{}", render_report(table1.paper_ref, &table1.check()?));

    println!("== cross-validating every proved claim with the model checker ==\n");
    for cv in cross_validate_scripts(3)? {
        println!(
            "[{}] {:<16} proof: {} steps; model: {:?}",
            if cv.agreed() { "ok" } else { "??" },
            cv.script,
            cv.proof_steps,
            cv.model_result,
        );
        assert!(cv.agreed());
    }

    println!("\n== §4: the model's admitted defect, STOP | P = P ==\n");
    let uni = Universe::new(1);
    for name in ["copier", "pipeline"] {
        let (a, b) = stop_choice_identity(&csp::examples::pipeline(), &uni, name, 4)?;
        println!("  |traces(STOP | {name})| = {b} = |traces({name})| = {a}");
        assert_eq!(a, b);
    }
    println!("\nthe prefix-closure model cannot observe the possibility of deadlock —");
    println!("exactly the limitation §4 concedes and later failures/divergences models fix.");
    Ok(())
}
