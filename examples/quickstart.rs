//! Quickstart: define a network in the paper's notation, model-check an
//! invariant, prove it with the paper's inference rules, execute the
//! network on real threads, and confirm the run conforms.
//!
//! Run with: `cargo run --example quickstart`

use csp::prelude::*;
use csp::{render_report, STerm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define the copier pipeline of §1.3(1) in the paper's notation.
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(
        "copier = input?x:NAT -> wire!x -> copier
         recopier = wire?y:NAT -> output!y -> recopier
         pipeline = chan wire; (copier || recopier)",
    )?;
    println!("definitions:\n{}", wb.definitions());

    // 2. Enumerate a few traces of the denotation (§3).
    let traces = wb.traces("pipeline", 4)?;
    println!("pipeline has {} traces to depth 4, e.g.:", traces.len());
    for t in traces.maximal_traces().iter().take(3) {
        println!("  {t}");
    }

    // 3. Model-check the §2 invariant `output ≤ input`.
    match wb.check_sat("pipeline", "output <= input", 4)? {
        SatResult::Holds {
            traces_checked,
            engine,
            ..
        } => {
            println!(
                "\nmodel check: output <= input holds on {traces_checked} traces \
                 (engine {engine})"
            );
        }
        SatResult::Counterexample { trace, .. } => {
            println!("\nmodel check FAILED: {trace}");
            return Ok(());
        }
    }

    // 4. Prove `copier sat wire ≤ input` with the rules of §2.1
    //    (recursion → input → output → consequence → hypothesis).
    let inv = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
    let goal = Judgement::sat(Process::call("copier"), inv.clone());
    let proof = Proof::recursion(
        "copier",
        inv.clone(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(inv, Proof::Hypothesis)),
        ),
    );
    let report = wb.prove(&goal, &proof)?;
    println!(
        "\n{}",
        render_report("proof: copier sat wire <= input", &report)
    );

    // 5. Execute on real threads with a seeded scheduler and check the
    //    recorded run against the semantics and the invariant.
    let run = wb.run(
        "pipeline",
        RunOptions {
            max_steps: 24,
            scheduler: Scheduler::seeded(42),
            ..RunOptions::default()
        },
    )?;
    println!(
        "executed {} events; visible trace:\n  {}",
        run.steps, run.visible
    );
    let conf = wb.conformance("pipeline", &run, ["output <= input"])?;
    println!(
        "conformance: trace admitted = {}, invariants held = {}",
        conf.trace_admitted,
        conf.invariants.iter().all(|(_, v)| v.is_none()),
    );
    Ok(())
}
