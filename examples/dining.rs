//! Dining philosophers in the paper's notation — a classic CSP network
//! the 1981 language can already express, and a showcase for the gap §4
//! describes: the *trace* invariants of the system are provable (every
//! fork alternates pick-up/put-down), yet the system can deadlock, and
//! only the operational tooling can see it.
//!
//! Two philosophers share two forks. Each fork is a process that is
//! picked up (`up[i]`) and put down (`down[i]`); each philosopher picks
//! up their left fork, then their right, eats, and puts both down. The
//! circular wait when both pick up their left fork first is the textbook
//! deadlock.
//!
//! Run with: `cargo run --example dining`

use csp::prelude::*;
use csp::timeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In the paper's model every process connected to a channel takes
    // part in each of its events, so each philosopher/fork pair gets its
    // own channel family: grab[p][f] / drop[p][f].
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(
        "-- a fork serves either neighbour, one at a time
         fork[j:0..1] = grab[0][j]?x:{1} -> drop[0][j]?y:{1} -> fork[j]
                      | grab[1][j]?x:{1} -> drop[1][j]?y:{1} -> fork[j]
         -- each philosopher lifts their left fork, then their right
         phil0 = grab[0][0]!1 -> grab[0][1]!1 -> drop[0][0]!1 -> drop[0][1]!1 -> phil0
         phil1 = grab[1][1]!1 -> grab[1][0]!1 -> drop[1][1]!1 -> drop[1][0]!1 -> phil1
         table = fork[0] || fork[1] || phil0 || phil1",
    )?;
    assert!(wb.lint().is_empty());

    // Partial correctness is checkable and true: a philosopher never
    // drops a fork they have not grabbed.
    for p in 0..2 {
        for f in 0..2 {
            let inv = format!(
                "#drop[{p}][{f}] <= #grab[{p}][{f}] and \
                 #grab[{p}][{f}] <= #drop[{p}][{f}] + 1"
            );
            let verdict = wb.check_sat("table", &inv, 4)?;
            assert!(verdict.holds(), "{inv}");
        }
    }
    println!("model check: all grab/drop alternation invariants hold");

    // …but the system deadlocks: both philosophers lift their first fork
    // and wait forever for the second.
    let report = wb.deadlocks("table", 6)?;
    println!(
        "\ndeadlock search: {} state(s) explored, {} dead state(s)",
        report.states_explored,
        report.deadlocks.len()
    );
    let jam = report
        .deadlocks
        .iter()
        .find(|d| !d.terminated)
        .expect("the classic deadlock is reachable");
    println!("shortest deadlock witness: {}", jam.trace);
    print!("{}", timeline(&jam.trace));
    assert_eq!(jam.trace.len(), 2, "both first forks up, then stuck");

    // A seeded run may or may not hit it; sweep seeds and report.
    let mut deadlocked_runs = 0;
    for seed in 0..20 {
        let run = wb.run(
            "table",
            RunOptions {
                max_steps: 24,
                scheduler: Scheduler::seeded(seed),
                ..RunOptions::default()
            },
        )?;
        if run.deadlocked {
            deadlocked_runs += 1;
        }
    }
    println!(
        "\nexecutor: {deadlocked_runs}/20 seeded runs ended in the deadlock — \
         a liveness failure no trace assertion can rule out (§4)."
    );
    Ok(())
}
