/root/repo/target/debug/examples/protocol-ebce8ce97f9da009.d: examples/protocol.rs

/root/repo/target/debug/examples/protocol-ebce8ce97f9da009: examples/protocol.rs

examples/protocol.rs:
