/root/repo/target/debug/examples/protocol-97660be91d82f484.d: examples/protocol.rs Cargo.toml

/root/repo/target/debug/examples/libprotocol-97660be91d82f484.rmeta: examples/protocol.rs Cargo.toml

examples/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
