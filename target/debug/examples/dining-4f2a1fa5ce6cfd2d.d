/root/repo/target/debug/examples/dining-4f2a1fa5ce6cfd2d.d: examples/dining.rs Cargo.toml

/root/repo/target/debug/examples/libdining-4f2a1fa5ce6cfd2d.rmeta: examples/dining.rs Cargo.toml

examples/dining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
