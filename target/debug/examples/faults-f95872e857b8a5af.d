/root/repo/target/debug/examples/faults-f95872e857b8a5af.d: examples/faults.rs

/root/repo/target/debug/examples/faults-f95872e857b8a5af: examples/faults.rs

examples/faults.rs:
