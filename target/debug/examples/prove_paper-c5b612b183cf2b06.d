/root/repo/target/debug/examples/prove_paper-c5b612b183cf2b06.d: examples/prove_paper.rs Cargo.toml

/root/repo/target/debug/examples/libprove_paper-c5b612b183cf2b06.rmeta: examples/prove_paper.rs Cargo.toml

examples/prove_paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
