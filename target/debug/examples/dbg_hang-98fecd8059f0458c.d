/root/repo/target/debug/examples/dbg_hang-98fecd8059f0458c.d: crates/runtime/examples/dbg_hang.rs

/root/repo/target/debug/examples/dbg_hang-98fecd8059f0458c: crates/runtime/examples/dbg_hang.rs

crates/runtime/examples/dbg_hang.rs:
