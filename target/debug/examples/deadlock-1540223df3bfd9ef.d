/root/repo/target/debug/examples/deadlock-1540223df3bfd9ef.d: examples/deadlock.rs Cargo.toml

/root/repo/target/debug/examples/libdeadlock-1540223df3bfd9ef.rmeta: examples/deadlock.rs Cargo.toml

examples/deadlock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
