/root/repo/target/debug/examples/quickstart-b8d405330a6ffb33.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b8d405330a6ffb33: examples/quickstart.rs

examples/quickstart.rs:
