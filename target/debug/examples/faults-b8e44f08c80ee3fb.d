/root/repo/target/debug/examples/faults-b8e44f08c80ee3fb.d: examples/faults.rs Cargo.toml

/root/repo/target/debug/examples/libfaults-b8e44f08c80ee3fb.rmeta: examples/faults.rs Cargo.toml

examples/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
