/root/repo/target/debug/examples/deadlock-81606a959f7e5006.d: examples/deadlock.rs

/root/repo/target/debug/examples/deadlock-81606a959f7e5006: examples/deadlock.rs

examples/deadlock.rs:
