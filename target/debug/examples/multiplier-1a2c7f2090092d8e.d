/root/repo/target/debug/examples/multiplier-1a2c7f2090092d8e.d: examples/multiplier.rs

/root/repo/target/debug/examples/multiplier-1a2c7f2090092d8e: examples/multiplier.rs

examples/multiplier.rs:
