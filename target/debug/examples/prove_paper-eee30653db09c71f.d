/root/repo/target/debug/examples/prove_paper-eee30653db09c71f.d: examples/prove_paper.rs

/root/repo/target/debug/examples/prove_paper-eee30653db09c71f: examples/prove_paper.rs

examples/prove_paper.rs:
