/root/repo/target/debug/examples/multiplier-0403733a2add4dde.d: examples/multiplier.rs Cargo.toml

/root/repo/target/debug/examples/libmultiplier-0403733a2add4dde.rmeta: examples/multiplier.rs Cargo.toml

examples/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
