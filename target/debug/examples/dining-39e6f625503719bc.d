/root/repo/target/debug/examples/dining-39e6f625503719bc.d: examples/dining.rs

/root/repo/target/debug/examples/dining-39e6f625503719bc: examples/dining.rs

examples/dining.rs:
