/root/repo/target/debug/deps/csp_bench-e355924e9cd14c1f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_bench-e355924e9cd14c1f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
