/root/repo/target/debug/deps/checker_negative-3808f8c98f069ec2.d: crates/proof/tests/checker_negative.rs Cargo.toml

/root/repo/target/debug/deps/libchecker_negative-3808f8c98f069ec2.rmeta: crates/proof/tests/checker_negative.rs Cargo.toml

crates/proof/tests/checker_negative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
