/root/repo/target/debug/deps/csp_trace-c93f0fe54163ec97.d: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

/root/repo/target/debug/deps/libcsp_trace-c93f0fe54163ec97.rlib: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

/root/repo/target/debug/deps/libcsp_trace-c93f0fe54163ec97.rmeta: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

crates/trace/src/lib.rs:
crates/trace/src/channel.rs:
crates/trace/src/display.rs:
crates/trace/src/event.rs:
crates/trace/src/history.rs:
crates/trace/src/interleave.rs:
crates/trace/src/seq.rs:
crates/trace/src/trace.rs:
crates/trace/src/traceset.rs:
crates/trace/src/value.rs:
