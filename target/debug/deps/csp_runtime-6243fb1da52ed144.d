/root/repo/target/debug/deps/csp_runtime-6243fb1da52ed144.d: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

/root/repo/target/debug/deps/csp_runtime-6243fb1da52ed144: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

crates/runtime/src/lib.rs:
crates/runtime/src/conformance.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/net.rs:
crates/runtime/src/scheduler.rs:
crates/runtime/src/supervisor.rs:
