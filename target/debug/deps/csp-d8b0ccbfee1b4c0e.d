/root/repo/target/debug/deps/csp-d8b0ccbfee1b4c0e.d: src/lib.rs

/root/repo/target/debug/deps/libcsp-d8b0ccbfee1b4c0e.rlib: src/lib.rs

/root/repo/target/debug/deps/libcsp-d8b0ccbfee1b4c0e.rmeta: src/lib.rs

src/lib.rs:
