/root/repo/target/debug/deps/csp-553acb5dbdc95c96.d: src/bin/csp.rs Cargo.toml

/root/repo/target/debug/deps/libcsp-553acb5dbdc95c96.rmeta: src/bin/csp.rs Cargo.toml

src/bin/csp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
