/root/repo/target/debug/deps/cli-d2a5affb8234b44c.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-d2a5affb8234b44c.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_csp=placeholder:csp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
