/root/repo/target/debug/deps/csp-baea9d6172db8c1a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsp-baea9d6172db8c1a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
