/root/repo/target/debug/deps/perf-eadaca33bce2a952.d: crates/bench/benches/perf.rs Cargo.toml

/root/repo/target/debug/deps/libperf-eadaca33bce2a952.rmeta: crates/bench/benches/perf.rs Cargo.toml

crates/bench/benches/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
