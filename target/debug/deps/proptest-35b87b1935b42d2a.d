/root/repo/target/debug/deps/proptest-35b87b1935b42d2a.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-35b87b1935b42d2a.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
