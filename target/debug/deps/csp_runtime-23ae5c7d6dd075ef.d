/root/repo/target/debug/deps/csp_runtime-23ae5c7d6dd075ef.d: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_runtime-23ae5c7d6dd075ef.rmeta: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/conformance.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/net.rs:
crates/runtime/src/scheduler.rs:
crates/runtime/src/supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
