/root/repo/target/debug/deps/figures-4e0e2c1683fc3668.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-4e0e2c1683fc3668: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
