/root/repo/target/debug/deps/csp_trace-097573bd14b72517.d: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_trace-097573bd14b72517.rmeta: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/channel.rs:
crates/trace/src/display.rs:
crates/trace/src/event.rs:
crates/trace/src/history.rs:
crates/trace/src/interleave.rs:
crates/trace/src/seq.rs:
crates/trace/src/trace.rs:
crates/trace/src/traceset.rs:
crates/trace/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
