/root/repo/target/debug/deps/properties-a7ff281ef4684d88.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a7ff281ef4684d88: tests/properties.rs

tests/properties.rs:
