/root/repo/target/debug/deps/assertion_properties-ee090be37c958ab4.d: tests/assertion_properties.rs

/root/repo/target/debug/deps/assertion_properties-ee090be37c958ab4: tests/assertion_properties.rs

tests/assertion_properties.rs:
