/root/repo/target/debug/deps/csp_assert-6fb9689cae6bfc30.d: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

/root/repo/target/debug/deps/libcsp_assert-6fb9689cae6bfc30.rlib: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

/root/repo/target/debug/deps/libcsp_assert-6fb9689cae6bfc30.rmeta: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

crates/assertion/src/lib.rs:
crates/assertion/src/ast.rs:
crates/assertion/src/decide.rs:
crates/assertion/src/eval.rs:
crates/assertion/src/funcs.rs:
crates/assertion/src/parser.rs:
crates/assertion/src/simplify.rs:
crates/assertion/src/subst.rs:
