/root/repo/target/debug/deps/csp_proof-ca9a46e13abaac3c.d: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

/root/repo/target/debug/deps/csp_proof-ca9a46e13abaac3c: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

crates/proof/src/lib.rs:
crates/proof/src/checker.rs:
crates/proof/src/judgement.rs:
crates/proof/src/proof.rs:
crates/proof/src/render.rs:
crates/proof/src/synth.rs:
crates/proof/src/scripts/mod.rs:
crates/proof/src/scripts/buffer.rs:
crates/proof/src/scripts/multiplier.rs:
crates/proof/src/scripts/pipeline.rs:
crates/proof/src/scripts/protocol.rs:
