/root/repo/target/debug/deps/csp_semantics-9ce05d551d960600.d: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_semantics-9ce05d551d960600.rmeta: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs Cargo.toml

crates/semantics/src/lib.rs:
crates/semantics/src/denote.rs:
crates/semantics/src/equiv.rs:
crates/semantics/src/lts.rs:
crates/semantics/src/universe.rs:
crates/semantics/src/fixpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
