/root/repo/target/debug/deps/csp_core-23e80d57484d9c47.d: crates/core/src/lib.rs crates/core/src/workbench.rs

/root/repo/target/debug/deps/libcsp_core-23e80d57484d9c47.rlib: crates/core/src/lib.rs crates/core/src/workbench.rs

/root/repo/target/debug/deps/libcsp_core-23e80d57484d9c47.rmeta: crates/core/src/lib.rs crates/core/src/workbench.rs

crates/core/src/lib.rs:
crates/core/src/workbench.rs:
