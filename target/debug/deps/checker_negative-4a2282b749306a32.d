/root/repo/target/debug/deps/checker_negative-4a2282b749306a32.d: crates/proof/tests/checker_negative.rs

/root/repo/target/debug/deps/checker_negative-4a2282b749306a32: crates/proof/tests/checker_negative.rs

crates/proof/tests/checker_negative.rs:
