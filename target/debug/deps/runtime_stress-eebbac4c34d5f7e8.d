/root/repo/target/debug/deps/runtime_stress-eebbac4c34d5f7e8.d: tests/runtime_stress.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_stress-eebbac4c34d5f7e8.rmeta: tests/runtime_stress.rs Cargo.toml

tests/runtime_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
