/root/repo/target/debug/deps/csp_assert-5985e7852cee05cf.d: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_assert-5985e7852cee05cf.rmeta: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs Cargo.toml

crates/assertion/src/lib.rs:
crates/assertion/src/ast.rs:
crates/assertion/src/decide.rs:
crates/assertion/src/eval.rs:
crates/assertion/src/funcs.rs:
crates/assertion/src/parser.rs:
crates/assertion/src/simplify.rs:
crates/assertion/src/subst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
