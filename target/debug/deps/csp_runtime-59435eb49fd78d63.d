/root/repo/target/debug/deps/csp_runtime-59435eb49fd78d63.d: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

/root/repo/target/debug/deps/libcsp_runtime-59435eb49fd78d63.rlib: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

/root/repo/target/debug/deps/libcsp_runtime-59435eb49fd78d63.rmeta: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

crates/runtime/src/lib.rs:
crates/runtime/src/conformance.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/net.rs:
crates/runtime/src/scheduler.rs:
crates/runtime/src/supervisor.rs:
