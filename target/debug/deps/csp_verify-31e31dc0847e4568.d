/root/repo/target/debug/deps/csp_verify-31e31dc0847e4568.d: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

/root/repo/target/debug/deps/libcsp_verify-31e31dc0847e4568.rlib: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

/root/repo/target/debug/deps/libcsp_verify-31e31dc0847e4568.rmeta: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

crates/verify/src/lib.rs:
crates/verify/src/crossval.rs:
crates/verify/src/deadlock.rs:
crates/verify/src/faultconf.rs:
crates/verify/src/gen.rs:
crates/verify/src/satcheck.rs:
crates/verify/src/soundness.rs:
