/root/repo/target/debug/deps/csp_proof-d7c6e92cfda8cff1.d: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_proof-d7c6e92cfda8cff1.rmeta: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs Cargo.toml

crates/proof/src/lib.rs:
crates/proof/src/checker.rs:
crates/proof/src/judgement.rs:
crates/proof/src/proof.rs:
crates/proof/src/render.rs:
crates/proof/src/synth.rs:
crates/proof/src/scripts/mod.rs:
crates/proof/src/scripts/buffer.rs:
crates/proof/src/scripts/multiplier.rs:
crates/proof/src/scripts/pipeline.rs:
crates/proof/src/scripts/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
