/root/repo/target/debug/deps/assertion_properties-63df40b1f680e919.d: tests/assertion_properties.rs Cargo.toml

/root/repo/target/debug/deps/libassertion_properties-63df40b1f680e919.rmeta: tests/assertion_properties.rs Cargo.toml

tests/assertion_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
