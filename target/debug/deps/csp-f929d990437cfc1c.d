/root/repo/target/debug/deps/csp-f929d990437cfc1c.d: src/bin/csp.rs

/root/repo/target/debug/deps/csp-f929d990437cfc1c: src/bin/csp.rs

src/bin/csp.rs:
