/root/repo/target/debug/deps/csp_lang-544ea66260a15de2.d: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs

/root/repo/target/debug/deps/csp_lang-544ea66260a15de2: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs

crates/lang/src/lib.rs:
crates/lang/src/defs.rs:
crates/lang/src/env.rs:
crates/lang/src/error.rs:
crates/lang/src/expr.rs:
crates/lang/src/free.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/process.rs:
crates/lang/src/setexpr.rs:
crates/lang/src/subst.rs:
crates/lang/src/validate.rs:
crates/lang/src/examples.rs:
