/root/repo/target/debug/deps/csp_proof-e1f0ff6a670c3c73.d: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

/root/repo/target/debug/deps/libcsp_proof-e1f0ff6a670c3c73.rlib: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

/root/repo/target/debug/deps/libcsp_proof-e1f0ff6a670c3c73.rmeta: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

crates/proof/src/lib.rs:
crates/proof/src/checker.rs:
crates/proof/src/judgement.rs:
crates/proof/src/proof.rs:
crates/proof/src/render.rs:
crates/proof/src/synth.rs:
crates/proof/src/scripts/mod.rs:
crates/proof/src/scripts/buffer.rs:
crates/proof/src/scripts/multiplier.rs:
crates/proof/src/scripts/pipeline.rs:
crates/proof/src/scripts/protocol.rs:
