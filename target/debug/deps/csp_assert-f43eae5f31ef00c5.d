/root/repo/target/debug/deps/csp_assert-f43eae5f31ef00c5.d: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

/root/repo/target/debug/deps/csp_assert-f43eae5f31ef00c5: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

crates/assertion/src/lib.rs:
crates/assertion/src/ast.rs:
crates/assertion/src/decide.rs:
crates/assertion/src/eval.rs:
crates/assertion/src/funcs.rs:
crates/assertion/src/parser.rs:
crates/assertion/src/simplify.rs:
crates/assertion/src/subst.rs:
