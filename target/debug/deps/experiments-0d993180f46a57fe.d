/root/repo/target/debug/deps/experiments-0d993180f46a57fe.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-0d993180f46a57fe: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
