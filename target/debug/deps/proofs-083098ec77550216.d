/root/repo/target/debug/deps/proofs-083098ec77550216.d: crates/bench/benches/proofs.rs Cargo.toml

/root/repo/target/debug/deps/libproofs-083098ec77550216.rmeta: crates/bench/benches/proofs.rs Cargo.toml

crates/bench/benches/proofs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
