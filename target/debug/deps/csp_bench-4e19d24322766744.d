/root/repo/target/debug/deps/csp_bench-4e19d24322766744.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/csp_bench-4e19d24322766744: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
