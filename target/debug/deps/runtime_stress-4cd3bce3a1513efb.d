/root/repo/target/debug/deps/runtime_stress-4cd3bce3a1513efb.d: tests/runtime_stress.rs

/root/repo/target/debug/deps/runtime_stress-4cd3bce3a1513efb: tests/runtime_stress.rs

tests/runtime_stress.rs:
