/root/repo/target/debug/deps/csp_core-5b18216d656561ad.d: crates/core/src/lib.rs crates/core/src/workbench.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_core-5b18216d656561ad.rmeta: crates/core/src/lib.rs crates/core/src/workbench.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/workbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
