/root/repo/target/debug/deps/csp_core-8a7380e8d6e775ab.d: crates/core/src/lib.rs crates/core/src/workbench.rs

/root/repo/target/debug/deps/csp_core-8a7380e8d6e775ab: crates/core/src/lib.rs crates/core/src/workbench.rs

crates/core/src/lib.rs:
crates/core/src/workbench.rs:
