/root/repo/target/debug/deps/csp_semantics-448d46bc7360618c.d: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

/root/repo/target/debug/deps/csp_semantics-448d46bc7360618c: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

crates/semantics/src/lib.rs:
crates/semantics/src/denote.rs:
crates/semantics/src/equiv.rs:
crates/semantics/src/lts.rs:
crates/semantics/src/universe.rs:
crates/semantics/src/fixpoint.rs:
