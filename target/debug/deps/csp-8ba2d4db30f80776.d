/root/repo/target/debug/deps/csp-8ba2d4db30f80776.d: src/lib.rs

/root/repo/target/debug/deps/csp-8ba2d4db30f80776: src/lib.rs

src/lib.rs:
