/root/repo/target/debug/deps/csp_lang-bd00a78ff07bab4a.d: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs

/root/repo/target/debug/deps/libcsp_lang-bd00a78ff07bab4a.rlib: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs

/root/repo/target/debug/deps/libcsp_lang-bd00a78ff07bab4a.rmeta: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs

crates/lang/src/lib.rs:
crates/lang/src/defs.rs:
crates/lang/src/env.rs:
crates/lang/src/error.rs:
crates/lang/src/expr.rs:
crates/lang/src/free.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/process.rs:
crates/lang/src/setexpr.rs:
crates/lang/src/subst.rs:
crates/lang/src/validate.rs:
crates/lang/src/examples.rs:
