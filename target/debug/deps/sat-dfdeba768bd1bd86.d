/root/repo/target/debug/deps/sat-dfdeba768bd1bd86.d: crates/bench/benches/sat.rs Cargo.toml

/root/repo/target/debug/deps/libsat-dfdeba768bd1bd86.rmeta: crates/bench/benches/sat.rs Cargo.toml

crates/bench/benches/sat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
