/root/repo/target/debug/deps/cli-70bd884cdf1f51c6.d: tests/cli.rs

/root/repo/target/debug/deps/cli-70bd884cdf1f51c6: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_csp=/root/repo/target/debug/csp
