/root/repo/target/debug/deps/csp-8ef81be3e6af400e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsp-8ef81be3e6af400e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
