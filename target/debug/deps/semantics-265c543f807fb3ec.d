/root/repo/target/debug/deps/semantics-265c543f807fb3ec.d: crates/bench/benches/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-265c543f807fb3ec.rmeta: crates/bench/benches/semantics.rs Cargo.toml

crates/bench/benches/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
