/root/repo/target/debug/deps/soundness-89112baf8d43117b.d: crates/bench/benches/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-89112baf8d43117b.rmeta: crates/bench/benches/soundness.rs Cargo.toml

crates/bench/benches/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
