/root/repo/target/debug/deps/table1-97cf109bb6290c0f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-97cf109bb6290c0f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
