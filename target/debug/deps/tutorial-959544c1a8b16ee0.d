/root/repo/target/debug/deps/tutorial-959544c1a8b16ee0.d: tests/tutorial.rs

/root/repo/target/debug/deps/tutorial-959544c1a8b16ee0: tests/tutorial.rs

tests/tutorial.rs:
