/root/repo/target/debug/deps/csp_lang-26e4094843f031e8.d: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_lang-26e4094843f031e8.rmeta: crates/lang/src/lib.rs crates/lang/src/defs.rs crates/lang/src/env.rs crates/lang/src/error.rs crates/lang/src/expr.rs crates/lang/src/free.rs crates/lang/src/parser.rs crates/lang/src/printer.rs crates/lang/src/process.rs crates/lang/src/setexpr.rs crates/lang/src/subst.rs crates/lang/src/validate.rs crates/lang/src/examples.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/defs.rs:
crates/lang/src/env.rs:
crates/lang/src/error.rs:
crates/lang/src/expr.rs:
crates/lang/src/free.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
crates/lang/src/process.rs:
crates/lang/src/setexpr.rs:
crates/lang/src/subst.rs:
crates/lang/src/validate.rs:
crates/lang/src/examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
