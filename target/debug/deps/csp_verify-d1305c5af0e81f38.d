/root/repo/target/debug/deps/csp_verify-d1305c5af0e81f38.d: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_verify-d1305c5af0e81f38.rmeta: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/crossval.rs:
crates/verify/src/deadlock.rs:
crates/verify/src/faultconf.rs:
crates/verify/src/gen.rs:
crates/verify/src/satcheck.rs:
crates/verify/src/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
