/root/repo/target/debug/deps/paper_claims-287c4705436c45fe.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-287c4705436c45fe: tests/paper_claims.rs

tests/paper_claims.rs:
