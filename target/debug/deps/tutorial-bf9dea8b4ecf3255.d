/root/repo/target/debug/deps/tutorial-bf9dea8b4ecf3255.d: tests/tutorial.rs Cargo.toml

/root/repo/target/debug/deps/libtutorial-bf9dea8b4ecf3255.rmeta: tests/tutorial.rs Cargo.toml

tests/tutorial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
