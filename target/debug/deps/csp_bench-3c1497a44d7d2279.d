/root/repo/target/debug/deps/csp_bench-3c1497a44d7d2279.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_bench-3c1497a44d7d2279.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
