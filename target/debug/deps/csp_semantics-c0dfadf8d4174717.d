/root/repo/target/debug/deps/csp_semantics-c0dfadf8d4174717.d: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs Cargo.toml

/root/repo/target/debug/deps/libcsp_semantics-c0dfadf8d4174717.rmeta: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs Cargo.toml

crates/semantics/src/lib.rs:
crates/semantics/src/denote.rs:
crates/semantics/src/equiv.rs:
crates/semantics/src/lts.rs:
crates/semantics/src/universe.rs:
crates/semantics/src/fixpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
