/root/repo/target/debug/deps/csp-124b6161ed800e19.d: src/bin/csp.rs

/root/repo/target/debug/deps/csp-124b6161ed800e19: src/bin/csp.rs

src/bin/csp.rs:
