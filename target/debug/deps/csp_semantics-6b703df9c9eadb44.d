/root/repo/target/debug/deps/csp_semantics-6b703df9c9eadb44.d: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

/root/repo/target/debug/deps/libcsp_semantics-6b703df9c9eadb44.rlib: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

/root/repo/target/debug/deps/libcsp_semantics-6b703df9c9eadb44.rmeta: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

crates/semantics/src/lib.rs:
crates/semantics/src/denote.rs:
crates/semantics/src/equiv.rs:
crates/semantics/src/lts.rs:
crates/semantics/src/universe.rs:
crates/semantics/src/fixpoint.rs:
