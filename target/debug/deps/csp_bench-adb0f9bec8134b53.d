/root/repo/target/debug/deps/csp_bench-adb0f9bec8134b53.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcsp_bench-adb0f9bec8134b53.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcsp_bench-adb0f9bec8134b53.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
