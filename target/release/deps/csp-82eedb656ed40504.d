/root/repo/target/release/deps/csp-82eedb656ed40504.d: src/bin/csp.rs

/root/repo/target/release/deps/csp-82eedb656ed40504: src/bin/csp.rs

src/bin/csp.rs:
