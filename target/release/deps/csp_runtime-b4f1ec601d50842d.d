/root/repo/target/release/deps/csp_runtime-b4f1ec601d50842d.d: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

/root/repo/target/release/deps/libcsp_runtime-b4f1ec601d50842d.rlib: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

/root/repo/target/release/deps/libcsp_runtime-b4f1ec601d50842d.rmeta: crates/runtime/src/lib.rs crates/runtime/src/conformance.rs crates/runtime/src/executor.rs crates/runtime/src/fault.rs crates/runtime/src/net.rs crates/runtime/src/scheduler.rs crates/runtime/src/supervisor.rs

crates/runtime/src/lib.rs:
crates/runtime/src/conformance.rs:
crates/runtime/src/executor.rs:
crates/runtime/src/fault.rs:
crates/runtime/src/net.rs:
crates/runtime/src/scheduler.rs:
crates/runtime/src/supervisor.rs:
