/root/repo/target/release/deps/csp_semantics-c1611ccff09b3df4.d: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

/root/repo/target/release/deps/libcsp_semantics-c1611ccff09b3df4.rlib: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

/root/repo/target/release/deps/libcsp_semantics-c1611ccff09b3df4.rmeta: crates/semantics/src/lib.rs crates/semantics/src/denote.rs crates/semantics/src/equiv.rs crates/semantics/src/lts.rs crates/semantics/src/universe.rs crates/semantics/src/fixpoint.rs

crates/semantics/src/lib.rs:
crates/semantics/src/denote.rs:
crates/semantics/src/equiv.rs:
crates/semantics/src/lts.rs:
crates/semantics/src/universe.rs:
crates/semantics/src/fixpoint.rs:
