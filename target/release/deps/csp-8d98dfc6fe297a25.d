/root/repo/target/release/deps/csp-8d98dfc6fe297a25.d: src/lib.rs

/root/repo/target/release/deps/libcsp-8d98dfc6fe297a25.rlib: src/lib.rs

/root/repo/target/release/deps/libcsp-8d98dfc6fe297a25.rmeta: src/lib.rs

src/lib.rs:
