/root/repo/target/release/deps/csp_proof-c6738efc853fa7eb.d: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

/root/repo/target/release/deps/libcsp_proof-c6738efc853fa7eb.rlib: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

/root/repo/target/release/deps/libcsp_proof-c6738efc853fa7eb.rmeta: crates/proof/src/lib.rs crates/proof/src/checker.rs crates/proof/src/judgement.rs crates/proof/src/proof.rs crates/proof/src/render.rs crates/proof/src/synth.rs crates/proof/src/scripts/mod.rs crates/proof/src/scripts/buffer.rs crates/proof/src/scripts/multiplier.rs crates/proof/src/scripts/pipeline.rs crates/proof/src/scripts/protocol.rs

crates/proof/src/lib.rs:
crates/proof/src/checker.rs:
crates/proof/src/judgement.rs:
crates/proof/src/proof.rs:
crates/proof/src/render.rs:
crates/proof/src/synth.rs:
crates/proof/src/scripts/mod.rs:
crates/proof/src/scripts/buffer.rs:
crates/proof/src/scripts/multiplier.rs:
crates/proof/src/scripts/pipeline.rs:
crates/proof/src/scripts/protocol.rs:
