/root/repo/target/release/deps/csp_trace-e135c1dbbf860350.d: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

/root/repo/target/release/deps/libcsp_trace-e135c1dbbf860350.rlib: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

/root/repo/target/release/deps/libcsp_trace-e135c1dbbf860350.rmeta: crates/trace/src/lib.rs crates/trace/src/channel.rs crates/trace/src/display.rs crates/trace/src/event.rs crates/trace/src/history.rs crates/trace/src/interleave.rs crates/trace/src/seq.rs crates/trace/src/trace.rs crates/trace/src/traceset.rs crates/trace/src/value.rs

crates/trace/src/lib.rs:
crates/trace/src/channel.rs:
crates/trace/src/display.rs:
crates/trace/src/event.rs:
crates/trace/src/history.rs:
crates/trace/src/interleave.rs:
crates/trace/src/seq.rs:
crates/trace/src/trace.rs:
crates/trace/src/traceset.rs:
crates/trace/src/value.rs:
