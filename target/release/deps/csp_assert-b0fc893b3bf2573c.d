/root/repo/target/release/deps/csp_assert-b0fc893b3bf2573c.d: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

/root/repo/target/release/deps/libcsp_assert-b0fc893b3bf2573c.rlib: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

/root/repo/target/release/deps/libcsp_assert-b0fc893b3bf2573c.rmeta: crates/assertion/src/lib.rs crates/assertion/src/ast.rs crates/assertion/src/decide.rs crates/assertion/src/eval.rs crates/assertion/src/funcs.rs crates/assertion/src/parser.rs crates/assertion/src/simplify.rs crates/assertion/src/subst.rs

crates/assertion/src/lib.rs:
crates/assertion/src/ast.rs:
crates/assertion/src/decide.rs:
crates/assertion/src/eval.rs:
crates/assertion/src/funcs.rs:
crates/assertion/src/parser.rs:
crates/assertion/src/simplify.rs:
crates/assertion/src/subst.rs:
