/root/repo/target/release/deps/csp_verify-f08725faa766c023.d: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

/root/repo/target/release/deps/libcsp_verify-f08725faa766c023.rlib: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

/root/repo/target/release/deps/libcsp_verify-f08725faa766c023.rmeta: crates/verify/src/lib.rs crates/verify/src/crossval.rs crates/verify/src/deadlock.rs crates/verify/src/faultconf.rs crates/verify/src/gen.rs crates/verify/src/satcheck.rs crates/verify/src/soundness.rs

crates/verify/src/lib.rs:
crates/verify/src/crossval.rs:
crates/verify/src/deadlock.rs:
crates/verify/src/faultconf.rs:
crates/verify/src/gen.rs:
crates/verify/src/satcheck.rs:
crates/verify/src/soundness.rs:
