/root/repo/target/release/deps/csp_core-b33c32fab6541198.d: crates/core/src/lib.rs crates/core/src/workbench.rs

/root/repo/target/release/deps/libcsp_core-b33c32fab6541198.rlib: crates/core/src/lib.rs crates/core/src/workbench.rs

/root/repo/target/release/deps/libcsp_core-b33c32fab6541198.rmeta: crates/core/src/lib.rs crates/core/src/workbench.rs

crates/core/src/lib.rs:
crates/core/src/workbench.rs:
