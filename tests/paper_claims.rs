//! Integration tests asserting every claim the paper makes, end to end
//! across all crates: proofs check, the model agrees, the runtime
//! conforms, and the §4 limitations manifest exactly as described.

use csp::prelude::*;
use csp::proofs;
use csp::{cross_validate_scripts, stop_choice_identity, validate_all_rules};

/// §2 claims + §2.2 theorems, proved with the paper's rules.
#[test]
fn every_paper_proof_is_machine_checked() {
    let scripts = proofs::all_scripts();
    assert!(scripts.len() >= 9);
    for script in scripts {
        let report = script
            .check()
            .unwrap_or_else(|e| panic!("{} failed: {e}", script.name));
        assert!(report.rule_count() > 0);
    }
}

/// Table 1 specifically: the displayed proof of the sender lemma.
#[test]
fn table1_has_the_papers_rule_structure() {
    let table1 = proofs::protocol::sender_table1();
    let report = table1.check().unwrap();
    let has = |rule: &str| report.steps.iter().any(|s| s.starts_with(rule));
    // The rules Table 1 cites: recursion, input, output, alternative,
    // consequence, plus ∀-introduction/elimination plumbing.
    assert!(has("recursion (10)"));
    assert!(has("input (6)"));
    assert!(has("output (5)"));
    assert!(has("alternative (7)"));
    assert!(has("consequence (2)"));
    assert!(has("forall-intro"));
    assert!(has("forall-elim"));
}

/// Everything proved symbolically is confirmed by bounded model checking.
#[test]
fn proof_system_and_model_agree() {
    for cv in cross_validate_scripts(3).unwrap() {
        assert!(cv.agreed(), "{}: {:?}", cv.script, cv.model_result);
    }
}

/// §3.4: each inference rule is sound in the model — validated
/// empirically on seeded random instances.
#[test]
fn all_ten_rules_empirically_sound() {
    for report in validate_all_rules(7, 25).unwrap() {
        assert!(report.sound(), "{}: {:?}", report.rule, report.violations);
    }
}

/// §4: `STOP | P = P` — the model cannot express the possibility of
/// deadlock.
#[test]
fn section4_stop_choice_identity() {
    let uni = Universe::new(1);
    for (defs, name) in [
        (csp::examples::pipeline(), "copier"),
        (csp::examples::pipeline(), "pipeline"),
        (csp::examples::protocol(), "receiver"),
    ] {
        let uni = if name == "receiver" {
            Universe::new(1).with_named("M", [Value::nat(0), Value::nat(1)])
        } else {
            uni.clone()
        };
        let (a, b) = stop_choice_identity(&defs, &uni, name, 3).unwrap();
        assert_eq!(a, b, "identity fails for {name}");
    }
}

/// §4: STOP satisfies any satisfiable invariant — partial correctness
/// cannot rule out doing nothing.
#[test]
fn section4_stop_satisfies_satisfiable_invariants() {
    let wb = Workbench::new();
    let mut wb2 = wb.clone();
    wb2.define_source("donothing = STOP").unwrap();
    wb2.declare_channels(["output", "input", "wire"]);
    for claim in ["output <= input", "#output <= 3", "f(wire) <= input"] {
        let verdict = wb2.check_sat("donothing", claim, 4).unwrap();
        assert!(verdict.holds(), "STOP should satisfy {claim}");
    }
}

/// §1.0's copier traces are exactly reproduced.
#[test]
fn section1_copier_traces() {
    let wb = Workbench::new().with_universe(Universe::new(27)).to_owned();
    let mut wb = wb;
    wb.define_source("copier = input?x:NAT -> wire!x -> copier")
        .unwrap();
    let traces = wb.traces("copier", 5).unwrap();
    // (i) the empty trace
    assert!(traces.contains(&Trace::empty()));
    // (ii) <input.3, wire.3>
    assert!(traces.contains(&Trace::parse_like([
        ("input", Value::nat(3)),
        ("wire", Value::nat(3)),
    ])));
    // (iii) <input.27, wire.27, input.0, wire.0, input.3>
    assert!(traces.contains(&Trace::parse_like([
        ("input", Value::nat(27)),
        ("wire", Value::nat(27)),
        ("input", Value::nat(0)),
        ("wire", Value::nat(0)),
        ("input", Value::nat(3)),
    ])));
    // And the copier never invents values: wire history always a prefix
    // of input history.
    for t in traces.iter() {
        let h = t.history();
        assert!(h
            .on(&Channel::simple("wire"))
            .is_prefix_of(&h.on(&Channel::simple("input"))));
    }
}

/// The full pipeline: prove, model-check, execute, conform — for each of
/// the paper's three systems.
#[test]
fn end_to_end_on_all_paper_systems() {
    // Pipeline.
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    assert!(wb.lint().is_empty());
    assert!(wb
        .check_sat("pipeline", "output <= input", 3)
        .unwrap()
        .holds());
    let run = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 20,
                scheduler: Scheduler::seeded(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(wb
        .conformance("pipeline", &run, ["output <= input"])
        .unwrap()
        .conforms());

    // Protocol.
    let mut wb = Workbench::new()
        .with_universe(Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp::examples::PROTOCOL_SRC).unwrap();
    assert!(wb
        .check_sat("protocol", "output <= input", 3)
        .unwrap()
        .holds());
    let run = wb
        .run(
            "protocol",
            RunOptions {
                max_steps: 30,
                scheduler: Scheduler::seeded(2),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(wb
        .conformance("protocol", &run, ["output <= input"])
        .unwrap()
        .conforms());

    // Multiplier (rows bounded for a finite carrier).
    let mut wb = Workbench::new().with_universe(Universe::new(10));
    wb.bind_vector("v", &[2, 3, 5]);
    wb.define_source(
        "mult[i:1..3] = row[i]?x:{0..1} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
         zeroes = col[0]!0 -> zeroes
         last = col[3]?y:NAT -> output!y -> last
         network = zeroes || mult[1] || mult[2] || mult[3] || last
         multiplier = chan col[0..3]; network",
    )
    .unwrap();
    let inv = "forall i:NAT. 1 <= i and i <= #output => \
               output[i] == v[1]*row[1][i] + v[2]*row[2][i] + v[3]*row[3][i]";
    assert!(wb.check_sat("multiplier", inv, 4).unwrap().holds());
    let run = wb
        .run(
            "multiplier",
            RunOptions {
                max_steps: 40,
                scheduler: Scheduler::seeded(3),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(wb
        .conformance("multiplier", &run, [inv])
        .unwrap()
        .conforms());
}

/// §3.3's fixpoint construction converges on all paper systems and
/// agrees with the direct semantics.
#[test]
fn fixpoint_converges_on_paper_systems() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    let run = wb.fixpoint(4, 20).unwrap();
    assert!(run.converged_at.is_some());
    let key = ("copier".to_string(), vec![]);
    let growth = run.growth_of(&key);
    assert!(growth.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(
        run.limit().get(&key).unwrap(),
        &wb.denote("copier", 4).unwrap()
    );
}

/// The buffer chain's capacity bound is tight: #in ≤ #out + 2 is proven
/// (see csp-proof's buffer scripts) while the tighter +1 bound is
/// refuted by the model checker with a concrete witness.
#[test]
fn buffer_capacity_is_exactly_two() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::BUFFER2_SRC).unwrap();
    assert!(wb
        .check_sat("buffer2", "#in <= #out + 2", 5)
        .unwrap()
        .holds());
    match wb.check_sat("buffer2", "#in <= #out + 1", 5).unwrap() {
        SatResult::Counterexample { trace, .. } => {
            // Two inputs in flight, none delivered yet.
            assert_eq!(trace.len(), 2, "{trace}");
        }
        other => panic!("expected refutation, got {other:?}"),
    }
}
