//! Property tests for the assertion language, centred on the
//! environment lemmas of §3.4 that the soundness proofs rest on:
//!
//! * lemma (a): `(ρ + ch(s))⟦R^x_e⟧ = (ρ[⟦e⟧/x] + ch(s))⟦R⟧`,
//! * lemma (b): `(ρ + ch(<>))⟦R⟧ = ρ⟦R_<>⟧`,
//! * lemma (c): `(ρ + ch(s))⟦R^c_{e^c}⟧ = (ρ + ch((c.e)^s))⟦R⟧`,
//! * lemma (d): restriction invariance for unmentioned channels,
//!
//! plus parser/printer round-tripping for the assertion syntax.

use csp::{
    parse_assertion, Assertion, Channel, ChannelInfo, CmpOp, Env, EvalCtx, Expr, FuncTable,
    History, STerm, Term, Trace, Universe, Value,
};
use proptest::prelude::*;

fn info() -> ChannelInfo {
    ChannelInfo::new()
        .with_channels(["a", "b", "wire", "input"])
        .with_funcs(["f"])
}

// ------------------------------------------------------------ strategies --

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..3).prop_map(Value::nat),
        Just(Value::sym("ACK")),
        Just(Value::sym("NACK")),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            prop_oneof![Just("a"), Just("b"), Just("wire"), Just("input")],
            arb_value(),
        ),
        0..6,
    )
    .prop_map(|pairs| {
        Trace::from_events(
            pairs
                .into_iter()
                .map(|(c, v)| csp::Event::new(Channel::simple(c), v)),
        )
    })
}

fn arb_sterm() -> impl Strategy<Value = STerm> {
    let leaf = prop_oneof![
        Just(STerm::chan("a")),
        Just(STerm::chan("b")),
        Just(STerm::chan("wire")),
        Just(STerm::Empty),
        (0i64..3).prop_map(|n| STerm::Lit(vec![Term::int(n)])),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            ((0i64..3), inner.clone())
                .prop_map(|(n, s)| STerm::Cons(Box::new(Term::int(n)), Box::new(s))),
            inner.clone().prop_map(|s| s.app("f")),
            (inner.clone(), inner).prop_map(|(x, y)| STerm::Concat(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..4).prop_map(Term::int),
        Just(Term::var("x")),
        arb_sterm().prop_map(Term::length),
        (arb_sterm(), 1i64..4).prop_map(|(s, i)| Term::Index(Box::new(s), Box::new(Term::int(i)))),
        (arb_sterm().prop_map(Term::length), 0i64..3).prop_map(|(l, n)| l.add(Term::int(n))),
    ]
}

fn arb_assertion() -> impl Strategy<Value = Assertion> {
    let atom = prop_oneof![
        (arb_sterm(), arb_sterm()).prop_map(|(s, t)| Assertion::Prefix(s, t)),
        (arb_sterm(), arb_sterm()).prop_map(|(s, t)| Assertion::SeqEq(s, t)),
        (arb_term(), arb_term()).prop_map(|(x, y)| Assertion::Cmp(CmpOp::Le, x, y)),
        (arb_term(), arb_term()).prop_map(|(x, y)| Assertion::Cmp(CmpOp::Eq, x, y)),
        Just(Assertion::True),
        Just(Assertion::False),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.clone().prop_map(Assertion::negate),
        ]
    })
}

/// Evaluates, returning `None` when the generated instance falls outside
/// the typed fragment (e.g. an ACK flowing into an integer comparison) —
/// such instances are skipped, matching the paper's implicit typing
/// assumption (§1.1: "a strict typing system would be desirable …
/// we shall henceforth ignore the matter").
fn try_eval(a: &Assertion, h: &History, env: &Env) -> Option<bool> {
    let funcs = FuncTable::with_builtins();
    let uni = Universe::new(3);
    EvalCtx::new(env, h, &funcs, &uni).assertion(a).ok()
}

fn eval_with(a: &Assertion, h: &History, env: &Env) -> bool {
    try_eval(a, h, env).expect("instance outside the typed fragment")
}

// ------------------------------------------------------------ properties --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse round-trips on the generated fragment.
    #[test]
    fn display_parse_roundtrip(a in arb_assertion()) {
        let printed = a.to_string();
        let reparsed = parse_assertion(&printed, &info())
            .unwrap_or_else(|e| panic!("unparsable rendering `{printed}`: {e}"));
        prop_assert_eq!(reparsed, a);
    }

    /// Lemma (b): evaluating `R_<>` in any history equals evaluating `R`
    /// in the empty history.
    #[test]
    fn lemma_b_empty_substitution(a in arb_assertion(), s in arb_trace()) {
        let env = Env::new().bind("x", Value::nat(1));
        let substituted = csp::Assertion::to_string(&csp_subst_empty(&a));
        let _ = substituted;
        let lhs = try_eval(&csp_subst_empty(&a), &s.history(), &env);
        let rhs = try_eval(&a, &History::empty(), &env);
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma (c): `R^c_{e^c}` evaluated in `ch(s)` equals `R` evaluated
    /// in `ch((c.e)^s)`.
    #[test]
    fn lemma_c_channel_cons(a in arb_assertion(), s in arb_trace(), v in arb_value()) {
        let env = Env::new().bind("x", Value::nat(1));
        let c = csp::ChanRef::simple("wire");
        let substituted =
            csp::subst_chan_cons(&a, &c, &Term::Expr(Expr::Const(v.clone())));
        let consed = s.history().cons_on(&Channel::simple("wire"), v);
        let lhs = try_eval(&substituted, &s.history(), &env);
        let rhs = try_eval(&a, &consed, &env);
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma (a): substituting a constant for a variable equals binding
    /// it in the environment.
    #[test]
    fn lemma_a_variable_substitution(a in arb_assertion(), s in arb_trace(), n in 0i64..4) {
        let substituted = csp::subst_var(&a, "x", &Expr::int(n));
        let lhs = try_eval(&substituted, &s.history(), &Env::new().bind("x", Value::nat(9)));
        let rhs = try_eval(&a, &s.history(), &Env::new().bind("x", Value::Int(n)));
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma (d): evaluation ignores channels the assertion does not
    /// mention — here, events on `input` never change an assertion over
    /// `a`, `b`, `wire` only.
    #[test]
    fn lemma_d_restriction_invariance(a in arb_assertion(), s in arb_trace(), v in arb_value()) {
        prop_assume!(!a.channel_bases().contains("input"));
        let env = Env::new().bind("x", Value::nat(1));
        let with_event = s.snoc(csp::Event::new(Channel::simple("input"), v));
        let lhs = try_eval(&a, &s.history(), &env);
        let rhs = try_eval(&a, &with_event.history(), &env);
        prop_assume!(lhs.is_some() && rhs.is_some());
        prop_assert_eq!(lhs, rhs);
    }

    /// Double negation and De Morgan at the evaluation level.
    #[test]
    fn boolean_laws(a in arb_assertion(), b in arb_assertion(), s in arb_trace()) {
        let env = Env::new().bind("x", Value::nat(1));
        let h = s.history();
        prop_assume!(
            try_eval(&a, &h, &env).is_some() && try_eval(&b, &h, &env).is_some()
        );
        prop_assert_eq!(
            eval_with(&a.clone().negate().negate(), &h, &env),
            eval_with(&a, &h, &env)
        );
        prop_assert_eq!(
            eval_with(&a.clone().and(b.clone()).negate(), &h, &env),
            eval_with(&a.clone().negate().or(b.clone().negate()), &h, &env)
        );
        // Implication is material.
        prop_assert_eq!(
            eval_with(&a.clone().implies(b.clone()), &h, &env),
            eval_with(&a.negate().or(b), &h, &env)
        );
    }
}

fn csp_subst_empty(a: &Assertion) -> Assertion {
    csp::subst_empty(a)
}

#[test]
fn protocol_cancel_is_idempotent_on_clean_sequences() {
    // f(f(s)) = f(s) whenever f(s) contains no signals — a derived law
    // the paper uses silently.
    use csp::protocol_cancel;
    use csp::Seq;
    let s: Seq<Value> = [
        Value::nat(1),
        Value::sym("NACK"),
        Value::nat(1),
        Value::sym("ACK"),
        Value::nat(2),
    ]
    .into_iter()
    .collect();
    let once = protocol_cancel(&s);
    assert_eq!(protocol_cancel(&once), once);
}
