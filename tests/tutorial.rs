//! Executable version of `docs/TUTORIAL.md` — every claim the tutorial
//! makes is asserted here so the document cannot rot.

use csp::prelude::*;
use csp::{render_report, Assertion, Proof, STerm};

const SPLITTER: &str = "splitter = in?x:NAT -> low!(x % 2) -> high!(x / 2) -> splitter";
const INV: &str = "#low <= #in and #high <= #low";

#[test]
fn section_1_2_define_and_inspect_traces() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let traces = wb.traces("splitter", 3).unwrap();
    assert!(traces.is_prefix_closed());
    // The example trace from the tutorial text: <in.2, low.0, high.1>.
    assert!(traces.contains(&Trace::parse_like([
        ("in", Value::nat(2)),
        ("low", Value::nat(0)),
        ("high", Value::nat(1)),
    ])));
}

#[test]
fn section_3_model_check_both_ways() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    assert!(wb.check_sat("splitter", INV, 5).unwrap().holds());
    // The deliberately wrong direction has a counterexample.
    assert!(!wb.check_sat("splitter", "#in <= #low", 5).unwrap().holds());
}

#[test]
fn section_4_prove_auto_and_render() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let report = wb.prove_auto(&[("splitter", INV)]).unwrap();
    let rendered = render_report("splitter invariant", &report);
    assert!(rendered.contains("recursion (10)"));
    assert!(rendered.contains("input (6)"));
    assert!(rendered.contains("output (5)"));
}

#[test]
fn section_4_manual_copier_proof_shape() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    let wire_le_input = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
    let proof = Proof::recursion(
        "copier",
        wire_le_input.clone(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(wire_le_input.clone(), Proof::Hypothesis)),
        ),
    );
    let goal = Judgement::sat(Process::call("copier"), wire_le_input);
    assert!(wb.prove(&goal, &proof).is_ok());
}

#[test]
fn section_6_execute_and_conform() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let run = wb
        .run(
            "splitter",
            RunOptions {
                max_steps: 30,
                scheduler: Scheduler::seeded(42),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(!run.deadlocked);
    let conf = wb.conformance("splitter", &run, [INV]).unwrap();
    assert!(conf.conforms());
}

#[test]
fn section_7_limits() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let report = wb.deadlocks("splitter", 5).unwrap();
    assert!(report.deadlock_free());
}

#[test]
fn section_11_profile_the_library_claims() {
    // §11's library-side claims: a session records the span taxonomy,
    // results carry their own snapshot via `Metered`, and the counter
    // table renders the names the tutorial quotes.
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let session = wb.session();
    let run = session.fixpoint(3, 16).unwrap();
    assert!(run.metrics().counter("fixpoint.iterations") > 0);

    let metrics = session.metrics();
    let table = metrics.render_table();
    assert!(table.contains("fixpoint.iter"));
    assert!(table.contains("trace.unions"));
    // The folded sink emits the `stack;stack;leaf self-ns` format.
    assert!(session
        .folded_stacks()
        .lines()
        .any(|l| l.starts_with("fixpoint;fixpoint.iter ")));
}

#[test]
fn section_13_language_server_claims() {
    // §13's analysis claims, asserted against the same `AnalysisDb` the
    // server uses: hover data (alphabet + trace-depth bound), recovery
    // past a broken equation, and single-definition incrementality.
    let mut db = csp::AnalysisDb::new();
    db.set_source(SPLITTER);
    assert!(db.parse_errors().is_empty());
    assert_eq!(db.alphabet("splitter").unwrap().len(), 3);
    // in?x, low!…, high!… — three communications per unfolding.
    assert_eq!(db.prefix_depth("splitter"), Some(3));

    // A broken first equation does not silence later findings.
    let broken = format!("broken = in?x ->\n{SPLITTER}\nlonely = gone!0 -> ghost");
    db.set_source(&broken);
    assert!(!db.parse_errors().is_empty());
    assert!(db.diagnostics().iter().any(|d| d.code.code() == "CSP001"));
    assert!(db.definitions().get("splitter").is_some());

    // Editing one definition re-lints it (and callers), not the module.
    let edited = broken.replace("gone!0", "gone!1");
    let stats = db.set_source(&edited);
    assert_eq!(stats.relinted, 1);
    assert!(stats.cached >= 2);
}
