//! Executable version of `docs/TUTORIAL.md` — every claim the tutorial
//! makes is asserted here so the document cannot rot.

use csp::prelude::*;
use csp::{render_report, Assertion, Proof, STerm};

const SPLITTER: &str = "splitter = in?x:NAT -> low!(x % 2) -> high!(x / 2) -> splitter";
const INV: &str = "#low <= #in and #high <= #low";

#[test]
fn section_1_2_define_and_inspect_traces() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let traces = wb.traces("splitter", 3).unwrap();
    assert!(traces.is_prefix_closed());
    // The example trace from the tutorial text: <in.2, low.0, high.1>.
    assert!(traces.contains(&Trace::parse_like([
        ("in", Value::nat(2)),
        ("low", Value::nat(0)),
        ("high", Value::nat(1)),
    ])));
}

#[test]
fn section_3_model_check_both_ways() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    assert!(wb.check_sat("splitter", INV, 5).unwrap().holds());
    // The deliberately wrong direction has a counterexample.
    assert!(!wb.check_sat("splitter", "#in <= #low", 5).unwrap().holds());
}

#[test]
fn section_4_prove_auto_and_render() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let report = wb.prove_auto(&[("splitter", INV)]).unwrap();
    let rendered = render_report("splitter invariant", &report);
    assert!(rendered.contains("recursion (10)"));
    assert!(rendered.contains("input (6)"));
    assert!(rendered.contains("output (5)"));
}

#[test]
fn section_4_manual_copier_proof_shape() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    let wire_le_input = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
    let proof = Proof::recursion(
        "copier",
        wire_le_input.clone(),
        Proof::input(
            "v",
            Proof::output(Proof::consequence(wire_le_input.clone(), Proof::Hypothesis)),
        ),
    );
    let goal = Judgement::sat(Process::call("copier"), wire_le_input);
    assert!(wb.prove(&goal, &proof).is_ok());
}

#[test]
fn section_6_execute_and_conform() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let run = wb
        .run(
            "splitter",
            RunOptions {
                max_steps: 30,
                scheduler: Scheduler::seeded(42),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(!run.deadlocked);
    let conf = wb.conformance("splitter", &run, [INV]).unwrap();
    assert!(conf.conforms());
}

#[test]
fn section_7_limits() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let report = wb.deadlocks("splitter", 5).unwrap();
    assert!(report.deadlock_free());
}

#[test]
fn section_11_profile_the_library_claims() {
    // §11's library-side claims: a session records the span taxonomy,
    // results carry their own snapshot via `Metered`, and the counter
    // table renders the names the tutorial quotes.
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(SPLITTER).unwrap();
    let session = wb.session();
    let run = session.fixpoint(3, 16).unwrap();
    assert!(run.metrics().counter("fixpoint.iterations") > 0);

    let metrics = session.metrics();
    let table = metrics.render_table();
    assert!(table.contains("fixpoint.iter"));
    assert!(table.contains("trace.unions"));
    // The folded sink emits the `stack;stack;leaf self-ns` format.
    assert!(session
        .folded_stacks()
        .lines()
        .any(|l| l.starts_with("fixpoint;fixpoint.iter ")));
}

#[test]
fn section_14_verification_service_claims() {
    // §14's walkthrough, executed over a real socket: the listening
    // line's URL shape, the cold/warm lint pair (miss → hit,
    // byte-identical, an edit re-keys to miss), the quoted check and
    // prove envelopes, /healthz, and the /metrics cache ledger.
    use csp::serve::{Client, CspServer, ServeConfig};
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_cap: 1024,
    };
    let handle = CspServer::bind(&cfg).expect("bind").spawn().expect("spawn");
    let mut client = Client::connect(&handle.url()).expect("connect");

    let source = "copier = input?x:NAT -> wire!x -> copier\\n\
                  recopier = wire?y:NAT -> output!y -> recopier\\n\
                  pipeline = chan wire; (copier || recopier)\\n";
    let lint = format!("{{\"source\":\"{source}\"}}");
    let cold = client.post("/v1/lint", &lint).expect("cold lint");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("X-Csp-Cache"), Some("miss"));
    assert!(
        cold.body
            .starts_with("{\"schema\":\"csp/v1\",\"command\":\"serve.lint\",\"data\":"),
        "{}",
        cold.body
    );
    assert!(cold.body.contains("\"definitions\":3"), "{}", cold.body);
    let warm = client.post("/v1/lint", &lint).expect("warm lint");
    assert_eq!(warm.header("X-Csp-Cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "hits are byte-identical");
    // Any edit moves the content hash: no staleness, nothing to evict.
    let edited = format!("{{\"source\":\"{source}probe = p!0 -> probe\\n\"}}");
    let relint = client.post("/v1/lint", &edited).expect("re-lint");
    assert_eq!(relint.header("X-Csp-Cache"), Some("miss"));

    // The quoted §14 check and prove responses, field for field.
    let check = client
        .post(
            "/v1/check",
            &format!(
                "{{\"source\":\"{source}\",\"process\":\"pipeline\",\
                 \"assertion\":\"output <= input\",\"depth\":3,\"nat_bound\":1}}"
            ),
        )
        .expect("check");
    assert!(check.body.contains("\"holds\":true"), "{}", check.body);
    assert!(
        check.body.contains("\"traces_checked\":17"),
        "{}",
        check.body
    );
    let prove = client
        .post(
            "/v1/prove",
            &format!(
                "{{\"source\":\"{source}\",\"specs\":[{{\"process\":\"copier\",\
                 \"assertion\":\"wire <= input\"}}],\"nat_bound\":1}}"
            ),
        )
        .expect("prove");
    assert!(prove.body.contains("\"proved\":true"), "{}", prove.body);
    assert!(prove.body.contains("\"rules\":5"), "{}", prove.body);

    let health = client.get("/healthz").expect("healthz");
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    // The cache ledger partitions the request count.
    let metrics = client.get("/metrics").expect("metrics");
    let counter = |name: &str| -> u64 {
        metrics
            .body
            .lines()
            .find_map(|l| l.strip_prefix(&format!("csp_counter{{name=\"{name}\"}} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    assert_eq!(
        counter("serve.cache.hit") + counter("serve.cache.miss") + counter("serve.cache.bypass"),
        counter("serve.requests"),
        "{}",
        metrics.body
    );
    assert_eq!(counter("serve.cache.hit"), 1, "{}", metrics.body);
    handle.stop();
}

#[test]
fn section_15_engine_selection_claims() {
    // §15's claims: both engines answer the pipeline check identically
    // (the quoted "17 traces"), `SatResult::engine()` reports the
    // resolved backend, and the `Auto` default resolves compiled for
    // the hidden network but enumerative for the sequential copier.
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();

    let checked = |engine: Engine| -> (usize, Engine) {
        let verdict = wb
            .check_sat(
                "pipeline",
                "output <= input",
                SatOptions::from(3).with_engine(engine),
            )
            .unwrap();
        match verdict {
            SatResult::Holds {
                traces_checked,
                engine,
                ..
            } => (traces_checked, engine),
            SatResult::Counterexample { trace, .. } => panic!("refuted: {trace}"),
        }
    };
    let (enum_traces, enum_engine) = checked(Engine::Enumerative);
    let (comp_traces, comp_engine) = checked(Engine::Compiled);
    assert_eq!(enum_engine, Engine::Enumerative);
    assert_eq!(comp_engine, Engine::Compiled);
    // The quoted verdict line: "... on 17 traces (depth 3, ...)".
    assert_eq!(enum_traces, 17);
    assert_eq!(comp_traces, enum_traces, "engines agree trace for trace");

    // `Auto` resolves per query shape and reports the resolved engine,
    // never the literal `auto`.
    let auto_net = wb.check_sat("pipeline", "output <= input", 3).unwrap();
    assert_eq!(auto_net.engine(), Engine::Compiled);
    let auto_seq = wb.check_sat("copier", "wire <= input", 3).unwrap();
    assert_eq!(auto_seq.engine(), Engine::Enumerative);
}

#[test]
fn section_13_language_server_claims() {
    // §13's analysis claims, asserted against the same `AnalysisDb` the
    // server uses: hover data (alphabet + trace-depth bound), recovery
    // past a broken equation, and single-definition incrementality.
    let mut db = csp::AnalysisDb::new();
    db.set_source(SPLITTER);
    assert!(db.parse_errors().is_empty());
    assert_eq!(db.alphabet("splitter").unwrap().len(), 3);
    // in?x, low!…, high!… — three communications per unfolding.
    assert_eq!(db.prefix_depth("splitter"), Some(3));

    // A broken first equation does not silence later findings.
    let broken = format!("broken = in?x ->\n{SPLITTER}\nlonely = gone!0 -> ghost");
    db.set_source(&broken);
    assert!(!db.parse_errors().is_empty());
    assert!(db.diagnostics().iter().any(|d| d.code.code() == "CSP001"));
    assert!(db.definitions().get("splitter").is_some());

    // Editing one definition re-lints it (and callers), not the module.
    let edited = broken.replace("gone!0", "gone!1");
    let stats = db.set_source(&edited);
    assert_eq!(stats.relinted, 1);
    assert!(stats.cached >= 2);
}

#[test]
fn section_16_causal_monitor_claims() {
    // §16's claims, asserted against the exact commands quoted there:
    // the seeded crash-and-replay run conforms with 16 events checked,
    // its MSC opens with the quoted participant lines and a death note,
    // the log validates, and the `#output <= 2` variant is violated at
    // step 9 / visible #6.
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    let run_with = |spec: MonitorSpec| {
        wb.run(
            "pipeline",
            RunOptions {
                max_steps: 24,
                scheduler: Scheduler::seeded(7),
                faults: FaultPlan::parse("crash:copier@6;restart:replay").unwrap(),
                monitor: Some(spec),
                ..RunOptions::default()
            },
        )
        .unwrap()
    };

    let res = run_with(wb.monitor_spec(["output <= input"]).unwrap());
    let monitor = res.monitor.as_ref().unwrap();
    assert!(monitor.is_conforming());
    assert_eq!(monitor.events_checked, 16);
    assert_eq!(res.causal.len(), 26);
    assert_eq!(res.causal.dropped(), 0);
    res.causal.validate().expect("clock-consistent");
    let mmd = csp::msc::render_mermaid(&res.causal);
    assert!(mmd.starts_with(
        "sequenceDiagram\n    participant P0 as copier\n    participant P1 as recopier\n"
    ));
    assert!(mmd.contains("Note over P0: death: injected crash"));
    assert!(mmd.contains("Note over P0: restart"));
    // The chart round-trips the happens-before relation, as promised.
    let parsed = csp::msc::parse_mermaid(&mmd).unwrap();
    assert_eq!(parsed.hb_edges(), res.causal.comm_hb_edges());

    // The quoted violation: seed 7 without faults, `#output <= 2`.
    let violated = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 24,
                scheduler: Scheduler::seeded(7),
                monitor: Some(wb.monitor_spec(["#output <= 2"]).unwrap()),
                ..RunOptions::default()
            },
        )
        .unwrap();
    let monitor = violated.monitor.as_ref().unwrap();
    assert!(!monitor.is_conforming());
    assert_eq!(monitor.events_checked, 7);
    let v = monitor.violation.as_ref().unwrap();
    assert_eq!((v.step, v.visible_index), (9, 6));
    assert_eq!(
        v.to_string(),
        "step 9 (visible #6) `output.2`: assertion `#output <= 2` falsified"
    );

    // The envelope members the section describes.
    assert_eq!(
        csp::serve::render_supervision(&res),
        "{\"deaths\":1,\"recovered\":1,\"causal_events\":26,\"causal_dropped\":0}"
    );
    assert!(csp::serve::render_monitor(&res).contains("\"verdict\":\"conforming\""));
}
