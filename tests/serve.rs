//! Integration tests for `csp serve` — the persistent verification
//! service. The load-bearing claims: the cross-request cache is
//! *transparent* (a warm response is byte-identical to a cold one, with
//! the cache's fingerprints confined to the `X-Csp-Cache`/`X-Csp-Ms`
//! headers), and the `/metrics` cache counters partition the request
//! count exactly.

use csp::serve::http::Response;
use csp::serve::{Client, CspServer, ServeConfig, ServeState};
use proptest::prelude::*;

const PIPELINE: &str = "copier = input?x:NAT -> wire!x -> copier\n\
                        recopier = wire?y:NAT -> output!y -> recopier\n\
                        pipeline = chan wire; (copier || recopier)\n";

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.extra
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Headers with the per-request timing field dropped — everything that
/// must be reproducible across identical requests.
fn stable_headers(resp: &Response) -> Vec<(String, String)> {
    resp.extra
        .iter()
        .filter(|(n, _)| n != "X-Csp-Ms")
        .cloned()
        .collect()
}

/// Zeroes `"ms":<float>` values — the phase timings in `/v1/profile`
/// responses are the one place identical requests legitimately produce
/// different bytes on different servers.
fn scrub_ms(body: &[u8]) -> String {
    let s = String::from_utf8_lossy(body);
    let mut out = String::with_capacity(s.len());
    let mut rest = &*s;
    while let Some(at) = rest.find("\"ms\":") {
        let (head, tail) = rest.split_at(at + "\"ms\":".len());
        out.push_str(head);
        out.push('0');
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The module after an edit sequence: each edit appends one probe
/// definition, mirroring an editor session growing a file.
fn edited_source(edits: &[u8]) -> String {
    let mut src = PIPELINE.to_string();
    for (i, v) in edits.iter().enumerate() {
        src.push_str(&format!("probe_{i} = probe!{v} -> probe_{i}\n"));
    }
    src
}

fn body_for(endpoint: usize, source: &str) -> (&'static str, String) {
    let src = json_escape(source);
    match endpoint {
        0 => ("/v1/lint", format!("{{\"source\":\"{src}\"}}")),
        1 => (
            "/v1/check",
            format!(
                "{{\"source\":\"{src}\",\"process\":\"pipeline\",\
                 \"assertion\":\"output <= input\",\"depth\":3,\"nat_bound\":1}}"
            ),
        ),
        2 => (
            "/v1/prove",
            format!(
                "{{\"source\":\"{src}\",\"specs\":[{{\"process\":\"copier\",\
                 \"assertion\":\"wire <= input\"}}],\"nat_bound\":1}}"
            ),
        ),
        _ => (
            "/v1/profile",
            format!("{{\"source\":\"{src}\",\"depth\":3,\"nat_bound\":1}}"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any edit sequence and verification endpoint, a warm (cached)
    /// response is byte-identical to a cold server's response to the
    /// same request — status, body, and all headers except the
    /// `X-Csp-Ms` timing field. The cache may only announce itself.
    #[test]
    fn warm_responses_are_byte_identical_to_cold(
        edits in prop::collection::vec(0u8..3, 0..4),
        endpoint in 0usize..4,
    ) {
        let (path, body) = body_for(endpoint, &edited_source(&edits));

        let cold_state = ServeState::new(64, 2);
        let cold = cold_state.post(path, &body);
        prop_assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
        prop_assert_eq!(header(&cold, "X-Csp-Cache"), Some("miss"));

        let warm_state = ServeState::new(64, 2);
        let first = warm_state.post(path, &body);
        prop_assert_eq!(header(&first, "X-Csp-Cache"), Some("miss"));
        let warm = warm_state.post(path, &body);
        prop_assert_eq!(header(&warm, "X-Csp-Cache"), Some("hit"));

        prop_assert_eq!(cold.status, warm.status);
        // A hit returns the cached bytes verbatim …
        prop_assert_eq!(&first.body, &warm.body);
        // … and matches a cold server byte-for-byte once the profile
        // phase timings are zeroed out.
        prop_assert_eq!(scrub_ms(&cold.body), scrub_ms(&warm.body));
        // Identical headers modulo the cache verdict and timing.
        let strip = |r: &Response| {
            stable_headers(r)
                .into_iter()
                .filter(|(n, _)| n != "X-Csp-Cache")
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(strip(&cold), strip(&warm));
    }
}

/// `serve.cache.hit + serve.cache.miss + serve.cache.bypass` accounts
/// for every verification request — and only those: `/healthz`,
/// `/metrics`, 404s and 405s never enter the ledger.
#[test]
fn metrics_cache_counters_partition_the_request_count() {
    let state = ServeState::new(16, 2);
    let (lint_path, lint_body) = body_for(0, PIPELINE);
    let (check_path, check_body) = body_for(1, PIPELINE);

    assert_eq!(state.post(lint_path, &lint_body).status, 200); // miss
    assert_eq!(state.post(lint_path, &lint_body).status, 200); // hit
    assert_eq!(state.post(check_path, &check_body).status, 200); // miss
                                                                 // Malformed JSON classifies as bypass (no key was computable).
    assert_eq!(state.post(lint_path, "{not json").status, 400);
    // /v1/run never consults the cache: always bypass.
    let run_body = format!(
        "{{\"source\":\"{}\",\"process\":\"pipeline\",\"steps\":8,\
         \"seed\":1,\"nat_bound\":1}}",
        json_escape(PIPELINE)
    );
    assert_eq!(state.post("/v1/run", &run_body).status, 200);
    // Endpoints outside the service surface stay out of the ledger.
    assert_eq!(state.post("/v1/nope", "{}").status, 404);

    let snap = state.metrics();
    let hit = snap.counter("serve.cache.hit");
    let miss = snap.counter("serve.cache.miss");
    let bypass = snap.counter("serve.cache.bypass");
    assert_eq!(hit, 1);
    assert_eq!(miss, 2);
    assert_eq!(bypass, 2);
    assert_eq!(hit + miss + bypass, snap.counter("serve.requests"));
}

/// Socket-level round trip: health, a cold/warm lint pair over one
/// keep-alive connection, and a Prometheus scrape reflecting it.
#[test]
fn socket_round_trip_reports_prometheus_counters() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_cap: 64,
    };
    let handle = CspServer::bind(&cfg).expect("bind").spawn().expect("spawn");
    let mut client = Client::connect(&handle.url()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"command\":\"serve.health\""),
        "{}",
        health.body
    );

    let (path, body) = body_for(0, PIPELINE);
    let cold = client.post(path, &body).expect("cold lint");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("X-Csp-Cache"), Some("miss"));
    let warm = client.post(path, &body).expect("warm lint");
    assert_eq!(warm.header("X-Csp-Cache"), Some("hit"));
    assert_eq!(cold.body, warm.body);

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .body
            .contains("csp_counter{name=\"serve.requests\"} 2"),
        "{}",
        metrics.body
    );
    assert!(
        metrics
            .body
            .contains("csp_counter{name=\"serve.cache.hit\"} 1"),
        "{}",
        metrics.body
    );
    // Ring-buffer overflow is first-class in the exposition: the
    // `csp_events_dropped` gauge is present even while it reads 0.
    assert!(
        metrics
            .body
            .contains("csp_events_dropped{name=\"obs.events_dropped\"} 0"),
        "{}",
        metrics.body
    );
    handle.stop();
}

/// The engine selector is folded into the response-cache key (compiled
/// and enumerative answers to one query never alias), reported in the
/// envelope `data`, counted per engine in `/metrics`, and rejected with
/// a 400 when unknown — all without breaking the cache-counter
/// partition.
#[test]
fn engine_is_keyed_counted_and_reported() {
    let state = ServeState::new(16, 2);
    let src = json_escape(PIPELINE);
    let check_with = |engine: &str| {
        format!(
            "{{\"source\":\"{src}\",\"process\":\"pipeline\",\
             \"assertion\":\"output <= input\",\"depth\":3,\"nat_bound\":1,\
             \"engine\":\"{engine}\"}}"
        )
    };

    let compiled = state.post("/v1/check", &check_with("compiled"));
    assert_eq!(
        compiled.status,
        200,
        "{}",
        String::from_utf8_lossy(&compiled.body)
    );
    assert_eq!(header(&compiled, "X-Csp-Cache"), Some("miss"));
    assert!(
        String::from_utf8_lossy(&compiled.body).contains("\"engine\":\"compiled\""),
        "{}",
        String::from_utf8_lossy(&compiled.body)
    );

    // Same query, different engine: must be a fresh key, and the body
    // must say which backend answered.
    let enumerative = state.post("/v1/check", &check_with("enumerative"));
    assert_eq!(header(&enumerative, "X-Csp-Cache"), Some("miss"));
    assert!(String::from_utf8_lossy(&enumerative.body).contains("\"engine\":\"enumerative\""));
    assert_ne!(compiled.body, enumerative.body);

    // Re-posting the compiled query is a verbatim hit.
    let again = state.post("/v1/check", &check_with("compiled"));
    assert_eq!(header(&again, "X-Csp-Cache"), Some("hit"));
    assert_eq!(again.body, compiled.body);

    // `auto` resolves (the pipeline hides a channel, so: compiled) and
    // reports the *resolution*, not the selector.
    let auto = state.post("/v1/check", &check_with("auto"));
    assert_eq!(header(&auto, "X-Csp-Cache"), Some("miss"));
    assert!(String::from_utf8_lossy(&auto.body).contains("\"engine\":\"compiled\""));

    // Prove envelopes carry the member too.
    let prove_body = format!(
        "{{\"source\":\"{src}\",\"nat_bound\":1,\"engine\":\"enumerative\",\
         \"specs\":[{{\"process\":\"copier\",\"assertion\":\"wire <= input\"}}]}}"
    );
    let prove = state.post("/v1/prove", &prove_body);
    assert_eq!(
        prove.status,
        200,
        "{}",
        String::from_utf8_lossy(&prove.body)
    );
    assert!(String::from_utf8_lossy(&prove.body).contains("\"engine\":\"enumerative\""));

    // An unknown engine is a 400 naming the valid spellings.
    let bad = state.post("/v1/check", &check_with("turbo"));
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("enumerative"));

    // Ledger intact, per-engine counters as posted (the rejected
    // request never parsed an engine, so it counts nowhere).
    let snap = state.metrics();
    assert_eq!(snap.counter("serve.engine.compiled"), 2);
    assert_eq!(snap.counter("serve.engine.enumerative"), 2);
    assert_eq!(snap.counter("serve.engine.auto"), 1);
    let hit = snap.counter("serve.cache.hit");
    let miss = snap.counter("serve.cache.miss");
    let bypass = snap.counter("serve.cache.bypass");
    assert_eq!(hit + miss + bypass, snap.counter("serve.requests"));
    assert_eq!(hit, 1);
    assert_eq!(bypass, 1);
}

/// `/v1/run` monitoring: `"monitor": true` checks trace membership,
/// an assertion string additionally re-checks it per prefix, and the
/// response always carries machine-readable `"supervision"` and
/// `"monitor"` members (the latter `null` when monitoring is off).
#[test]
fn run_endpoint_reports_monitor_and_supervision() {
    let state = ServeState::new(16, 2);
    let body = |monitor: &str| {
        format!(
            "{{\"source\":\"{}\",\"process\":\"pipeline\",\"steps\":12,\
             \"seed\":7,\"nat_bound\":1,\"monitor\":{monitor}}}",
            json_escape(PIPELINE)
        )
    };

    let off = state.post("/v1/run", &body("false"));
    assert_eq!(off.status, 200);
    let off_text = String::from_utf8(off.body).unwrap();
    assert!(off_text.contains("\"monitor\":null"));
    assert!(off_text.contains("\"supervision\":{\"deaths\":0,\"recovered\":0,"));

    let on = state.post("/v1/run", &body("true"));
    let on_text = String::from_utf8(on.body).unwrap();
    assert!(on_text.contains("\"verdict\":\"conforming\""));
    assert!(on_text.contains("\"violation\":null"));

    let held = state.post("/v1/run", &body("\"output <= input\""));
    let held_text = String::from_utf8(held.body).unwrap();
    assert!(held_text.contains("\"verdict\":\"conforming\""));

    let refuted = state.post("/v1/run", &body("\"#output <= 1\""));
    let refuted_text = String::from_utf8(refuted.body).unwrap();
    assert!(refuted_text.contains("\"verdict\":\"violated\""));
    assert!(refuted_text.contains("\"kind\":\"assertion `#output <= 1` falsified\""));
    assert!(refuted_text.contains("\"causal_history\":["));

    // A malformed monitor field is a 400, classified as bypass.
    let bad = state.post("/v1/run", &body("17"));
    assert_eq!(bad.status, 400);
    let unparsable = state.post("/v1/run", &body("\"not an assertion\""));
    assert_eq!(unparsable.status, 400);
}
