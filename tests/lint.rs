//! Property tests for the linter: over both proptest-generated process
//! terms and csp-verify's seeded [`InstanceGen`] population, the linter
//! must never panic, must be deterministic, and must not invent
//! name-resolution errors for closed terms.

use csp::{Definition, Definitions, InstanceGen, LintCode, Linter, Process, SetExpr};
use proptest::prelude::*;

/// A small Δ-list of closed generator-produced definitions, optionally
/// composed in parallel so the composition passes get exercised too.
fn gen_defs(seed: u64, count: usize, depth: usize) -> Definitions {
    let mut g = InstanceGen::new(seed);
    let mut defs = Definitions::new();
    let mut bodies = Vec::new();
    for i in 0..count {
        let body = g.process(depth);
        bodies.push(Process::call(&format!("p{i}")));
        defs.define(Definition::plain(&format!("p{i}"), body));
    }
    let net = bodies
        .into_iter()
        .reduce(Process::par)
        .unwrap_or(Process::Stop);
    defs.define(Definition::plain("net", net));
    defs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linter_is_total_and_deterministic(
        seed in 0u64..1_000_000,
        count in 1usize..4,
        depth in 0usize..5,
    ) {
        let defs = gen_defs(seed, count, depth);
        let a = Linter::new(&defs).run();
        let b = Linter::new(&defs).run();
        prop_assert_eq!(&a, &b);
    }

    #[test]
    fn closed_generated_terms_resolve_cleanly(
        seed in 0u64..1_000_000,
        count in 1usize..4,
        depth in 0usize..5,
    ) {
        // The generator only emits closed terms over a/b/c that call the
        // definitions we just made, so name resolution must stay quiet.
        let defs = gen_defs(seed, count, depth);
        for d in Linter::new(&defs).run() {
            prop_assert!(
                !matches!(
                    d.code,
                    LintCode::UndefinedProcess
                        | LintCode::ArityMismatch
                        | LintCode::UnboundVariable
                ),
                "spurious {d}"
            );
        }
    }

    #[test]
    fn linter_survives_array_definitions(seed in 0u64..100_000, depth in 0usize..4) {
        let mut g = InstanceGen::new(seed);
        let mut defs = Definitions::new();
        defs.define(Definition::array(
            "cell",
            "i",
            SetExpr::range(0, 2),
            g.process(depth),
        ));
        let _ = Linter::new(&defs).run();
    }
}
