//! Integration tests for the observability layer: the collector must
//! never change *what* the toolchain computes (only record how it was
//! computed), the JSONL sink must round-trip losslessly, and the spans a
//! [`Session`] gathers must nest according to the documented taxonomy.

use csp::obs::{folded_stacks, parse_jsonl};
use csp::prelude::*;
use csp::{fixpoint, fixpoint_with, Definition, Definitions, Env, Process, SetExpr};
use proptest::prelude::*;

const PIPELINE: &str = "copier = input?x:NAT -> wire!x -> copier
     recopier = wire?y:NAT -> output!y -> recopier
     pipeline = chan wire; (copier || recopier)";

fn pipeline_workbench() -> Workbench {
    let mut wb = Workbench::new();
    wb.define_source(PIPELINE).expect("pipeline parses");
    wb
}

// ------------------------------------------------- observer effect --

/// Closed random process terms over channels a/b/c, mirroring the
/// generator in `tests/properties.rs`.
fn arb_process() -> impl Strategy<Value = Process> {
    let leaf = Just(Process::Stop);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("a"), Just("b"), Just("c")],
                0i64..2,
                inner.clone()
            )
                .prop_map(|(c, n, p)| Process::output(c, csp::Expr::int(n), p)),
            (prop_oneof![Just("a"), Just("b"), Just("c")], inner.clone())
                .prop_map(|(c, p)| Process::input(c, "x", SetExpr::range(0, 1), p)),
            (inner.clone(), inner).prop_map(|(p, q)| p.or(q)),
        ]
    })
}

proptest! {
    /// Observation must not perturb the fixpoint: a disabled and an
    /// active collector see identical iterate chains, the same
    /// convergence point, and the same counter tallies. (Span timings
    /// necessarily differ, so they are excluded from the comparison.)
    #[test]
    fn fixpoint_is_identical_under_observation(p in arb_process()) {
        let mut defs = Definitions::new();
        defs.define(Definition::plain("gen", p));
        let uni = Universe::new(1);
        let env = Env::new();

        let quiet = fixpoint(&defs, &uni, &env, 3, 16).expect("quiet run");
        let collector = Collector::new();
        let observed =
            fixpoint_with(&defs, &uni, &env, 3, 16, &collector).expect("observed run");

        prop_assert_eq!(&quiet.iterates, &observed.iterates);
        prop_assert_eq!(quiet.converged_at, observed.converged_at);
        prop_assert_eq!(&quiet.metrics.counters, &observed.metrics.counters);
        // The active run actually recorded something.
        prop_assert!(!collector.records().is_empty());
    }
}

/// The same invariant through the high-level [`Session`] API, on the
/// paper's pipeline (recursion + hiding, which `arb_process` avoids).
#[test]
fn session_fixpoint_matches_unobserved_workbench() {
    let wb = pipeline_workbench();
    let quiet = wb.fixpoint(4, 32).expect("quiet fixpoint");
    let session = wb.session();
    let observed = session.fixpoint(4, 32).expect("observed fixpoint");

    assert_eq!(quiet.iterates, observed.iterates);
    assert_eq!(quiet.converged_at, observed.converged_at);
    assert_eq!(quiet.metrics.counters, observed.metrics.counters);
}

// --------------------------------------------------- JSONL sink --

/// `write_jsonl` → `parse_jsonl` is the identity on a real event log
/// (ids, parents, timestamps, and typed fields all survive).
#[test]
fn jsonl_round_trips_a_session_log() {
    let wb = pipeline_workbench();
    let session = wb.session();
    let res = session
        .check_sat("pipeline", "output <= input", 3)
        .expect("check_sat");
    assert!(res.holds());
    session.fixpoint(3, 16).expect("fixpoint");

    let records = session.events();
    assert!(!records.is_empty(), "session recorded no spans");

    let mut buf = Vec::new();
    session.write_trace_jsonl(&mut buf).expect("serialise");
    let text = String::from_utf8(buf).expect("utf8");
    let parsed = parse_jsonl(&text).expect("parse back");
    assert_eq!(parsed, records);
}

// ------------------------------------------------ span taxonomy --

/// Spans nest per the documented taxonomy: every `fixpoint.key` closes
/// inside a `fixpoint.iter`, every `fixpoint.iter` inside the root
/// `fixpoint` span; ids are allocated in open order and records appear
/// in close order (children before parents).
#[test]
fn session_spans_nest_by_taxonomy() {
    let wb = pipeline_workbench();
    let session = wb.session();
    session.fixpoint(3, 16).expect("fixpoint");

    let records = session.events();
    let name_of = |id: u64| -> &str {
        records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.name.as_str())
            .unwrap_or("<missing>")
    };

    let mut iters = 0;
    let mut keys = 0;
    for r in &records {
        match r.name.as_str() {
            "fixpoint" => assert_eq!(r.parent, None, "fixpoint span must be a root"),
            "fixpoint.iter" => {
                iters += 1;
                assert_eq!(name_of(r.parent.expect("iter has parent")), "fixpoint");
            }
            "fixpoint.key" => {
                keys += 1;
                assert_eq!(name_of(r.parent.expect("key has parent")), "fixpoint.iter");
            }
            other => panic!("unexpected span {other:?} from a fixpoint-only session"),
        }
        assert!(r.end_ns >= r.start_ns, "span closed before it opened");
    }
    assert!(iters >= 2, "expected at least two fixpoint iterations");
    assert!(keys >= iters, "each iteration visits every key");

    // Close order: a child record always precedes its parent record.
    for (i, r) in records.iter().enumerate() {
        if let Some(parent) = r.parent {
            let parent_pos = records
                .iter()
                .position(|p| p.id == parent)
                .expect("parent recorded");
            assert!(
                parent_pos > i,
                "parent {parent} closed before child {}",
                r.id
            );
        }
    }

    // The folded view agrees with the raw records on stack identity.
    let folded = folded_stacks(&records);
    assert!(folded.contains("fixpoint;fixpoint.iter;fixpoint.key"));
}

// ---------------------------------------------- metered results --

/// The per-result snapshot (`Metered`) and the session-wide snapshot
/// agree on the counters the fixpoint contributes.
#[test]
fn metered_result_agrees_with_session_metrics() {
    let wb = pipeline_workbench();
    let session = wb.session();
    let run = session.fixpoint(4, 32).expect("fixpoint");

    let per_result = run.metrics();
    let session_wide = session.metrics();
    for name in [
        "fixpoint.instances",
        "fixpoint.iterations",
        "fixpoint.changed_keys",
        "fixpoint.converged",
    ] {
        assert_eq!(
            per_result.counter(name),
            session_wide.counter(name),
            "counter {name} diverges between result and session"
        );
    }
    assert_eq!(per_result.counter("fixpoint.converged"), 1);
    // The session additionally tracks trace-algebra effort.
    assert!(session_wide.counter("trace.unions") > 0);
}
