//! Causal observability and online monitoring, end to end: the seeded
//! demo run of ISSUE 10's acceptance criteria, doctored-log detection,
//! and property tests over random chain networks — fault-free runs
//! conform per the enumerative oracle, verdicts and clocks are
//! observation-independent, and the Mermaid MSC round-trips the
//! happens-before relation.

use std::time::Instant;

use csp::prelude::*;
use csp::{examples, msc, CausalError, Monitor, RunResult, Trace};
use proptest::prelude::*;

/// The acceptance demo: a seeded pipeline run with a crash-and-replay
/// fault plan produces a Mermaid MSC, a causal log whose happens-before
/// relation validates, and a conforming monitor verdict.
#[test]
fn seeded_demo_run_produces_msc_validating_log_and_verdict() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(examples::PIPELINE_SRC).unwrap();
    let spec = wb.monitor_spec(["output <= input"]).unwrap();
    let res = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 24,
                scheduler: Scheduler::seeded(7),
                faults: FaultPlan::none()
                    .crash("copier", 6)
                    .with_restart(RestartPolicy::Replay),
                monitor: Some(spec),
                ..RunOptions::default()
            },
        )
        .unwrap();

    // The causal log recorded the communications *and* the supervision
    // events (death + restart), and its clock protocol validates.
    res.causal.validate().expect("clock-consistent log");
    assert!(res.causal.events().iter().any(|e| !e.is_comm()));
    assert!(res.causal.events().iter().any(|e| e.is_comm()));
    assert_eq!(res.clocks.len(), 2);

    // The MSC names both processes and carries every communication.
    let mmd = msc::render_mermaid(&res.causal);
    assert!(mmd.starts_with("sequenceDiagram"));
    assert!(mmd.contains("participant P0 as copier"));
    assert!(mmd.contains("participant P1 as recopier"));
    assert!(mmd.contains("Note over P0: death"));
    let text = msc::render_text(&res.causal);
    assert!(text.lines().count() >= res.causal.len());

    // The run conformed to its own spec while executing.
    let monitor = res.monitor.expect("monitoring was on");
    assert!(monitor.is_conforming(), "{monitor:?}");
    assert_eq!(monitor.events_checked, res.visible.len());

    // And the Chrome export carries one flow per hidden wire rendezvous.
    let chrome = csp::chrome_causal_trace(&res.causal);
    assert!(chrome.contains("\"ph\":\"s\"") && chrome.contains("\"ph\":\"f\""));
}

/// Doctoring a recorded log — re-stamping one event's merged clock —
/// fails validation with an error naming that exact event.
#[test]
fn doctored_log_yields_violation_naming_first_bad_event() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(examples::PIPELINE_SRC).unwrap();
    let res = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 12,
                scheduler: Scheduler::seeded(11),
                ..RunOptions::default()
            },
        )
        .unwrap();
    res.causal.validate().expect("honest log validates");
    assert!(res.causal.len() >= 3);

    // Rebuild the log verbatim except for event 2, whose merged clock
    // gets an extra tick it never earned.
    let mut doctored = CausalLog::new(res.causal.labels().to_vec(), res.causal.cap());
    for e in res.causal.events() {
        let mut clock = e.clock.clone();
        if e.seq == 2 {
            clock.tick(e.participants[0]);
        }
        doctored.push(
            e.step,
            e.kind.clone(),
            e.participants.clone(),
            e.pre_clocks.clone(),
            clock,
        );
    }
    match doctored.validate() {
        Err(CausalError::BadMerge { seq } | CausalError::BadTick { seq, .. }) => {
            assert_eq!(seq, 2, "the first inconsistent event is named");
        }
        other => panic!("doctored log slipped through: {other:?}"),
    }
}

/// Feeding the monitor an event the process cannot perform yet latches
/// a violation that names the offending step.
#[test]
fn out_of_spec_event_is_flagged_at_its_step() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(examples::PIPELINE_SRC).unwrap();
    let body = wb.definitions().get("pipeline").unwrap().body().clone();
    let mut monitor = Monitor::new(
        &body,
        wb.env(),
        wb.definitions(),
        wb.universe(),
        MonitorSpec::new(),
    );
    // The pipeline must input before it can ever output.
    let bogus = Event::new(Channel::simple("output"), Value::nat(0));
    assert!(!monitor.observe(bogus, 0));
    let report = monitor.report();
    assert!(!report.is_conforming());
    let v = report.violation.expect("violation recorded");
    assert_eq!(v.step, 0);
    assert_eq!(v.event, bogus);
}

/// A `--monitor`-style run of a random hidden chain network: `stages`
/// one-place copiers joined by hidden links, external channels `c0` in
/// and `c<stages>` out.
fn chain_source(stages: usize) -> String {
    let mut src = String::new();
    for i in 0..stages {
        src.push_str(&format!(
            "stage{i} = c{i}?x:NAT -> c{}!x -> stage{i}\n",
            i + 1
        ));
    }
    let hides: String = (1..stages).map(|i| format!("chan c{i}; ")).collect();
    let pars: Vec<String> = (0..stages).map(|i| format!("stage{i}")).collect();
    src.push_str(&format!("net = {hides}({})\n", pars.join(" || ")));
    src
}

fn chain_workbench(stages: usize) -> Workbench {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(&chain_source(stages)).unwrap();
    wb
}

fn monitored_run(wb: &Workbench, seed: u64, steps: usize) -> RunResult {
    wb.run(
        "net",
        RunOptions {
            max_steps: steps,
            scheduler: Scheduler::seeded(seed),
            monitor: Some(MonitorSpec::new()),
            ..RunOptions::default()
        },
    )
    .unwrap()
}

proptest! {
    // Each case spins up a real multi-threaded executor (and the oracle
    // enumerates traces), so keep the case count at stress-test scale
    // rather than proptest's default 256.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Fault-free runs always conform: the monitor says so online,
    /// and the enumerative oracle agrees that the observed visible
    /// trace is a trace of the network.
    #[test]
    fn fault_free_runs_conform_and_land_in_traces(
        stages in 1usize..=3,
        seed in 0u64..1000,
        steps in 1usize..=6,
    ) {
        let wb = chain_workbench(stages);
        let res = monitored_run(&wb, seed, steps);
        let monitor = res.monitor.expect("monitoring was on");
        prop_assert!(monitor.is_conforming(), "{monitor:?}");
        res.causal.validate().expect("clock-consistent log");
        let oracle = wb.traces("net", steps).unwrap();
        prop_assert!(oracle.contains(&res.visible), "{} not derivable", res.visible);
        // Every visible prefix is a trace too (prefix closure observed).
        let events: Vec<Event> = res.visible.iter().copied().collect();
        for k in 0..events.len() {
            prop_assert!(oracle.contains(&Trace::from_events(events[..k].to_vec())));
        }
    }

    /// (b) Observation independence: enabling the metrics collector
    /// changes neither the monitor verdict nor the final vector clocks
    /// nor the causal log itself.
    #[test]
    fn verdict_and_clocks_agree_with_collector_on_and_off(
        stages in 1usize..=3,
        seed in 0u64..1000,
        steps in 1usize..=8,
    ) {
        let wb = chain_workbench(stages);
        let opts = || RunOptions {
            max_steps: steps,
            scheduler: Scheduler::seeded(seed),
            monitor: Some(MonitorSpec::new()),
            ..RunOptions::default()
        };
        let observed = wb.session_with(Collector::new()).run("net", opts()).unwrap();
        let dark = wb.session_with(Collector::disabled()).run("net", opts()).unwrap();
        prop_assert_eq!(observed.clocks, dark.clocks);
        prop_assert_eq!(
            observed.monitor.as_ref().map(|m| (m.verdict, m.events_checked)),
            dark.monitor.as_ref().map(|m| (m.verdict, m.events_checked))
        );
        prop_assert_eq!(observed.causal.events(), dark.causal.events());
        prop_assert_eq!(&observed.visible, &dark.visible);
    }

    /// (c) The Mermaid MSC round-trips the causal order: parsing the
    /// rendered chart back recovers exactly the happens-before edges of
    /// the log's communications.
    #[test]
    fn msc_round_trips_happens_before(
        stages in 1usize..=3,
        seed in 0u64..1000,
        steps in 1usize..=8,
    ) {
        let wb = chain_workbench(stages);
        let res = monitored_run(&wb, seed, steps);
        let rendered = msc::render_mermaid(&res.causal);
        let parsed = msc::parse_mermaid(&rendered).expect("own MSC parses");
        prop_assert_eq!(parsed.participants.len(), stages);
        prop_assert_eq!(parsed.hb_edges(), res.causal.comm_hb_edges());
    }
}

/// The acceptance bound: a monitored run stays within 2× of an
/// unmonitored one. Wall-clock asserts are noisy on shared runners, so
/// the bound gets a generous absolute floor — the bench gate
/// (`run/monitor_overhead`, ±30%) is the precise regression tripwire.
#[test]
fn monitored_run_within_twice_unmonitored() {
    let mut wb = Workbench::new().with_universe(Universe::new(2));
    wb.define_source(examples::PIPELINE_SRC).unwrap();
    let time = |monitor: bool| {
        let t0 = Instant::now();
        for seed in 0..6u64 {
            let spec = monitor.then(|| wb.monitor_spec(["output <= input"]).unwrap());
            let res = wb
                .run(
                    "pipeline",
                    RunOptions {
                        max_steps: 96,
                        scheduler: Scheduler::seeded(seed),
                        monitor: spec,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            assert!(res.monitor.is_none() || res.monitor.unwrap().is_conforming());
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm up thread-spawn machinery once, then measure.
    let _ = time(false);
    let unmonitored = time(false);
    let monitored = time(true);
    assert!(
        monitored <= unmonitored * 2.0 + 0.25,
        "monitored {monitored:.3}s vs unmonitored {unmonitored:.3}s"
    );
}
