//! End-to-end tests of the `csp` command-line driver.

use std::io::Write;
use std::process::Command;

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create fixture");
    f.write_all(contents.as_bytes()).expect("write fixture");
    path
}

fn csp(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_csp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

const PIPELINE: &str = "copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
pipeline = chan wire; (copier || recopier)
";

#[test]
fn validate_is_a_deprecated_lint_alias() {
    let f = write_fixture("pipeline.csp", PIPELINE);
    let (stdout, stderr, code) = csp(&["validate", f.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("ok (3 definition(s))"), "{stdout}");
    assert!(stderr.contains("deprecated"), "{stderr}");
    assert!(stderr.contains("use `csp lint`"), "{stderr}");
}

#[test]
fn validate_reports_issues_with_exit_1() {
    let f = write_fixture("broken.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["validate", f.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("ghost"));
}

#[test]
fn check_holds_and_refutes() {
    let f = write_fixture("pipeline2.csp", PIPELINE);
    let path = f.to_str().unwrap();
    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("holds"));

    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "copier",
        "--assert",
        "input <= wire",
        "--depth",
        "3",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("counterexample"));
}

#[test]
fn prove_synthesises_from_the_command_line() {
    let f = write_fixture("pipeline3.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "prove",
        f.to_str().unwrap(),
        "--spec",
        "copier=wire <= input",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("recursion (10)"), "{stdout}");
    assert!(stdout.contains("cons-monotonicity"), "{stdout}");
}

#[test]
fn prove_rejects_false_invariants() {
    let f = write_fixture("pipeline4.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "prove",
        f.to_str().unwrap(),
        "--spec",
        "copier=input <= wire",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("proof failed"));
}

#[test]
fn run_executes_with_seed() {
    let f = write_fixture("pipeline5.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "12",
        "--seed",
        "7",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("12 event(s)"));
    assert!(stdout.contains("input"));
}

#[test]
fn deadlock_finds_jams() {
    let f = write_fixture(
        "jam.csp",
        "left = w!1 -> STOP\nright = w?x:{2} -> STOP\nnet = left || right\n",
    );
    let (stdout, _, code) = csp(&[
        "deadlock",
        f.to_str().unwrap(),
        "--process",
        "net",
        "--depth",
        "3",
        "--nat-bound",
        "3",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("DEADLOCK"));
}

#[test]
fn traces_lists_maximal_behaviours() {
    let f = write_fixture("pipeline6.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "traces",
        f.to_str().unwrap(),
        "--process",
        "copier",
        "--depth",
        "2",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("traces of `copier`"));
}

#[test]
fn named_sets_via_flag() {
    let f = write_fixture(
        "proto.csp",
        "sender = input?y:M -> q[y]
         q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
         receiver = wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver)
         protocol = chan wire; (sender || receiver)\n",
    );
    let (stdout, _, code) = csp(&[
        "check",
        f.to_str().unwrap(),
        "--process",
        "protocol",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--set",
        "M=0,1",
        "--nat-bound",
        "0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("holds"));
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, code) = csp(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
    let (_, stderr, code) = csp(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing subcommand"));
    let f = write_fixture("pipeline7.csp", PIPELINE);
    let (_, stderr, code) = csp(&["check", f.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--process"));
}

#[test]
fn lint_clean_file_exits_zero() {
    let f = write_fixture("lint_clean.csp", PIPELINE);
    let (stdout, _, code) = csp(&["lint", f.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("ok (3 definition(s))"), "{stdout}");
}

#[test]
fn lint_errors_exit_one_with_spans() {
    let f = write_fixture("lint_bad.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["lint", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[CSP001] at 1:12"), "{stdout}");
}

#[test]
fn lint_json_reports_codes_per_file_in_envelope() {
    let good = write_fixture("lint_json_good.csp", PIPELINE);
    let bad = write_fixture("lint_json_bad.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&[
        "lint",
        "--json",
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    // One envelope line covering both files.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{stdout}");
    assert!(
        lines[0].starts_with("{\"schema\":\"csp/v1\",\"command\":\"lint\",\"data\":"),
        "{stdout}"
    );
    assert!(lines[0].contains("\"diagnostics\":[]"), "{stdout}");
    assert!(lines[0].contains("\"code\":\"CSP001\""), "{stdout}");
    assert!(lines[0].contains("\"severity\":\"error\""), "{stdout}");
    assert!(lines[0].contains("\"line\":1"), "{stdout}");
}

/// The acceptance criterion for the error-recovering front-end: a syntax
/// error in the first definition must not silence span-exact diagnostics
/// from the definitions after it.
#[test]
fn lint_recovers_past_a_broken_first_definition() {
    let f = write_fixture(
        "lint_recover.csp",
        "broken = c!0 -> ->\np = d!0 -> ghost\nq = e!1 -> q\n",
    );
    let (stdout, _, code) = csp(&["lint", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("error [parse]"), "{stdout}");
    assert!(stdout.contains("[CSP001] at 2:12"), "{stdout}");
}

#[test]
fn lint_json_carries_parse_errors_and_csp010_confirmations() {
    let f = write_fixture(
        "lint_recover_json.csp",
        "broken = c!0 -> ->\nnet = a!1 -> STOP || a?x:{2,3} -> STOP\n",
    );
    let (stdout, _, code) = csp(&["lint", "--json", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("\"errors\":[{\"message\":"), "{stdout}");
    assert!(stdout.contains("\"code\":\"CSP010\""), "{stdout}");
    assert!(
        stdout.contains("\"confirmation\":\"confirmed\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"witness\":"), "{stdout}");
}

#[test]
fn lint_deny_warnings_flips_exit_code() {
    let f = write_fixture("lint_warn.csp", "p = chan h; d!1 -> STOP\n");
    let path = f.to_str().unwrap();
    let (stdout, _, code) = csp(&["lint", path]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("[CSP007]"), "{stdout}");
    let (stdout, _, code) = csp(&["lint", "--deny", "warnings", path]);
    assert_eq!(code, Some(1), "{stdout}");
}

#[test]
fn lint_checks_assertion_scope() {
    let f = write_fixture("lint_scope.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "lint",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--assert",
        "wire <= input",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[CSP009]"), "{stdout}");
}

#[test]
fn validate_json_matches_lint_contract() {
    let f = write_fixture("validate_json.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["validate", "--json", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    // Same envelope as lint, but the command field records the alias.
    assert!(
        stdout.starts_with("{\"schema\":\"csp/v1\",\"command\":\"validate\",\"data\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"code\":\"CSP001\""), "{stdout}");
    assert!(stdout.contains("\"column\":12"), "{stdout}");

    let clean = write_fixture("validate_json_clean.csp", PIPELINE);
    let (stdout, _, code) = csp(&["validate", "--json", clean.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"diagnostics\":[]"), "{stdout}");
}

#[test]
fn check_json_uses_the_envelope_with_metrics() {
    let f = write_fixture("check_json.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "check",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
        "--json",
        "--metrics",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.starts_with("{\"schema\":\"csp/v1\",\"command\":\"check\",\"data\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"holds\":true"), "{stdout}");
    assert!(stdout.contains("\"metrics\":{\"counters\""), "{stdout}");
    assert!(stdout.contains("satcheck.moments"), "{stdout}");
}

#[test]
fn run_writes_trace_jsonl() {
    let f = write_fixture("run_trace.csp", PIPELINE);
    let out = std::env::temp_dir().join("hoare-csp-cli-tests/run_events.jsonl");
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "10",
        "--seed",
        "1",
        "--nat-bound",
        "1",
        "--trace-out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    let log = std::fs::read_to_string(&out).expect("trace log written");
    assert!(
        log.lines().any(|l| l.contains("\"name\":\"run.round\"")),
        "{log}"
    );
    assert!(log.lines().any(|l| l.contains("\"name\":\"run\"")), "{log}");
    assert!(stderr.contains("span(s)"), "{stderr}");
}

#[test]
fn run_metrics_table_reports_rounds() {
    let f = write_fixture("run_metrics.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "8",
        "--seed",
        "4",
        "--nat-bound",
        "1",
        "--metrics",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("run.scheduler_picks"), "{stdout}");
    assert!(stdout.contains("run.round"), "{stdout}");
}

/// `csp profile` phase names and span taxonomy are deterministic under a
/// single rayon thread — only the timing numbers may differ run to run.
#[test]
fn profile_is_stable_under_one_thread() {
    let f = write_fixture("profile.csp", PIPELINE);
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let folded_a = dir.join("profile_a.folded");
    let folded_b = dir.join("profile_b.folded");
    let run = |folded: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_csp"))
            .args([
                "profile",
                f.to_str().unwrap(),
                "--depth",
                "3",
                "--nat-bound",
                "1",
                "--folded-out",
                folded.to_str().unwrap(),
            ])
            .env("RAYON_NUM_THREADS", "1")
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stdout)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let stdout_a = run(&folded_a);
    let stdout_b = run(&folded_b);
    for stdout in [&stdout_a, &stdout_b] {
        assert!(stdout.contains("parse"), "{stdout}");
        assert!(stdout.contains("fixpoint"), "{stdout}");
        assert!(stdout.contains("verify"), "{stdout}");
        assert!(stdout.contains("fixpoint.key"), "{stdout}");
        assert!(stdout.contains("folded stacks:"), "{stdout}");
    }
    // The folded stacks differ only in the self-time column.
    let stacks = |p: &std::path::Path| -> Vec<String> {
        std::fs::read_to_string(p)
            .expect("folded file written")
            .lines()
            .map(|l| l.rsplit_once(' ').expect("stack count").0.to_string())
            .collect()
    };
    assert_eq!(stacks(&folded_a), stacks(&folded_b));
    assert!(stacks(&folded_a)
        .iter()
        .any(|s| s.starts_with("fixpoint;fixpoint.iter")));
}

/// `--watch` always emits an initial and a final sample; the final one
/// is taken after the executor stops, so its counters are deterministic
/// under a fixed seed.
#[test]
fn run_watch_streams_status_to_stderr() {
    let f = write_fixture("run_watch.csp", PIPELINE);
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "12",
        "--seed",
        "7",
        "--nat-bound",
        "1",
        "--watch=10",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    let watch_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with("watch:")).collect();
    assert!(watch_lines.len() >= 2, "{stderr}");
    let last = watch_lines.last().unwrap();
    assert!(last.contains("round 12"), "{stderr}");
    assert!(last.contains("picks 12"), "{stderr}");
    assert!(last.contains("components 2/2 live"), "{stderr}");
    assert!(last.contains("events/s"), "{stderr}");
    assert!(last.contains("dropped 0"), "{stderr}");
    // The run's normal report is unaffected.
    assert!(stdout.contains("12 event(s)"), "{stdout}");
}

#[test]
fn run_exports_chrome_trace_and_prometheus() {
    let f = write_fixture("run_export.csp", PIPELINE);
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let chrome = dir.join("run_export_trace.json");
    let prom = dir.join("run_export.prom");
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "10",
        "--seed",
        "1",
        "--nat-bound",
        "1",
        "--chrome-out",
        chrome.to_str().unwrap(),
        "--prom-out",
        prom.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stderr.contains("wrote Chrome trace"), "{stderr}");
    let trace = std::fs::read_to_string(&chrome).expect("chrome trace written");
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.contains("\"ph\":\"M\""), "{trace}");
    assert!(trace.contains("\"name\":\"run.round\""), "{trace}");
    let exposition = std::fs::read_to_string(&prom).expect("prometheus written");
    assert!(
        exposition.contains("csp_counter{name=\"run.rounds\"} 10"),
        "{exposition}"
    );
    assert!(
        exposition.contains("csp_span_count{name=\"run.round\"} 10"),
        "{exposition}"
    );
    assert!(
        exposition.contains("# TYPE csp_counter counter"),
        "{exposition}"
    );
}

/// `--diff` against a handcrafted baseline shows exact signed deltas:
/// a span and a counter present only in the baseline come out as pure
/// negatives.
#[test]
fn profile_diff_prints_signed_deltas() {
    let f = write_fixture("profile_diff.csp", PIPELINE);
    let baseline = write_fixture(
        "profile_diff_baseline.json",
        "{\"counters\":{\"watch.sentinel\":1000000},\"histograms\":{},\
         \"spans\":{\"made.up\":{\"count\":3,\"total_ns\":5000000000,\"max_ns\":1000}}}",
    );
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let folded = dir.join("profile_diff.folded");
    let (stdout, _, code) = csp(&[
        "profile",
        f.to_str().unwrap(),
        "--depth",
        "3",
        "--nat-bound",
        "1",
        "--folded-out",
        folded.to_str().unwrap(),
        "--diff",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("diff vs"), "{stdout}");
    assert!(stdout.contains("(noise 1.0 ms)"), "{stdout}");
    // The baseline-only span: -3 closures, exactly -5000 ms.
    assert!(stdout.contains("made.up"), "{stdout}");
    assert!(stdout.contains("-3"), "{stdout}");
    assert!(stdout.contains("-5000.000"), "{stdout}");
    assert!(stdout.contains("-100.0%"), "{stdout}");
    // The baseline-only counter comes out negative; real fixpoint spans
    // appear as new time against the empty baseline.
    assert!(stdout.contains("watch.sentinel"), "{stdout}");
    assert!(stdout.contains("-1000000"), "{stdout}");
    assert!(stdout.contains("fixpoint"), "{stdout}");
}

#[test]
fn profile_diff_json_embeds_the_delta() {
    let f = write_fixture("profile_diff_json.csp", PIPELINE);
    let baseline = write_fixture(
        "profile_diff_json_baseline.json",
        "{\"counters\":{},\"histograms\":{},\"spans\":{}}",
    );
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let folded = dir.join("profile_diff_json.folded");
    let (stdout, _, code) = csp(&[
        "profile",
        f.to_str().unwrap(),
        "--depth",
        "3",
        "--nat-bound",
        "1",
        "--folded-out",
        folded.to_str().unwrap(),
        "--diff",
        baseline.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"diff\":{\"baseline\":"), "{stdout}");
    assert!(stdout.contains("\"noise_ms\":1.000"), "{stdout}");
    assert!(stdout.contains("\"table\":"), "{stdout}");
}

/// A `csp profile --json` envelope is itself a valid `--diff` baseline
/// (the metrics are found under `data.metrics`).
#[test]
fn profile_diff_accepts_a_prior_json_envelope() {
    let f = write_fixture("profile_diff_env.csp", PIPELINE);
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let folded = dir.join("profile_diff_env.folded");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "profile",
            f.to_str().unwrap(),
            "--depth",
            "3",
            "--nat-bound",
            "1",
            "--folded-out",
            folded.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        csp(&args)
    };
    let (envelope, _, code) = run(&["--json"]);
    assert_eq!(code, Some(0), "{envelope}");
    let baseline = dir.join("profile_diff_env_baseline.json");
    std::fs::write(&baseline, &envelope).expect("baseline written");
    let (stdout, _, code) = run(&["--diff", baseline.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("diff vs"), "{stdout}");
}

#[test]
fn bench_report_renders_the_history_trajectory() {
    let hist = write_fixture(
        "bench_report_history.jsonl",
        "{\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500000000, \
          \"samples\": 2, \"total_wall_ms\": 120.500, \
          \"benches\": {\"fixpoint.depth4\": 60.000, \"run.steps256\": 60.500}}\n\
         {\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500600000, \
          \"samples\": 2, \"total_wall_ms\": 130.010, \
          \"benches\": {\"fixpoint.depth4\": 62.000, \"run.steps256\": 68.010}}\n",
    );
    let (stdout, _, code) = csp(&["bench", "report", "--history", hist.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("2 run(s)"), "{stdout}");
    assert!(stdout.contains("+7.9%"), "{stdout}");
    assert!(stdout.contains("fixpoint.depth4"), "{stdout}");
    assert!(stdout.contains("60.000 →"), "{stdout}");
    assert!(stdout.contains("+3.3%"), "{stdout}");
    assert!(stdout.contains("+12.4%"), "{stdout}");
}

/// `--engine` pins the backend, and the human-readable verdict names the
/// engine that actually ran — so a log line is enough to tell which
/// semantics produced it.
#[test]
fn check_engine_flag_selects_the_backend() {
    let f = write_fixture("engine_flag.csp", PIPELINE);
    let path = f.to_str().unwrap();
    let base = [
        "check",
        path,
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
    ];
    for engine in ["enumerative", "compiled"] {
        let mut args = base.to_vec();
        args.extend_from_slice(&["--engine", engine]);
        let (stdout, _, code) = csp(&args);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(
            stdout.contains(&format!("(depth 3, engine {engine})")),
            "{stdout}"
        );
    }
}

/// Without `--engine`, `Auto` resolves per query: compiled for the hidden
/// `pipeline` network, enumerative for the sequential `copier` — and the
/// report shows the resolved engine, never the literal `auto`.
#[test]
fn check_auto_engine_resolves_per_process_shape() {
    let f = write_fixture("engine_auto.csp", PIPELINE);
    let path = f.to_str().unwrap();
    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("engine compiled)"), "{stdout}");

    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "copier",
        "--assert",
        "wire <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("engine enumerative)"), "{stdout}");
}

#[test]
fn check_rejects_unknown_engines_as_usage_errors() {
    let f = write_fixture("engine_bad.csp", PIPELINE);
    let (_, stderr, code) = csp(&[
        "check",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--engine",
        "quantum",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown engine `quantum`"), "{stderr}");
    assert!(
        stderr.contains("expected `enumerative`, `compiled`, or `auto`"),
        "{stderr}"
    );
}

/// The `csp/v1` check envelope records the engine that ran, so machine
/// consumers can split verdicts per backend.
#[test]
fn check_json_envelope_reports_the_engine() {
    let f = write_fixture("engine_json.csp", PIPELINE);
    let path = f.to_str().unwrap();
    for engine in ["enumerative", "compiled"] {
        let (stdout, _, code) = csp(&[
            "check",
            path,
            "--process",
            "pipeline",
            "--assert",
            "output <= input",
            "--depth",
            "3",
            "--nat-bound",
            "1",
            "--json",
            "--engine",
            engine,
        ]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(
            stdout.starts_with("{\"schema\":\"csp/v1\",\"command\":\"check\",\"data\":"),
            "{stdout}"
        );
        assert!(stdout.contains("\"holds\":true"), "{stdout}");
        assert!(
            stdout.contains(&format!("\"engine\":\"{engine}\"")),
            "{stdout}"
        );
    }
}

/// `csp prove --json` carries the same `"engine"` member as check; the
/// sequential copier resolves `Auto` to the enumerative engine.
#[test]
fn prove_json_envelope_reports_the_engine() {
    let f = write_fixture("engine_prove.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "prove",
        f.to_str().unwrap(),
        "--spec",
        "copier=wire <= input",
        "--nat-bound",
        "1",
        "--json",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.starts_with("{\"schema\":\"csp/v1\",\"command\":\"prove\",\"data\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"proved\":true"), "{stdout}");
    assert!(stdout.contains("\"engine\":\"enumerative\""), "{stdout}");
}

/// `bench report --engine E` keeps only benches recorded on that engine
/// (tagged per row) and says so explicitly when nothing matches — rows
/// written before the engine split never match a filter.
#[test]
fn bench_report_filters_benches_per_engine() {
    let hist = write_fixture(
        "bench_report_engines.jsonl",
        "{\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500000000, \
          \"samples\": 2, \"total_wall_ms\": 100.000, \
          \"benches\": {\"lts/pipeline_d8\": 2.000, \"fixpoint.depth4\": 60.000}, \
          \"engines\": {\"lts/pipeline_d8\": \"compiled\", \"fixpoint.depth4\": \"enumerative\"}}\n\
         {\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500600000, \
          \"samples\": 2, \"total_wall_ms\": 90.000, \
          \"benches\": {\"lts/pipeline_d8\": 1.500, \"fixpoint.depth4\": 61.000}, \
          \"engines\": {\"lts/pipeline_d8\": \"compiled\", \"fixpoint.depth4\": \"enumerative\"}}\n",
    );
    let path = hist.to_str().unwrap();
    let (stdout, _, code) = csp(&["bench", "report", "--history", path, "--engine", "compiled"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("per-bench (first → last, engine compiled):"),
        "{stdout}"
    );
    assert!(stdout.contains("lts/pipeline_d8"), "{stdout}");
    assert!(stdout.contains("[compiled]"), "{stdout}");
    assert!(!stdout.contains("fixpoint.depth4"), "{stdout}");

    // A history written before the engine split carries no engines map, so
    // every bench is filtered out.
    let legacy = write_fixture(
        "bench_report_legacy.jsonl",
        "{\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500000000, \
          \"samples\": 2, \"total_wall_ms\": 100.000, \
          \"benches\": {\"fixpoint.depth4\": 60.000}}\n\
         {\"schema\": \"csp-bench-history/v1\", \"unix_ms\": 1754500600000, \
          \"samples\": 2, \"total_wall_ms\": 90.000, \
          \"benches\": {\"fixpoint.depth4\": 61.000}}\n",
    );
    let (stdout, _, code) = csp(&[
        "bench",
        "report",
        "--history",
        legacy.to_str().unwrap(),
        "--engine",
        "compiled",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("no benches recorded on engine compiled"),
        "{stdout}"
    );
}

#[test]
fn bench_report_rejects_unknown_subcommands() {
    let (_, stderr, code) = csp(&["bench", "mystery"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown bench subcommand"), "{stderr}");
}

/// Frames a batch of LSP messages in base-protocol headers.
fn lsp_frames(bodies: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for b in bodies {
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n{b}", b.len()).as_bytes());
    }
    out
}

/// Drives `csp lsp` over real stdio through initialize → didOpen →
/// publishDiagnostics → shutdown → exit, on a document carrying both a
/// syntax error and a CSP001. CI runs exactly this test as its LSP gate.
#[test]
fn lsp_round_trip_over_stdio() {
    use std::process::Stdio;
    let text = "broken = c!0 -> ->\\np = d!0 -> ghost";
    let bodies = vec![
        r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#.to_string(),
        format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"file:///m.csp","languageId":"csp","version":1,"text":"{text}"}}}}}}"#
        ),
        r#"{"jsonrpc":"2.0","id":2,"method":"shutdown","params":null}"#.to_string(),
        r#"{"jsonrpc":"2.0","method":"exit","params":null}"#.to_string(),
    ];
    let mut child = Command::new(env!("CARGO_BIN_EXE_csp"))
        .arg("lsp")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(&lsp_frames(&bodies))
        .expect("requests written");
    let out = child.wait_with_output().expect("server exits");
    assert!(out.status.success(), "clean exit after shutdown handshake");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"hoverProvider\":true"), "{stdout}");
    assert!(stdout.contains("publishDiagnostics"), "{stdout}");
    assert!(stdout.contains("\"code\":\"parse\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"CSP001\""), "{stdout}");
}

/// Off-TTY, `--watch` must degrade to plain one-line-per-sample output:
/// no `\r` repaints, no ANSI erase sequences. This is what keeps piped
/// CI logs readable.
#[test]
fn run_watch_piped_stderr_has_no_ansi_repaints() {
    let f = write_fixture("run_watch_plain.csp", PIPELINE);
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "12",
        "--seed",
        "7",
        "--nat-bound",
        "1",
        "--watch=10",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(
        !stderr.contains('\u{1b}'),
        "ANSI escape in piped stderr: {stderr:?}"
    );
    assert!(
        !stderr.contains('\r'),
        "carriage return in piped stderr: {stderr:?}"
    );
    assert!(
        stderr.lines().filter(|l| l.starts_with("watch:")).count() >= 2,
        "{stderr}"
    );
}

/// Boots the real `csp serve` binary on an OS-assigned port, parses the
/// machine-readable listening line off stdout, and round-trips a
/// cold/warm lint pair plus a Prometheus scrape through it.
#[test]
fn serve_binary_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_csp"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut line)
        .expect("listening line");
    // "csp serve: listening on http://HOST:PORT (workers 2, cache-cap 1024)"
    assert!(
        line.starts_with("csp serve: listening on http://"),
        "{line}"
    );
    assert!(line.contains("workers 2"), "{line}");
    let url = line
        .split_whitespace()
        .find(|w| w.starts_with("http://"))
        .expect("url in listening line")
        .to_string();

    let result = std::panic::catch_unwind(move || {
        let mut client = csp::serve::Client::connect(&url).expect("connect");
        let health = client.get("/healthz").expect("healthz");
        assert_eq!(health.status, 200, "{}", health.body);
        let body = format!("{{\"source\":\"{}\"}}", PIPELINE.replace('\n', "\\n"));
        let cold = client.post("/v1/lint", &body).expect("cold lint");
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert_eq!(cold.header("X-Csp-Cache"), Some("miss"), "{}", cold.body);
        assert!(
            cold.body.contains("\"command\":\"serve.lint\""),
            "{}",
            cold.body
        );
        let warm = client.post("/v1/lint", &body).expect("warm lint");
        assert_eq!(warm.header("X-Csp-Cache"), Some("hit"));
        assert_eq!(cold.body, warm.body);
        let metrics = client.get("/metrics").expect("metrics");
        assert!(
            metrics
                .body
                .contains("csp_counter{name=\"serve.cache.hit\"} 1"),
            "{}",
            metrics.body
        );
    });
    child.kill().expect("server killed");
    let _ = child.wait();
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

#[test]
fn profile_json_envelope_reports_phases() {
    let f = write_fixture("profile_json.csp", PIPELINE);
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let folded = dir.join("profile_json.folded");
    let (stdout, _, code) = csp(&[
        "profile",
        f.to_str().unwrap(),
        "--depth",
        "3",
        "--nat-bound",
        "1",
        "--folded-out",
        folded.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.starts_with("{\"schema\":\"csp/v1\",\"command\":\"profile\",\"data\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"name\":\"parse\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"fixpoint\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"verify\""), "{stdout}");
    assert!(stdout.contains("\"alloc_bytes\":"), "{stdout}");
    assert!(stdout.contains("\"metrics\":{\"counters\""), "{stdout}");
    assert!(folded.exists());
}

#[test]
fn run_monitor_msc_and_json_envelope() {
    let f = write_fixture("run_monitor.csp", PIPELINE);
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    let msc = dir.join("run_monitor.mmd");
    let causal = dir.join("run_monitor.jsonl");
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "16",
        "--seed",
        "7",
        "--nat-bound",
        "1",
        "--monitor=output <= input",
        "--fault-plan",
        "crash:copier@6;restart:replay",
        "--msc-out",
        msc.to_str().unwrap(),
        "--causal-out",
        causal.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    // The envelope carries the supervision summary and monitor verdict.
    assert!(
        stdout.contains("\"schema\":\"csp/v1\",\"command\":\"run\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"supervision\":{\"deaths\":1,\"recovered\":1,"),
        "{stdout}"
    );
    assert!(stdout.contains("\"verdict\":\"conforming\""), "{stdout}");
    assert!(stdout.contains("\"violation\":null"), "{stdout}");
    // The exports landed: a Mermaid chart and a JSONL log with header.
    let mmd = std::fs::read_to_string(&msc).unwrap();
    assert!(mmd.starts_with("sequenceDiagram"), "{mmd}");
    assert!(mmd.contains("participant P0 as copier"), "{mmd}");
    let log = std::fs::read_to_string(&causal).unwrap();
    assert!(log
        .lines()
        .next()
        .unwrap()
        .contains("\"labels\":[\"copier\",\"recopier\"]"));
    assert!(log.contains("\"kind\":\"comm\""), "{log}");
    assert!(stderr.contains("wrote MSC"), "{stderr}");
}

#[test]
fn run_monitor_violation_exits_one_and_names_the_event() {
    let f = write_fixture("run_violation.csp", PIPELINE);
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "16",
        "--seed",
        "7",
        "--monitor=#output <= 1",
    ]);
    assert_eq!(code, Some(1), "{stdout}{stderr}");
    assert!(stdout.contains("monitor: violated"), "{stdout}");
    assert!(stdout.contains("falsified"), "{stdout}");
}

#[test]
fn run_watch_reports_busiest_channel() {
    let f = write_fixture("run_watch_chan.csp", PIPELINE);
    let (stdout, stderr, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "12",
        "--seed",
        "7",
        "--nat-bound",
        "1",
        "--watch=10",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    let last = stderr.lines().rfind(|l| l.starts_with("watch:")).unwrap();
    // The final sample derives throughput from the per-channel
    // counters; the hidden wire carries a third of all events.
    assert!(last.contains("busiest "), "{stderr}");
    assert!(last.contains("(4 ev)"), "{stderr}");
}
