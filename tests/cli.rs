//! End-to-end tests of the `csp` command-line driver.

use std::io::Write;
use std::process::Command;

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hoare-csp-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create fixture");
    f.write_all(contents.as_bytes()).expect("write fixture");
    path
}

fn csp(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_csp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

const PIPELINE: &str = "copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
pipeline = chan wire; (copier || recopier)
";

#[test]
fn validate_clean_file() {
    let f = write_fixture("pipeline.csp", PIPELINE);
    let (stdout, _, code) = csp(&["validate", f.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("no issues"));
}

#[test]
fn validate_reports_issues_with_exit_1() {
    let f = write_fixture("broken.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["validate", f.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("ghost"));
}

#[test]
fn check_holds_and_refutes() {
    let f = write_fixture("pipeline2.csp", PIPELINE);
    let path = f.to_str().unwrap();
    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "pipeline",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("holds"));

    let (stdout, _, code) = csp(&[
        "check",
        path,
        "--process",
        "copier",
        "--assert",
        "input <= wire",
        "--depth",
        "3",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("counterexample"));
}

#[test]
fn prove_synthesises_from_the_command_line() {
    let f = write_fixture("pipeline3.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "prove",
        f.to_str().unwrap(),
        "--spec",
        "copier=wire <= input",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("recursion (10)"), "{stdout}");
    assert!(stdout.contains("cons-monotonicity"), "{stdout}");
}

#[test]
fn prove_rejects_false_invariants() {
    let f = write_fixture("pipeline4.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "prove",
        f.to_str().unwrap(),
        "--spec",
        "copier=input <= wire",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("proof failed"));
}

#[test]
fn run_executes_with_seed() {
    let f = write_fixture("pipeline5.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "run",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--steps",
        "12",
        "--seed",
        "7",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("12 event(s)"));
    assert!(stdout.contains("input"));
}

#[test]
fn deadlock_finds_jams() {
    let f = write_fixture(
        "jam.csp",
        "left = w!1 -> STOP\nright = w?x:{2} -> STOP\nnet = left || right\n",
    );
    let (stdout, _, code) = csp(&[
        "deadlock",
        f.to_str().unwrap(),
        "--process",
        "net",
        "--depth",
        "3",
        "--nat-bound",
        "3",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("DEADLOCK"));
}

#[test]
fn traces_lists_maximal_behaviours() {
    let f = write_fixture("pipeline6.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "traces",
        f.to_str().unwrap(),
        "--process",
        "copier",
        "--depth",
        "2",
        "--nat-bound",
        "1",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("traces of `copier`"));
}

#[test]
fn named_sets_via_flag() {
    let f = write_fixture(
        "proto.csp",
        "sender = input?y:M -> q[y]
         q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
         receiver = wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver)
         protocol = chan wire; (sender || receiver)\n",
    );
    let (stdout, _, code) = csp(&[
        "check",
        f.to_str().unwrap(),
        "--process",
        "protocol",
        "--assert",
        "output <= input",
        "--depth",
        "3",
        "--set",
        "M=0,1",
        "--nat-bound",
        "0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("holds"));
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, code) = csp(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
    let (_, stderr, code) = csp(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing subcommand"));
    let f = write_fixture("pipeline7.csp", PIPELINE);
    let (_, stderr, code) = csp(&["check", f.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--process"));
}

#[test]
fn lint_clean_file_exits_zero() {
    let f = write_fixture("lint_clean.csp", PIPELINE);
    let (stdout, _, code) = csp(&["lint", f.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("ok (3 definition(s))"), "{stdout}");
}

#[test]
fn lint_errors_exit_one_with_spans() {
    let f = write_fixture("lint_bad.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["lint", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[CSP001] at 1:12"), "{stdout}");
}

#[test]
fn lint_json_reports_codes_per_file() {
    let good = write_fixture("lint_json_good.csp", PIPELINE);
    let bad = write_fixture("lint_json_bad.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&[
        "lint",
        "--json",
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"diagnostics\":[]"), "{stdout}");
    assert!(lines[1].contains("\"code\":\"CSP001\""), "{stdout}");
    assert!(lines[1].contains("\"severity\":\"error\""), "{stdout}");
    assert!(lines[1].contains("\"line\":1"), "{stdout}");
}

#[test]
fn lint_deny_warnings_flips_exit_code() {
    let f = write_fixture("lint_warn.csp", "p = chan h; d!1 -> STOP\n");
    let path = f.to_str().unwrap();
    let (stdout, _, code) = csp(&["lint", path]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("[CSP007]"), "{stdout}");
    let (stdout, _, code) = csp(&["lint", "--deny", "warnings", path]);
    assert_eq!(code, Some(1), "{stdout}");
}

#[test]
fn lint_checks_assertion_scope() {
    let f = write_fixture("lint_scope.csp", PIPELINE);
    let (stdout, _, code) = csp(&[
        "lint",
        f.to_str().unwrap(),
        "--process",
        "pipeline",
        "--assert",
        "wire <= input",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[CSP009]"), "{stdout}");
}

#[test]
fn validate_json_matches_lint_contract() {
    let f = write_fixture("validate_json.csp", "p = c!0 -> ghost\n");
    let (stdout, _, code) = csp(&["validate", "--json", f.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("\"code\":\"CSP001\""), "{stdout}");
    assert!(stdout.contains("\"column\":12"), "{stdout}");

    let clean = write_fixture("validate_json_clean.csp", PIPELINE);
    let (stdout, _, code) = csp(&["validate", "--json", clean.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert_eq!(stdout.trim(), "[]");
}
