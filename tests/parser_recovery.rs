//! Property tests for the error-recovering parser: totality over
//! arbitrary input, span sanity for everything it recovers, and exact
//! agreement with the strict parser on the valid corpus.

use csp::{parse_definitions_spanned, parse_module};
use proptest::prelude::*;

/// Every span the recovering parser reports — error locations, error
/// holes, definition extents — must lie inside the input and on char
/// boundaries, so downstream consumers can slice without checking.
fn assert_spans_within(src: &str) {
    let module = parse_module(src);
    for e in &module.errors {
        assert!(e.span().end() <= src.len(), "error span escapes input");
    }
    for (name, extent) in &module.extents {
        assert!(
            extent.end() <= src.len(),
            "extent of `{name}` escapes input"
        );
        assert!(
            src.is_char_boundary(extent.offset) && src.is_char_boundary(extent.end()),
            "extent of `{name}` splits a char"
        );
        // The slice invariant AnalysisDb's content hashing relies on.
        let _ = &src[extent.offset..extent.end()];
    }
}

/// A short lowercase identifier (the shim has no regex strategies).
fn arb_ident() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..5, 1..4)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The recovering parser is total: arbitrary byte soup (lossily
    /// decoded, as any editor would) never panics, and every recovered
    /// span stays inside the input.
    #[test]
    fn parser_survives_byte_soup(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_spans_within(&src);
        // The strict entry point must agree on totality.
        let _ = parse_definitions_spanned(&src);
    }

    /// Token soup is the harder case: fragments that *almost* form
    /// definitions exercise the resynchronisation heuristic far more
    /// than uniform bytes do.
    #[test]
    fn parser_survives_token_soup(toks in prop::collection::vec(
        prop_oneof![
            Just("->".to_string()),
            Just("=".to_string()),
            Just("|".to_string()),
            Just("||".to_string()),
            Just("chan".to_string()),
            Just("STOP".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("\n".to_string()),
            Just(";".to_string()),
            Just("!".to_string()),
            Just("?".to_string()),
            Just(":".to_string()),
            Just(",".to_string()),
            arb_ident().boxed(),
            (0u32..100).prop_map(|n| n.to_string()).boxed(),
        ],
        0..48,
    )) {
        let src = toks.join(" ");
        assert_spans_within(&src);
    }

    /// Splicing a corrupted definition between two valid ones never
    /// loses the valid neighbours: both still parse into the module.
    #[test]
    fn neighbours_of_a_broken_definition_survive(
        garbage in prop::collection::vec(0usize..12, 0..24).prop_map(|ix| {
            const ALPHABET: [char; 12] =
                ['a', 'z', ' ', '!', '?', ':', '>', '(', ')', '-', '0', '.'];
            ix.into_iter().map(|i| ALPHABET[i]).collect::<String>()
        }),
    ) {
        let src = format!("first = a!0 -> first\nmid = {garbage}\nlast = b!1 -> last");
        let module = parse_module(&src);
        prop_assert!(module.defs.get("first").is_some(), "lost `first` for {garbage:?}");
        prop_assert!(module.defs.get("last").is_some(), "lost `last` for {garbage:?}");
        assert_spans_within(&src);
    }
}

/// A line from the kinds of text a module can contain: valid
/// definitions, broken definitions, continuations, comments, garbage.
/// Deliberately includes repeated names so the stitcher's duplicate-name
/// bail-out is exercised.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("p = a!0 -> p".to_string()),
        Just("p = a!1 -> p".to_string()),
        Just("q = b?x:NAT -> q".to_string()),
        Just("r = p | q".to_string()),
        Just("net = p || q".to_string()),
        Just("u = chan b; p || q".to_string()),
        Just("s = c!1 ->".to_string()),
        Just("t = ".to_string()),
        Just("  | d!2 -> p".to_string()),
        Just(String::new()),
        Just("-- comment".to_string()),
        Just("garbage ) ( ->".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Whenever the incremental stitcher accepts an edit, its result is
    /// *identical* to a cold parse of the new source — definitions,
    /// spans, errors, and extents alike.
    #[test]
    fn incremental_reparse_matches_full_parse(
        lines in prop::collection::vec(arb_line(), 0..10),
        at in 0usize..10,
        op in 0u8..3,
        line in arb_line(),
    ) {
        let old_src = lines.join("\n");
        let mut new_lines = lines;
        match op {
            0 => new_lines.insert(at.min(new_lines.len()), line),
            1 if !new_lines.is_empty() => {
                let at = at % new_lines.len();
                new_lines.remove(at);
            }
            _ if !new_lines.is_empty() => {
                let at = at % new_lines.len();
                new_lines[at] = line;
            }
            _ => {}
        }
        let new_src = new_lines.join("\n");
        if let Ok(stitched) = parse_module(&old_src).reparse(&old_src, &new_src) {
            assert_eq!(stitched, parse_module(&new_src), "old: {old_src:?}, new: {new_src:?}");
        }
    }
}

/// The stitcher must actually take the fast path for the editor's bread
/// and butter — a single-definition edit — not bail to a full parse.
#[test]
fn reparse_fast_path_applies_to_a_single_def_edit() {
    let old = "p = a!0 -> p\nq = b!0 -> q\nnet = p || q\n";
    let new = "p = a!0 -> p\nq = b!1 -> q\nnet = p || q\n";
    let stitched = parse_module(old)
        .reparse(old, new)
        .unwrap_or_else(|_| panic!("single-def edit must take the incremental path"));
    assert_eq!(stitched, parse_module(new));
}

/// A length-changing edit shifts every span after it; the spliced suffix
/// must agree byte-for-byte with a cold parse.
#[test]
fn reparse_shifts_suffix_spans_after_a_length_change() {
    let old = "p = a!0 -> p\nq = b!0 -> q\nnet = p || q\n";
    let new = "p = a!0 -> a!0 -> p\nq = b!0 -> q\nnet = p || q\n";
    let stitched = parse_module(old)
        .reparse(old, new)
        .unwrap_or_else(|_| panic!("prefix edit must take the incremental path"));
    assert_eq!(stitched, parse_module(new));
}

/// The valid corpus: the shipped `.csp` example files, the paper module,
/// the in-tree example sources, and the tutorial's splitter.
fn corpus() -> Vec<(String, String)> {
    let mut sources = vec![(
        "paper.csp".to_string(),
        std::fs::read_to_string("paper.csp").expect("paper.csp at repo root"),
    )];
    let mut example_files: Vec<_> = std::fs::read_dir("examples")
        .expect("examples dir")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            (path.extension().is_some_and(|x| x == "csp")).then_some(path)
        })
        .collect();
    example_files.sort();
    assert!(
        !example_files.is_empty(),
        "corpus must include example files"
    );
    for path in example_files {
        sources.push((
            path.display().to_string(),
            std::fs::read_to_string(&path).expect("readable example"),
        ));
    }
    for (name, src) in [
        ("examples::PIPELINE_SRC", csp::examples::PIPELINE_SRC),
        ("examples::PROTOCOL_SRC", csp::examples::PROTOCOL_SRC),
        ("examples::MULTIPLIER_SRC", csp::examples::MULTIPLIER_SRC),
        ("examples::BUFFER2_SRC", csp::examples::BUFFER2_SRC),
        (
            "tutorial splitter",
            "splitter = in?x:NAT -> low!(x % 2) -> high!(x / 2) -> splitter",
        ),
    ] {
        sources.push((name.to_string(), src.to_string()));
    }
    sources
}

/// On valid input, recovery mode is a conservative extension of the
/// strict parser: no errors recorded, and an identical AST.
#[test]
fn valid_corpus_parses_identically_in_both_modes() {
    for (name, src) in corpus() {
        let module = parse_module(&src);
        assert!(
            module.errors.is_empty(),
            "{name}: recovery invented errors: {:?}",
            module.errors
        );
        let (strict, _) =
            parse_definitions_spanned(&src).unwrap_or_else(|e| panic!("{name}: strict: {e}"));
        assert_eq!(
            module.defs.len(),
            strict.len(),
            "{name}: definition count diverged"
        );
        for def in strict.iter() {
            let recovered = module
                .defs
                .get(def.name())
                .unwrap_or_else(|| panic!("{name}: `{}` missing from module", def.name()));
            assert_eq!(recovered.body(), def.body(), "{name}: `{}`", def.name());
            assert_eq!(recovered.param(), def.param(), "{name}: `{}`", def.name());
        }
        assert_spans_within(&src);
    }
}
