//! Stress/robustness tests for the concurrent runtime: many seeds, every
//! paper network, every run conformant. Catches scheduler-dependent
//! synchronisation bugs that single-seed tests would miss.

use csp::prelude::*;

#[test]
fn pipeline_conforms_across_many_seeds_and_schedulers() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    for seed in 0..12u64 {
        let run = wb
            .run(
                "pipeline",
                RunOptions {
                    max_steps: 18,
                    scheduler: Scheduler::seeded(seed),
                },
            )
            .unwrap();
        assert!(!run.deadlocked, "seed {seed} deadlocked");
        let conf = wb
            .conformance("pipeline", &run, &["output <= input"])
            .unwrap();
        assert!(conf.conforms(), "seed {seed}: {conf:?}");
    }
    // Round-robin too.
    let run = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 18,
                scheduler: Scheduler::round_robin(),
            },
        )
        .unwrap();
    assert!(wb
        .conformance("pipeline", &run, &["output <= input"])
        .unwrap()
        .conforms());
}

#[test]
fn protocol_retransmissions_never_break_delivery_order() {
    let mut wb = Workbench::new()
        .with_universe(Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp::examples::PROTOCOL_SRC).unwrap();
    let mut saw_retransmission = false;
    for seed in 0..10u64 {
        let run = wb
            .run(
                "protocol",
                RunOptions {
                    max_steps: 30,
                    scheduler: Scheduler::seeded(seed),
                },
            )
            .unwrap();
        saw_retransmission |= run
            .full
            .iter()
            .any(|e| e.value() == &Value::sym("NACK"));
        let conf = wb
            .conformance("protocol", &run, &["output <= input", "output <= f(wire)"])
            .unwrap();
        // `output <= f(wire)` mentions the hidden wire, which the visible
        // trace cannot see — it holds vacuously there (empty wire
        // history gives f(<>) = <> only when output is also empty), so
        // only check the main invariant strictly:
        assert!(conf.trace_admitted, "seed {seed}: {conf:?}");
        assert!(
            conf.invariants[0].1.is_none(),
            "seed {seed} violated output <= input: {conf:?}"
        );
    }
    assert!(
        saw_retransmission,
        "no NACK across 10 seeds — scheduler never exercised retransmission"
    );
}

#[test]
fn multiplier_runs_correctly_across_seeds() {
    let mut wb = Workbench::new().with_universe(Universe::new(20));
    wb.bind_vector("v", &[2, 3, 5]);
    wb.define_source(
        "mult[i:1..3] = row[i]?x:{0..2} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
         zeroes = col[0]!0 -> zeroes
         last = col[3]?y:NAT -> output!y -> last
         network = zeroes || mult[1] || mult[2] || mult[3] || last
         multiplier = chan col[0..3]; network",
    )
    .unwrap();
    for seed in 0..6u64 {
        let run = wb
            .run(
                "multiplier",
                RunOptions {
                    max_steps: 48,
                    scheduler: Scheduler::seeded(seed),
                },
            )
            .unwrap();
        assert!(!run.deadlocked, "seed {seed} deadlocked: {}", run.full);
        let h = run.visible.history();
        let out = h.on(&Channel::simple("output"));
        for i in 1..=out.len() {
            let expected: i64 = (1..=3)
                .map(|j| {
                    [2, 3, 5][j - 1]
                        * h.on(&Channel::indexed("row", j as i64))
                            .at(i)
                            .expect("row value present")
                            .as_int()
                            .unwrap()
                })
                .sum();
            assert_eq!(
                out.at(i).unwrap().as_int().unwrap(),
                expected,
                "seed {seed}, output {i}"
            );
        }
    }
}

#[test]
fn long_runs_stay_linear_and_consistent() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::BUFFER2_SRC).unwrap();
    let run = wb
        .run(
            "buffer2",
            RunOptions {
                max_steps: 300,
                scheduler: Scheduler::seeded(9),
            },
        )
        .unwrap();
    assert_eq!(run.steps, 300);
    let h = run.visible.history();
    let outs = h.on(&Channel::simple("out"));
    let ins = h.on(&Channel::simple("in"));
    assert!(outs.is_prefix_of(&ins));
    // A 2-cell buffer holds at most 2 in-flight messages.
    assert!(ins.len() - outs.len() <= 2);
}
