//! Stress/robustness tests for the concurrent runtime: many seeds, every
//! paper network, every run conformant — healthy *and* under injected
//! faults. Catches scheduler-dependent synchronisation bugs that
//! single-seed tests would miss, and exercises the supervisor's claim
//! that fail-stop faults only remove behaviour (`STOP | P = P`).

use std::time::{Duration, Instant};

use csp::prelude::*;

#[test]
fn pipeline_conforms_across_many_seeds_and_schedulers() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    for seed in 0..12u64 {
        let run = wb
            .run(
                "pipeline",
                RunOptions {
                    max_steps: 18,
                    scheduler: Scheduler::seeded(seed),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(!run.deadlocked, "seed {seed} deadlocked");
        let conf = wb
            .conformance("pipeline", &run, ["output <= input"])
            .unwrap();
        assert!(conf.conforms(), "seed {seed}: {conf:?}");
    }
    // Round-robin too.
    let run = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 18,
                scheduler: Scheduler::round_robin(),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert!(wb
        .conformance("pipeline", &run, ["output <= input"])
        .unwrap()
        .conforms());
}

#[test]
fn protocol_retransmissions_never_break_delivery_order() {
    let mut wb = Workbench::new()
        .with_universe(Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp::examples::PROTOCOL_SRC).unwrap();
    let mut saw_retransmission = false;
    for seed in 0..10u64 {
        let run = wb
            .run(
                "protocol",
                RunOptions {
                    max_steps: 30,
                    scheduler: Scheduler::seeded(seed),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        saw_retransmission |= run.full.iter().any(|e| e.value() == &Value::sym("NACK"));
        let conf = wb
            .conformance("protocol", &run, ["output <= input", "output <= f(wire)"])
            .unwrap();
        // `output <= f(wire)` mentions the hidden wire, which the visible
        // trace cannot see — it holds vacuously there (empty wire
        // history gives f(<>) = <> only when output is also empty), so
        // only check the main invariant strictly:
        assert!(conf.trace_admitted, "seed {seed}: {conf:?}");
        assert!(
            conf.invariants[0].1.is_none(),
            "seed {seed} violated output <= input: {conf:?}"
        );
    }
    assert!(
        saw_retransmission,
        "no NACK across 10 seeds — scheduler never exercised retransmission"
    );
}

#[test]
fn multiplier_runs_correctly_across_seeds() {
    let mut wb = Workbench::new().with_universe(Universe::new(20));
    wb.bind_vector("v", &[2, 3, 5]);
    wb.define_source(
        "mult[i:1..3] = row[i]?x:{0..2} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
         zeroes = col[0]!0 -> zeroes
         last = col[3]?y:NAT -> output!y -> last
         network = zeroes || mult[1] || mult[2] || mult[3] || last
         multiplier = chan col[0..3]; network",
    )
    .unwrap();
    for seed in 0..6u64 {
        let run = wb
            .run(
                "multiplier",
                RunOptions {
                    max_steps: 48,
                    scheduler: Scheduler::seeded(seed),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert!(!run.deadlocked, "seed {seed} deadlocked: {}", run.full);
        let h = run.visible.history();
        let out = h.on(&Channel::simple("output"));
        for i in 1..=out.len() {
            let expected: i64 = (1..=3)
                .map(|j| {
                    [2, 3, 5][j - 1]
                        * h.on(&Channel::indexed("row", j as i64))
                            .at(i)
                            .expect("row value present")
                            .as_int()
                            .unwrap()
                })
                .sum();
            assert_eq!(
                out.at(i).unwrap().as_int().unwrap(),
                expected,
                "seed {seed}, output {i}"
            );
        }
    }
}

#[test]
fn long_runs_stay_linear_and_consistent() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::BUFFER2_SRC).unwrap();
    let run = wb
        .run(
            "buffer2",
            RunOptions {
                max_steps: 300,
                scheduler: Scheduler::seeded(9),
                ..RunOptions::default()
            },
        )
        .unwrap();
    assert_eq!(run.steps, 300);
    let h = run.visible.history();
    let outs = h.on(&Channel::simple("out"));
    let ins = h.on(&Channel::simple("in"));
    assert!(outs.is_prefix_of(&ins));
    // A 2-cell buffer holds at most 2 in-flight messages.
    assert!(ins.len() - outs.len() <= 2);
}

// ----------------------------------------------------------- faults --

/// Crash, stall, and delay plans targeting component 0 and component 1 —
/// applicable to every network below.
fn standard_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan::none().crash(0usize, 3),
        FaultPlan::none().crash(1usize, 5),
        FaultPlan::none().stall(0usize, 2, 4),
        FaultPlan::none().delay(1usize, 1, 3),
        FaultPlan::none()
            .crash(1usize, 4)
            .with_restart(RestartPolicy::Replay),
    ]
}

fn sweep(max_steps: usize) -> FaultSweep {
    FaultSweep::new(0..8u64, standard_plans())
        .with_max_steps(max_steps)
        .with_supervision(Supervision::default().with_round_timeout(Duration::from_secs(5)))
}

#[test]
fn pipeline_degrades_conformantly_under_faults() {
    let started = Instant::now();
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    let result = wb
        .fault_conformance("pipeline", ["output <= input"], &sweep(18))
        .unwrap();
    assert_eq!(result.runs.len(), 48);
    assert!(result.all_conformant(), "{:?}", result.violations());
    for run in &result.runs {
        match run.plan {
            // Fail-stop crashes leave the component dead and reported.
            1 | 2 => assert!(
                matches!(run.outcome, RunOutcome::ComponentFailed { .. }),
                "plan {} seed {}: {:?}",
                run.plan,
                run.seed,
                run.outcome
            ),
            // Stalls, delays, and replay-recovered crashes are transparent.
            0 | 3 | 4 | 5 => assert!(
                run.outcome.is_clean(),
                "plan {} seed {}: {:?}",
                run.plan,
                run.seed,
                run.outcome
            ),
            _ => unreachable!(),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "sweep too slow"
    );
}

#[test]
fn protocol_degrades_conformantly_under_faults() {
    let started = Instant::now();
    let mut wb = Workbench::new()
        .with_universe(Universe::new(0).with_named("M", [Value::nat(0), Value::nat(1)]));
    wb.define_source(csp::examples::PROTOCOL_SRC).unwrap();
    let result = wb
        .fault_conformance("protocol", ["output <= input"], &sweep(30))
        .unwrap();
    assert_eq!(result.runs.len(), 48);
    assert!(result.all_conformant(), "{:?}", result.violations());
    // Every crash plan actually killed its target.
    assert!(result
        .runs
        .iter()
        .filter(|r| matches!(r.plan, 1 | 2 | 5))
        .all(|r| r.failures == 1));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "sweep too slow"
    );
}

#[test]
fn buffer_degrades_conformantly_under_faults() {
    let started = Instant::now();
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::BUFFER2_SRC).unwrap();
    let result = wb
        .fault_conformance("buffer2", ["out <= in"], &sweep(40))
        .unwrap();
    assert_eq!(result.runs.len(), 48);
    assert!(result.all_conformant(), "{:?}", result.violations());
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "sweep too slow"
    );
}

#[test]
fn multiplier_outputs_stay_correct_while_degrading() {
    // Graceful degradation, stated structurally: killing one multiplier
    // stage stops the column pipeline eventually, but every output that
    // *does* appear is still a correct scalar product — faults removed
    // behaviour, they never corrupted it.
    let started = Instant::now();
    let mut wb = Workbench::new().with_universe(Universe::new(20));
    wb.bind_vector("v", &[2, 3, 5]);
    wb.define_source(
        "mult[i:1..3] = row[i]?x:{0..2} -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
         zeroes = col[0]!0 -> zeroes
         last = col[3]?y:NAT -> output!y -> last
         network = zeroes || mult[1] || mult[2] || mult[3] || last
         multiplier = chan col[0..3]; network",
    )
    .unwrap();
    for seed in 0..8u64 {
        for (plan, crashy) in [
            (FaultPlan::none().crash("mult[2]", 6), true),
            (FaultPlan::none().stall("mult[1]", 3, 5), false),
            (FaultPlan::none().delay("last", 2, 4), false),
        ] {
            let run = wb
                .run(
                    "multiplier",
                    RunOptions {
                        max_steps: 40,
                        scheduler: Scheduler::seeded(seed),
                        faults: plan,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            if crashy {
                assert!(
                    matches!(run.outcome, RunOutcome::ComponentFailed { ref label, .. }
                        if label == "mult[2]"),
                    "seed {seed}: {:?}",
                    run.outcome
                );
            } else {
                assert!(run.outcome.is_clean(), "seed {seed}: {:?}", run.outcome);
            }
            let h = run.visible.history();
            let out = h.on(&Channel::simple("output"));
            for i in 1..=out.len() {
                let expected: i64 = (1..=3)
                    .map(|j| {
                        [2, 3, 5][j - 1]
                            * h.on(&Channel::indexed("row", j as i64))
                                .at(i)
                                .expect("row value present")
                                .as_int()
                                .unwrap()
                    })
                    .sum();
                assert_eq!(
                    out.at(i).unwrap().as_int().unwrap(),
                    expected,
                    "seed {seed}"
                );
            }
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "sweep too slow"
    );
}

#[test]
fn replay_restart_reconstructs_state_exactly() {
    // State = function of communication history (§3): a crashed-and-
    // replayed run is event-for-event identical to the healthy run under
    // the same seed, for every seed and either component.
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    for seed in 0..8u64 {
        let healthy = wb
            .run(
                "pipeline",
                RunOptions {
                    max_steps: 20,
                    scheduler: Scheduler::seeded(seed),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        for component in ["copier", "recopier"] {
            let faulty = wb
                .run(
                    "pipeline",
                    RunOptions {
                        max_steps: 20,
                        scheduler: Scheduler::seeded(seed),
                        faults: FaultPlan::none()
                            .crash(component, 7)
                            .with_restart(RestartPolicy::Replay),
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(
                faulty.full, healthy.full,
                "seed {seed}, crash {component}: replay changed the trace"
            );
            assert_eq!(faulty.recoveries(), 1);
            assert!(faulty.outcome.is_clean());
        }
    }
}

#[test]
fn starved_component_keeps_invariants_but_loses_turns() {
    let mut wb = Workbench::new().with_universe(Universe::new(1));
    wb.define_source(csp::examples::PIPELINE_SRC).unwrap();
    // Starving the recopier: input events (copier-only) are always
    // preferred over the shared wire/output events, so the recopier
    // advances only when the copier has nothing private to do.
    let run = wb
        .run(
            "pipeline",
            RunOptions {
                max_steps: 16,
                scheduler: Scheduler::seeded(0),
                faults: FaultPlan::none().starving("recopier"),
                ..RunOptions::default()
            },
        )
        .unwrap();
    let conf = wb
        .conformance("pipeline", &run, ["output <= input"])
        .unwrap();
    assert!(conf.conforms(), "{conf:?}");
}
