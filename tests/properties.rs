//! Property-based tests over the core data structures and the semantic
//! invariants the paper's model depends on.

use csp::{
    compare, parse_process, Channel, ChannelSet, Config, Definitions, Env, Event, Lts, Process,
    Semantics, Seq, Trace, TraceSet, Universe, Value,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- data --

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..4).prop_map(Value::nat),
        Just(Value::sym("ACK")),
        Just(Value::sym("NACK")),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (prop_oneof![Just("a"), Just("b"), Just("c")], arb_value())
        .prop_map(|(c, v)| Event::new(Channel::simple(c), v))
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_event(), 0..=max_len).prop_map(Trace::from_events)
}

fn arb_traceset() -> impl Strategy<Value = TraceSet> {
    prop::collection::vec(arb_trace(4), 0..4).prop_map(TraceSet::closure_of)
}

/// Closed random process terms over channels a/b/c (mirrors the grammar
/// of csp-verify's generator, but through proptest so failures shrink).
fn arb_process() -> impl Strategy<Value = Process> {
    let leaf = Just(Process::Stop);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("a"), Just("b"), Just("c")],
                0i64..2,
                inner.clone()
            )
                .prop_map(|(c, n, p)| Process::output(c, csp::Expr::int(n), p)),
            (prop_oneof![Just("a"), Just("b"), Just("c")], inner.clone())
                .prop_map(|(c, p)| Process::input(c, "x", csp::SetExpr::range(0, 1), p)),
            (inner.clone(), inner).prop_map(|(p, q)| p.or(q)),
        ]
    })
}

// ------------------------------------------------------------ sequences --

proptest! {
    /// `s ≤ t ⇔ ∃u. s⌢u = t` — both directions.
    #[test]
    fn prefix_order_characterisation(s in arb_trace(4), u in arb_trace(4)) {
        let t = s.concat(&u);
        prop_assert!(s.is_prefix_of(&t));
        if !u.is_empty() {
            prop_assert!(!t.is_prefix_of(&s));
        }
    }

    /// The prefix order is a partial order.
    #[test]
    fn prefix_order_is_partial_order(a in arb_trace(4), b in arb_trace(4)) {
        prop_assert!(a.is_prefix_of(&a));
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(&a, &b);
        }
    }

    /// `#(s⌢t) = #s + #t` and 1-based indexing is consistent with it.
    #[test]
    fn concat_length_and_indexing(s in arb_trace(4), t in arb_trace(4)) {
        let st = s.concat(&t);
        prop_assert_eq!(st.len(), s.len() + t.len());
        for i in 1..=s.len() {
            prop_assert_eq!(st.at(i), s.at(i));
        }
        for i in 1..=t.len() {
            prop_assert_eq!(st.at(s.len() + i), t.at(i));
        }
    }

    /// `ch(s)` distributes the events: total messages equals trace
    /// length, and restriction commutes with history (lemma (d) of
    /// §3.4).
    #[test]
    fn history_lemmas(s in arb_trace(6)) {
        let h = s.history();
        prop_assert_eq!(h.total_messages(), s.len());
        let hidden: ChannelSet = ["b"].into_iter().collect();
        let restricted = s.restrict(&hidden).history();
        for c in ["a", "c"] {
            prop_assert_eq!(h.on(&Channel::simple(c)), restricted.on(&Channel::simple(c)));
        }
        prop_assert!(restricted.on(&Channel::simple("b")).is_empty());
    }

    /// Seq cons/tail round-trip and snoc/last.
    #[test]
    fn seq_cons_laws(xs in prop::collection::vec(0i64..5, 0..6), x in 0i64..5) {
        let s: Seq<i64> = xs.iter().copied().collect();
        let consed = s.cons(x);
        prop_assert_eq!(consed.head(), Some(&x));
        prop_assert_eq!(consed.tail().unwrap(), s.clone());
        let snocced = s.snoc(x);
        prop_assert_eq!(snocced.last(), Some(&x));
        prop_assert_eq!(snocced.len(), s.len() + 1);
    }
}

// ------------------------------------------------------------ trace sets --

proptest! {
    /// Every constructor maintains prefix closure.
    #[test]
    fn constructors_preserve_closure(ts in arb_traceset(), e in arb_event()) {
        prop_assert!(ts.is_prefix_closed());
        prop_assert!(ts.prefixed(e).is_prefix_closed());
        let hidden: ChannelSet = ["b"].into_iter().collect();
        prop_assert!(ts.hide(&hidden).is_prefix_closed());
    }

    /// Union/intersection are idempotent, commutative, and closed.
    #[test]
    fn union_intersection_laws(a in arb_traceset(), b in arb_traceset()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.union(&b).is_prefix_closed());
        prop_assert!(a.is_subset(&a.union(&b)));
        prop_assert!(a.intersection(&b).is_subset(&a));
    }

    /// §4 at the set level: `{<>} ∪ P = P` (STOP is the unit of choice).
    #[test]
    fn stop_is_choice_unit(p in arb_traceset()) {
        prop_assert_eq!(TraceSet::stop().union(&p), p);
    }

    /// The prefix operator distributes over union (§3.1 theorem).
    #[test]
    fn prefix_distributes_over_union(a in arb_traceset(), b in arb_traceset(), e in arb_event()) {
        let lhs = a.union(&b).prefixed(e);
        let rhs = a.prefixed(e).union(&b.prefixed(e));
        prop_assert_eq!(lhs, rhs);
    }

    /// Membership characterisation of parallel composition: every member
    /// projects into the operands (§3.1's definition).
    #[test]
    fn parallel_members_project(a in arb_traceset(), b in arb_traceset()) {
        let x: ChannelSet = ["a", "b"].into_iter().collect();
        let y: ChannelSet = ["b", "c"].into_iter().collect();
        // Restrict operands to their own alphabets first.
        let pa = TraceSet::closure_of(a.iter().map(|t| t.project(&x)));
        let pb = TraceSet::closure_of(b.iter().map(|t| t.project(&y)));
        let par = pa.parallel(&x, &pb, &y);
        prop_assert!(par.is_prefix_closed());
        for s in par.iter() {
            prop_assert!(s.is_over(&x.union(&y)));
            prop_assert!(pa.contains(&s.project(&x)), "s↾X ∉ P for {}", s);
            prop_assert!(pb.contains(&s.project(&y)), "s↾Y ∉ Q for {}", s);
        }
    }

    /// Hiding then hiding again on disjoint sets equals hiding the union.
    #[test]
    fn hide_composes(ts in arb_traceset()) {
        let b: ChannelSet = ["b"].into_iter().collect();
        let c: ChannelSet = ["c"].into_iter().collect();
        let bc: ChannelSet = ["b", "c"].into_iter().collect();
        prop_assert_eq!(ts.hide(&b).hide(&c), ts.hide(&bc));
    }

    /// §3.1: hiding distributes through unions.
    #[test]
    fn hide_distributes_over_union(a in arb_traceset(), b in arb_traceset()) {
        let c: ChannelSet = ["b"].into_iter().collect();
        prop_assert_eq!(
            a.union(&b).hide(&c),
            a.hide(&c).union(&b.hide(&c))
        );
    }

    /// §3.1: parallel composition distributes through unions in each
    /// argument ("all the operators we use will … distribute through
    /// arbitrary unions").
    #[test]
    fn parallel_distributes_over_union(
        a in arb_traceset(),
        b in arb_traceset(),
        q in arb_traceset(),
    ) {
        let x: ChannelSet = ["a", "b"].into_iter().collect();
        let y: ChannelSet = ["b", "c"].into_iter().collect();
        let pa = TraceSet::closure_of(a.iter().map(|t| t.project(&x)));
        let pb = TraceSet::closure_of(b.iter().map(|t| t.project(&x)));
        let pq = TraceSet::closure_of(q.iter().map(|t| t.project(&y)));
        let lhs = pa.union(&pb).parallel(&x, &pq, &y);
        let rhs = pa.parallel(&x, &pq, &y).union(&pb.parallel(&x, &pq, &y));
        prop_assert_eq!(lhs, rhs);
    }

    /// The padding characterisation of §3.1 agrees with the on-the-fly
    /// parallel composition on generated operands.
    #[test]
    fn padding_definition_agrees_with_parallel(
        a in arb_traceset(),
        b in arb_traceset(),
    ) {
        let x: ChannelSet = ["a", "b"].into_iter().collect();
        let y: ChannelSet = ["b", "c"].into_iter().collect();
        let pa = TraceSet::closure_of(a.iter().map(|t| t.project(&x)));
        let pb = TraceSet::closure_of(b.iter().map(|t| t.project(&y)));
        let depth = 4;
        let events_on = |ts: &TraceSet, cs: &ChannelSet| -> Vec<Event> {
            let mut out: Vec<Event> = ts
                .iter()
                .flat_map(|t| t.iter().cloned())
                .filter(|e| cs.contains(e.channel()))
                .collect();
            out.sort();
            out.dedup();
            out
        };
        let by_def = pa
            .pad(&events_on(&pb, &y.difference(&x)), depth)
            .intersection(&pb.pad(&events_on(&pa, &x.difference(&y)), depth));
        let by_impl = pa.parallel(&x, &pb, &y).up_to_depth(depth);
        prop_assert_eq!(by_def, by_impl);
    }
}

// ------------------------------------------- semantics & language --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pretty-printer round-trips through the parser on generated
    /// terms.
    #[test]
    fn printer_parser_roundtrip(p in arb_process()) {
        let printed = p.to_string();
        let reparsed = parse_process(&printed)
            .unwrap_or_else(|e| panic!("printed form unparsable: {printed}: {e}"));
        prop_assert_eq!(reparsed, p);
    }

    /// The operational semantics agrees with the denotational semantics
    /// on generated closed terms (no definitions, no hiding — those are
    /// covered by the example-based tests).
    #[test]
    fn operational_equals_denotational(p in arb_process()) {
        let defs = Definitions::new();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let lts = Lts::new(&defs, &uni);
        let env = Env::new();
        for depth in 0..=3 {
            let den = sem.denote(&p, &env, depth).expect("denote");
            let op = lts
                .traces(&Config::new(p.clone(), env.clone()), depth)
                .expect("lts traces");
            prop_assert!(compare(&den, &op).is_none(),
                "disagreement at depth {} for {}:\n{}",
                depth, p, compare(&den, &op).unwrap());
        }
    }

    /// Every denotation is prefix-closed and contains the empty trace
    /// (the §3.1 well-formedness of the semantic domain).
    #[test]
    fn denotations_are_prefix_closures(p in arb_process()) {
        let defs = Definitions::new();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let t = sem.denote(&p, &Env::new(), 3).expect("denote");
        prop_assert!(t.is_prefix_closed());
        prop_assert!(t.contains(&Trace::empty()));
    }

    /// Deeper exploration only adds traces: `D_d(P) ⊆ D_{d+1}(P)` and
    /// truncation recovers the shallower set.
    #[test]
    fn depth_monotonicity(p in arb_process()) {
        let defs = Definitions::new();
        let uni = Universe::new(1);
        let sem = Semantics::new(&defs, &uni);
        let env = Env::new();
        let d2 = sem.denote(&p, &env, 2).expect("denote");
        let d3 = sem.denote(&p, &env, 3).expect("denote");
        prop_assert!(d2.is_subset(&d3));
        prop_assert_eq!(d3.up_to_depth(2), d2);
    }
}

// ------------------------------------------------- engine equivalence --

/// Closed random networks: two sequential terms in parallel, optionally
/// concealing one channel — the shapes on which the compiled and
/// enumerative engines take genuinely different code paths (product
/// construction and τ-steps).
fn arb_network() -> impl Strategy<Value = Process> {
    (
        arb_process(),
        arb_process(),
        prop_oneof![
            Just(None),
            Just(Some("a")),
            Just(Some("b")),
            Just(Some("c"))
        ],
    )
        .prop_map(|(p, q, hide)| {
            let net = p.par(q);
            match hide {
                Some(c) => net.hide(vec![csp::ChanRef::simple(c)]),
                None => net,
            }
        })
}

proptest! {
    /// The compiled arena reproduces the enumerative engine's trace set
    /// exactly, and both agree with the `NaiveTraceSet` reference
    /// closure — the cross-validation triangle the engine selector
    /// relies on.
    #[test]
    fn compiled_and_enumerative_traces_agree(p in arb_network()) {
        let defs = Definitions::new();
        let uni = Universe::small();
        let depth = 3;
        let budget = depth * 4;
        let start = Config::new(p.clone(), Env::new());

        let enumerative = Lts::new(&defs, &uni)
            .traces_budgeted(&start, depth, budget)
            .expect("enumerative");
        let mut arena = csp::CompiledLts::new(&defs, &uni);
        let s = arena.intern(start);
        let compiled = arena.traces_budgeted(s, depth, budget).expect("compiled");
        prop_assert_eq!(&compiled, &enumerative);

        let naive_c = csp::NaiveTraceSet::closure_of(compiled.iter().cloned());
        let naive_e = csp::NaiveTraceSet::closure_of(enumerative.iter().cloned());
        prop_assert_eq!(naive_c, naive_e);
    }

    /// `sat` verdicts agree between engines on random networks and
    /// random `InstanceGen` assertions: same holds/refuted answer, same
    /// number of moments checked, same counterexample.
    #[test]
    fn sat_verdicts_agree_across_engines(p in arb_network(), seed in 0u64..1024) {
        let defs = Definitions::new();
        let uni = Universe::small();
        let assertion = csp::InstanceGen::new(seed).assertion();

        let enum_res = csp::SatChecker::new(&defs, &uni)
            .with_engine(csp::Engine::Enumerative)
            .check(&p, &assertion, 3)
            .expect("enumerative sat");
        let comp_res = csp::SatChecker::new(&defs, &uni)
            .with_engine(csp::Engine::Compiled)
            .check(&p, &assertion, 3)
            .expect("compiled sat");

        prop_assert_eq!(enum_res.holds(), comp_res.holds());
        match (enum_res, comp_res) {
            (
                csp::SatResult::Holds { traces_checked: a, .. },
                csp::SatResult::Holds { traces_checked: b, .. },
            ) => prop_assert_eq!(a, b),
            (
                csp::SatResult::Counterexample { trace: a, .. },
                csp::SatResult::Counterexample { trace: b, .. },
            ) => prop_assert_eq!(a, b),
            _ => unreachable!("holds() equality already checked"),
        }
    }

    /// Compiled refinement (subset construction over bitset rows) agrees
    /// with the enumerative trace-subset check in both directions.
    #[test]
    fn refinement_agrees_with_trace_subset(imp in arb_network(), spec in arb_network()) {
        let defs = Definitions::new();
        let uni = Universe::small();
        let depth = 3;
        let budget = depth * 4;

        let lts = Lts::new(&defs, &uni);
        let imp_ts = lts
            .traces_budgeted(&Config::new(imp.clone(), Env::new()), depth, budget)
            .expect("impl traces");
        let spec_ts = lts
            .traces_budgeted(&Config::new(spec.clone(), Env::new()), depth, budget)
            .expect("spec traces");
        let subset = imp_ts.is_subset(&spec_ts);

        let mut arena = csp::CompiledLts::new(&defs, &uni);
        let i = arena.intern(Config::new(imp, Env::new()));
        let s = arena.intern(Config::new(spec, Env::new()));
        let verdict = arena.refines(i, s, depth, budget).expect("refines");

        match verdict {
            Ok(()) => prop_assert!(subset, "compiled says refines, subset check disagrees"),
            Err(cex) => {
                prop_assert!(!subset, "compiled refuted but subset holds: {}", cex);
                prop_assert!(imp_ts.contains(&cex), "counterexample not an impl trace");
                prop_assert!(!spec_ts.contains(&cex), "counterexample admitted by spec");
            }
        }
    }

    /// The deadlock searches produce the same report — same witnesses in
    /// the same order, same exploration count — on either backend.
    #[test]
    fn deadlock_reports_agree_across_engines(p in arb_network()) {
        let defs = Definitions::new();
        let uni = Universe::small();
        let enum_rep =
            csp::find_deadlocks(&defs, &uni, &p, &Env::new(), 3).expect("enumerative");
        let comp_rep =
            csp::find_deadlocks_compiled(&defs, &uni, &p, &Env::new(), 3).expect("compiled");
        prop_assert_eq!(enum_rep.deadlock_free(), comp_rep.deadlock_free());
        prop_assert_eq!(format!("{enum_rep:?}"), format!("{comp_rep:?}"));
    }
}
