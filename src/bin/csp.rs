//! `csp` — command-line driver for the hoare-csp reproduction.
//!
//! ```text
//! csp lint      <file.csp> [more.csp ...] [--json] [--deny warnings]
//! csp validate  <file.csp> [--json]          (deprecated alias of lint)
//! csp traces    <file.csp> --process NAME [--depth N] [--nat-bound K]
//! csp check     <file.csp> --process NAME --assert EXPR [--depth N]
//!               [--engine enumerative|compiled|auto]
//! csp prove     <file.csp> --spec NAME=EXPR [--spec NAME=EXPR ...]
//!               [--engine enumerative|compiled|auto] [--json]
//! csp run       <file.csp> --process NAME [--steps N] [--seed S]
//!               [--fault-plan SPEC] [--deadline-ms T] [--livelock-window W]
//!               [--watch[=MS]] [--monitor[=ASSERT]] [--msc-out F]
//!               [--causal-out F] [--json]
//! csp deadlock  <file.csp> --process NAME [--depth N]
//! csp profile   <file.csp> [--depth N] [--folded-out PATH]
//!               [--diff OLD.json] [--noise-ms X]
//! csp bench     report [--history PATH] [--engine E]
//! csp serve     [--addr HOST:PORT] [--workers N] [--cache-cap N]
//! csp lsp
//! ```
//!
//! Verification commands (`check`, `prove`, `deadlock`) accept
//! `--engine enumerative|compiled|auto` to pick the backend: the
//! enumerative engine re-derives traces from the operational semantics
//! on every visit, while the compiled engine interns reachable states
//! into an explicit LTS and answers by bitset reachability. `auto` (the
//! default) selects compiled for networks (`||` / `chan … ;` hiding) and
//! enumerative for sequential processes. Verdicts agree; the resolved
//! engine is reported in `--json` envelopes as `"engine"`.
//!
//! Common options: `--nat-bound K` (finite carrier for NAT, default 2),
//! `--set M=v1,v2,…` (interpret a named abstract set), `--bind v=1,2,3`
//! (host constant vector, cells `v[1]…`), `--channels a,b` (declare
//! assertion-only channels).
//!
//! Observability: `--trace-out events.jsonl` writes the recorded span
//! stream (one JSON object per line) and `--metrics` prints the
//! aggregated counter/span table after `run`, `prove`, `lint`, and
//! `check`. `--chrome-out trace.json` exports the span tree in Chrome
//! trace-event format (loadable in `chrome://tracing` or Perfetto) and
//! `--prom-out metrics.prom` writes a Prometheus-style text exposition.
//! `csp profile` runs the parse → fixpoint → verify pipeline under a
//! collector and reports per-phase wall time and allocation, plus a
//! flamegraph-style folded-stacks file; `--diff OLD.json` compares the
//! run against a prior `csp profile --json` capture and prints signed
//! per-span/per-counter deltas above a `--noise-ms` threshold.
//! `csp run --watch` streams a live status line (round, scheduler
//! picks, live/dead components, events/s from the per-channel
//! throughput counters, dropped events) to stderr while the executor
//! runs. `csp bench report` prints the trajectory recorded in
//! `BENCH_history.jsonl` by `bench-json --history`.
//!
//! Causal observability (`csp run`): every communication is stamped
//! with per-process vector clocks and recorded in a bounded causal
//! event log alongside fault/supervision events. `--msc-out F` writes
//! the log as a Mermaid `sequenceDiagram` message-sequence chart,
//! `--causal-out F` as JSONL (one causal event per line, clocks
//! included). `--monitor` replays the observed trace step-by-step
//! through the compiled LTS while the run executes and reports a
//! verdict (conforming / violated / aborted); `--monitor=ASSERT`
//! additionally checks a `sat` assertion on every visible prefix. A
//! violation names the first divergent event and its causal history,
//! and flips the exit status to 1. `csp run --json` wraps the outcome,
//! visible trace, failures, supervision summary, and monitor verdict
//! in the `csp/v1` envelope.
//!
//! All `--json` output shares one versioned envelope:
//! `{"schema":"csp/v1","command":"<cmd>","data":…}`.
//!
//! Fault plans use the [`FaultPlan::parse`] syntax, e.g.
//! `--fault-plan 'crash:copier@4;restart:replay'` or
//! `--fault-plan 'stall:2@3x5;starve:0'`.
//!
//! Exit status: 0 on success; 1 when the requested analysis found a
//! refutation (counterexample, deadlock, failed proof, lint error — or
//! any lint warning under `--deny warnings`); 2 on usage or input
//! errors.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use csp::obs::{parse_json, JsonValue, MetricsSnapshot};
use csp::prelude::*;
use csp::{
    max_severity, render_json, render_report, timeline, Diagnostic, ParseError, Session, Severity,
};

/// A byte-counting wrapper around the system allocator, so `csp profile`
/// can attribute allocation volume to pipeline phases without any
/// external profiler. Only the library crates forbid unsafe; this binary
/// is the designated home for the one unavoidable `GlobalAlloc` impl.
struct CountingAlloc;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  csp lint      <file.csp> [more.csp ...] [--json] [--deny warnings]
                [--process NAME --assert EXPR]
  csp validate  <file.csp> [--json]
                DEPRECATED: alias of `csp lint`; use `csp lint` directly
  csp traces    <file.csp> --process NAME [--depth N]
  csp check     <file.csp> --process NAME --assert EXPR [--depth N]
                [--engine enumerative|compiled|auto]
  csp prove     <file.csp> --spec NAME=EXPR [--spec NAME=EXPR ...]
                [--engine enumerative|compiled|auto] [--json]
  csp run       <file.csp> --process NAME [--steps N] [--seed S]
                [--fault-plan SPEC] [--deadline-ms T] [--livelock-window W]
                [--watch[=MS]] [--monitor[=ASSERT]] [--msc-out F]
                [--causal-out F] [--json]
  csp deadlock  <file.csp> --process NAME [--depth N]
                [--engine enumerative|compiled|auto]
  csp profile   <file.csp> [--depth N] [--folded-out PATH]
                [--process NAME --assert EXPR] [--diff OLD.json]
  csp bench     report [--history PATH] [--engine E]
  csp serve     [--addr HOST:PORT] [--workers N] [--cache-cap N]
                persistent HTTP verification service (see below)
  csp lsp       speak the Language Server Protocol over stdio
options:
  --json               machine-readable output, wrapped in the versioned
                       envelope {\"schema\":\"csp/v1\",\"command\":…,\"data\":…}
                       (lint/validate/check/prove/run/profile)
  --deny warnings      treat lint warnings as errors (exit 1)
  --engine E           verification backend for check/prove/deadlock:
                       enumerative (trace re-derivation), compiled
                       (interned-state LTS + bitset reachability), or
                       auto (compiled for networks; the default)
  --trace-out PATH     write the recorded span stream as JSONL
                       (lint/check/prove/run/profile)
  --chrome-out PATH    write the span tree as Chrome trace-event JSON
                       (check/prove/run/profile)
  --prom-out PATH      write the metrics as Prometheus text exposition
                       (check/prove/run/profile)
  --metrics            print the aggregated metrics table (or embed it
                       in --json output)
  --folded-out PATH    where `profile` writes folded stacks
                       (default: <file-stem>.folded)
  --diff OLD.json      `profile`: compare against a prior
                       `csp profile --json` capture and print signed
                       per-span/per-counter deltas
  --noise-ms X         suppress --diff span rows that moved less than
                       X ms (default 1.0)
  --watch[=MS]         `run`: stream a live status line to stderr,
                       sampled every MS milliseconds (default 250)
  --monitor[=ASSERT]   `run`: online runtime verification — replay the
                       observed trace through the compiled LTS as it
                       happens (trace membership), plus check ASSERT as
                       a `sat` assertion on every visible prefix;
                       repeatable; a violation exits 1
  --msc-out PATH       `run`: write the causal log as a Mermaid
                       sequenceDiagram message-sequence chart
  --causal-out PATH    `run`: write the causal event log (vector
                       clocks included) as JSONL
  --history PATH       `bench report`: the history JSONL to read
                       (default BENCH_history.jsonl)
  --nat-bound K        finite carrier for NAT (default 2)
  --set M=v1,v2        interpretation for a named abstract set
  --bind v=1,2,3       host constant vector (cells v[1], v[2], …)
  --channels a,b       declare assertion-only channel names
  --fault-plan SPEC    inject faults into `run`: ;-separated clauses
                       crash:COMP@STEP  stall:COMP@STEPxROUNDS
                       delay:COMP@STEPxROUNDS  starve:COMP
                       restart:failstop|replay|reset
  --deadline-ms T      wall-clock budget for `run` (watchdog)
  --livelock-window W  stop `run` after W consecutive concealed events
serve options:
  --addr HOST:PORT     bind address (default 127.0.0.1:7017; port 0
                       picks a free port, printed on stdout)
  --workers N          worker threads (default: RAYON_NUM_THREADS or
                       the CPU count, clamped to 2..=16)
  --cache-cap N        rendered responses kept in the cross-request
                       cache (default 1024; 0 disables caching)
serve endpoints: POST /v1/{lint,check,prove,run,profile} take the CLI's
flags as JSON body fields ({\"source\":…,\"process\":…,\"depth\":…});
GET /healthz, /metrics (Prometheus), /v1/trace (Chrome trace JSON).
Responses carry X-Csp-Cache: hit|miss|bypass and X-Csp-Ms headers.";

/// Parsed command-line options shared by all subcommands.
struct Opts {
    file: String,
    files: Vec<String>,
    json: bool,
    deny_warnings: bool,
    process: Option<String>,
    assertion: Option<String>,
    specs: Vec<(String, String)>,
    engine: Engine,
    depth: usize,
    steps: usize,
    seed: u64,
    fault_plan: Option<String>,
    deadline_ms: Option<u64>,
    livelock_window: usize,
    nat_bound: u32,
    sets: Vec<(String, Vec<Value>)>,
    binds: Vec<(String, Vec<i64>)>,
    channels: Vec<String>,
    trace_out: Option<String>,
    chrome_out: Option<String>,
    prom_out: Option<String>,
    metrics: bool,
    folded_out: Option<String>,
    diff: Option<String>,
    noise_ms: f64,
    watch: Option<u64>,
    monitor: bool,
    monitor_asserts: Vec<String>,
    msc_out: Option<String>,
    causal_out: Option<String>,
}

fn parse_opts(args: &[String], multi_file: bool) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        files: Vec::new(),
        json: false,
        deny_warnings: false,
        process: None,
        assertion: None,
        specs: Vec::new(),
        engine: Engine::Auto,
        depth: 4,
        steps: 32,
        seed: 0,
        fault_plan: None,
        deadline_ms: None,
        livelock_window: 0,
        nat_bound: 2,
        sets: Vec::new(),
        binds: Vec::new(),
        channels: Vec::new(),
        trace_out: None,
        chrome_out: None,
        prom_out: None,
        metrics: false,
        folded_out: None,
        diff: None,
        noise_ms: 1.0,
        watch: None,
        monitor: false,
        monitor_asserts: Vec::new(),
        msc_out: None,
        causal_out: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => {
                let v = value("--deny")?;
                if v != "warnings" {
                    return Err(format!("--deny expects `warnings`, got `{v}`"));
                }
                opts.deny_warnings = true;
            }
            "--process" => opts.process = Some(value("--process")?),
            "--assert" => opts.assertion = Some(value("--assert")?),
            "--spec" => {
                let v = value("--spec")?;
                let (name, inv) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--spec expects NAME=EXPR, got `{v}`"))?;
                opts.specs
                    .push((name.trim().to_string(), inv.trim().to_string()));
            }
            "--engine" => opts.engine = value("--engine")?.parse()?,
            "--depth" => {
                opts.depth = value("--depth")?
                    .parse()
                    .map_err(|_| "--depth expects a number".to_string())?;
            }
            "--steps" => {
                opts.steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects a number".to_string())?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--fault-plan" => opts.fault_plan = Some(value("--fault-plan")?),
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms expects a number".to_string())?,
                );
            }
            "--livelock-window" => {
                opts.livelock_window = value("--livelock-window")?
                    .parse()
                    .map_err(|_| "--livelock-window expects a number".to_string())?;
            }
            "--nat-bound" => {
                opts.nat_bound = value("--nat-bound")?
                    .parse()
                    .map_err(|_| "--nat-bound expects a number".to_string())?;
            }
            "--set" => {
                let v = value("--set")?;
                let (name, vals) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects NAME=v1,v2, got `{v}`"))?;
                let parsed = vals
                    .split(',')
                    .map(parse_value)
                    .collect::<Result<Vec<_>, _>>()?;
                opts.sets.push((name.trim().to_string(), parsed));
            }
            "--bind" => {
                let v = value("--bind")?;
                let (name, vals) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects NAME=1,2,3, got `{v}`"))?;
                let parsed = vals
                    .split(',')
                    .map(|x| {
                        x.trim()
                            .parse::<i64>()
                            .map_err(|_| format!("bad integer `{x}` in --bind"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                opts.binds.push((name.trim().to_string(), parsed));
            }
            "--channels" => {
                let v = value("--channels")?;
                opts.channels
                    .extend(v.split(',').map(|c| c.trim().to_string()));
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--chrome-out" => opts.chrome_out = Some(value("--chrome-out")?),
            "--prom-out" => opts.prom_out = Some(value("--prom-out")?),
            "--metrics" => opts.metrics = true,
            "--folded-out" => opts.folded_out = Some(value("--folded-out")?),
            "--diff" => opts.diff = Some(value("--diff")?),
            "--noise-ms" => {
                opts.noise_ms = value("--noise-ms")?
                    .parse()
                    .map_err(|_| "--noise-ms expects a number".to_string())?;
            }
            "--monitor" => opts.monitor = true,
            other if other.starts_with("--monitor=") => {
                opts.monitor = true;
                let assert = &other["--monitor=".len()..];
                if assert.is_empty() {
                    return Err("--monitor= expects an assertion".to_string());
                }
                opts.monitor_asserts.push(assert.to_string());
            }
            "--msc-out" => opts.msc_out = Some(value("--msc-out")?),
            "--causal-out" => opts.causal_out = Some(value("--causal-out")?),
            "--watch" => opts.watch = Some(250),
            other if other.starts_with("--watch=") => {
                let ms: u64 = other["--watch=".len()..]
                    .parse()
                    .map_err(|_| "--watch expects a millisecond interval".to_string())?;
                opts.watch = Some(ms.max(1));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if multi_file {
        if positional.is_empty() {
            return Err("missing <file.csp>".to_string());
        }
        opts.file = positional[0].clone();
        opts.files = positional;
        return Ok(opts);
    }
    match positional.as_slice() {
        [file] => {
            opts.file = file.clone();
            opts.files = vec![file.clone()];
            Ok(opts)
        }
        [] => Err("missing <file.csp>".to_string()),
        more => Err(format!("unexpected arguments: {more:?}")),
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Ok(n) = s.parse::<i64>() {
        Ok(Value::Int(n))
    } else if s.chars().next().is_some_and(char::is_uppercase) {
        Ok(Value::sym(s))
    } else {
        Err(format!("bad value `{s}` (integers or Uppercase atoms)"))
    }
}

fn build_workbench(opts: &Opts) -> Result<Workbench, String> {
    build_workbench_for(opts, &opts.file)
}

fn build_workbench_for(opts: &Opts, file: &str) -> Result<Workbench, String> {
    let (wb, errors) = assemble_workbench(opts, file, false)?;
    debug_assert!(errors.is_empty(), "strict parsing returns Err instead");
    Ok(wb)
}

/// Like [`build_workbench_for`], but parses with error recovery:
/// definitions that survive a syntax error still load and the errors
/// come back as values. `csp lint` uses this so one typo cannot silence
/// every diagnostic below it; verification commands stay strict because
/// an error hole would make their verdicts vacuous.
fn build_workbench_lenient(
    opts: &Opts,
    file: &str,
) -> Result<(Workbench, Vec<ParseError>), String> {
    assemble_workbench(opts, file, true)
}

fn assemble_workbench(
    opts: &Opts,
    file: &str,
    lenient: bool,
) -> Result<(Workbench, Vec<ParseError>), String> {
    let mut uni = Universe::new(opts.nat_bound);
    for (name, vals) in &opts.sets {
        uni = uni.with_named(name, vals.iter().cloned());
    }
    let mut wb = Workbench::new().with_universe(uni);
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let errors = if lenient {
        wb.define_source_lenient(&src)
    } else {
        wb.define_source(&src).map_err(|e| e.to_string())?;
        Vec::new()
    };
    for (name, vals) in &opts.binds {
        wb.bind_vector(name, vals);
    }
    if !opts.channels.is_empty() {
        wb.declare_channels(opts.channels.iter().map(String::as_str));
    }
    Ok((wb, errors))
}

fn need_process(opts: &Opts) -> Result<&str, String> {
    opts.process
        .as_deref()
        .ok_or_else(|| "--process NAME is required".to_string())
}

/// Wraps a rendered JSON value in the `csp/v1` envelope.
fn envelope(command: &str, data: &str) -> String {
    format!("{{\"schema\":\"csp/v1\",\"command\":{command:?},\"data\":{data}}}")
}

/// The shared `--trace-out`/`--metrics` epilogue: writes the session's
/// span stream and prints the aggregated table (human output only; the
/// `--json` paths embed the metrics in their envelope instead).
fn finish_observation(session: &Session<'_>, opts: &Opts) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        let mut f = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        session
            .write_trace_jsonl(&mut f)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote {} span(s) to {path}{}",
            session.events().len(),
            match session.dropped() {
                0 => String::new(),
                n => format!(" ({n} evicted)"),
            }
        );
    }
    write_exports(session, opts)?;
    if opts.metrics && !opts.json {
        print!("{}", session.metrics().render_table());
    }
    Ok(())
}

/// Writes the `--chrome-out`/`--prom-out` export files from a session's
/// collector. Shared by the per-command epilogue and `csp profile`.
fn write_exports(session: &Session<'_>, opts: &Opts) -> Result<(), String> {
    if let Some(path) = &opts.chrome_out {
        std::fs::write(path, session.chrome_trace())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "wrote Chrome trace ({} event(s)) to {path} — open in chrome://tracing or ui.perfetto.dev",
            session.events().len() + 1
        );
    }
    if let Some(path) = &opts.prom_out {
        std::fs::write(path, session.prometheus())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote Prometheus exposition to {path}");
    }
    Ok(())
}

/// Returns Ok(true) when the analysis found no refutation.
fn dispatch(args: &[String]) -> Result<bool, String> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| "missing subcommand".to_string())?;
    if cmd == "bench" {
        return run_bench_report(rest);
    }
    if cmd == "serve" {
        return run_serve(rest);
    }
    if cmd == "lsp" {
        if let Some(extra) = rest.first() {
            return Err(format!("`csp lsp` takes no arguments, got `{extra}`"));
        }
        return csp_lsp::serve_stdio().map_err(|e| format!("lsp transport failure: {e}"));
    }
    let opts = parse_opts(rest, cmd == "lint" || cmd == "validate")?;
    if cmd == "lint" || cmd == "validate" {
        if cmd == "validate" {
            eprintln!("warning: `csp validate` is deprecated; use `csp lint`");
        }
        return run_lint(&opts, cmd);
    }
    if cmd == "profile" {
        return run_profile(&opts);
    }
    let wb = build_workbench(&opts)?;
    match cmd.as_str() {
        "traces" => {
            let name = need_process(&opts)?;
            let traces = wb.traces(name, opts.depth).map_err(|e| e.to_string())?;
            println!(
                "{} traces of `{name}` to depth {} ({} maximal):",
                traces.len(),
                opts.depth,
                traces.maximal_traces().len()
            );
            for t in traces.maximal_traces().iter().take(20) {
                println!("  {t}");
            }
            Ok(true)
        }
        "check" => {
            let name = need_process(&opts)?;
            let assertion = opts
                .assertion
                .as_deref()
                .ok_or_else(|| "--assert EXPR is required".to_string())?;
            let session = observed_session(&wb, &opts);
            let verdict = session
                .check_sat(
                    name,
                    assertion,
                    SatOptions::from(opts.depth).with_engine(opts.engine),
                )
                .map_err(|e| e.to_string())?;
            let clean = match &verdict {
                SatResult::Holds {
                    traces_checked,
                    depth,
                    engine,
                } => {
                    if opts.json {
                        let mut data = format!(
                            "{{\"process\":{name:?},\"assertion\":{assertion:?},\
                             \"holds\":true,\"traces_checked\":{traces_checked},\
                             \"depth\":{depth},\"engine\":{:?}",
                            engine.as_str()
                        );
                        append_metrics(&mut data, &session, &opts);
                        data.push('}');
                        println!("{}", envelope("check", &data));
                    } else {
                        println!(
                            "holds: {name} sat {assertion} on {traces_checked} traces \
                             (depth {depth}, engine {engine})"
                        );
                    }
                    true
                }
                SatResult::Counterexample { trace, engine } => {
                    if opts.json {
                        let mut data = format!(
                            "{{\"process\":{name:?},\"assertion\":{assertion:?},\
                             \"holds\":false,\"counterexample\":{:?},\"engine\":{:?}",
                            trace.to_string(),
                            engine.as_str()
                        );
                        append_metrics(&mut data, &session, &opts);
                        data.push('}');
                        println!("{}", envelope("check", &data));
                    } else {
                        println!("REFUTED: {name} sat {assertion} (engine {engine})");
                        println!("counterexample: {trace}");
                        print!("{}", timeline(trace));
                    }
                    false
                }
            };
            finish_observation(&session, &opts)?;
            Ok(clean)
        }
        "prove" => {
            if opts.specs.is_empty() {
                return Err("at least one --spec NAME=EXPR is required".to_string());
            }
            let specs: Vec<(&str, &str)> = opts
                .specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_str()))
                .collect();
            let session = observed_session(&wb, &opts);
            // The proof checker itself is symbolic — the engine matters
            // only to the model-checking cross-validation — but the
            // envelope still reports what the selection resolves to for
            // the first spec's process, so callers see one consistent
            // `"engine"` member across check and prove.
            let resolved = opts
                .engine
                .resolve(wb.definitions(), &Process::call(specs[0].0));
            let clean = match session.prove_auto(&specs) {
                Ok(report) => {
                    let title = format!("proof: {} sat {}", specs[0].0, specs[0].1);
                    if opts.json {
                        let spec_json: Vec<String> = specs
                            .iter()
                            .map(|(n, a)| format!("{{\"name\":{n:?},\"assertion\":{a:?}}}"))
                            .collect();
                        let mut data = format!(
                            "{{\"specs\":[{}],\"proved\":true,\"engine\":{:?},\"report\":{}",
                            spec_json.join(","),
                            resolved.as_str(),
                            csp::obs::json_string(&render_report(&title, &report))
                        );
                        append_metrics(&mut data, &session, &opts);
                        data.push('}');
                        println!("{}", envelope("prove", &data));
                    } else {
                        println!("{}", render_report(&title, &report));
                    }
                    true
                }
                Err(e) => {
                    if opts.json {
                        let spec_json: Vec<String> = specs
                            .iter()
                            .map(|(n, a)| format!("{{\"name\":{n:?},\"assertion\":{a:?}}}"))
                            .collect();
                        let mut data = format!(
                            "{{\"specs\":[{}],\"proved\":false,\"engine\":{:?},\"error\":{}",
                            spec_json.join(","),
                            resolved.as_str(),
                            csp::obs::json_string(&e.to_string())
                        );
                        append_metrics(&mut data, &session, &opts);
                        data.push('}');
                        println!("{}", envelope("prove", &data));
                    } else {
                        println!("proof failed: {e}");
                    }
                    false
                }
            };
            finish_observation(&session, &opts)?;
            Ok(clean)
        }
        "run" => {
            let name = need_process(&opts)?;
            let faults = match &opts.fault_plan {
                Some(spec) => FaultPlan::parse(spec).map_err(|e| e.to_string())?,
                None => FaultPlan::none(),
            };
            let mut supervision = Supervision::default();
            if let Some(ms) = opts.deadline_ms {
                supervision = supervision.with_deadline(std::time::Duration::from_millis(ms));
            }
            supervision = supervision.with_livelock_window(opts.livelock_window);
            // `--monitor` alone checks online trace-membership; each
            // `--monitor=ASSERT` additionally checks a `sat` assertion
            // on every visible prefix as the run executes.
            let monitor = if opts.monitor {
                Some(
                    wb.monitor_spec(opts.monitor_asserts.iter().map(String::as_str))
                        .map_err(|e| e.to_string())?,
                )
            } else {
                None
            };
            let session = observed_session(&wb, &opts);
            let watch = opts.watch.map(|interval_ms| {
                let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let collector = session.collector().clone();
                let flag = std::sync::Arc::clone(&stop);
                let handle = std::thread::spawn(move || watch_loop(&collector, interval_ms, &flag));
                (stop, handle)
            });
            let res = session.run(
                name,
                RunOptions {
                    max_steps: opts.steps,
                    scheduler: Scheduler::seeded(opts.seed),
                    faults,
                    supervision,
                    monitor,
                    ..RunOptions::default()
                },
            );
            if let Some((stop, handle)) = watch {
                stop.store(true, Relaxed);
                let _ = handle.join();
            }
            let res = res.map_err(|e| e.to_string())?;
            if let Some(path) = &opts.msc_out {
                std::fs::write(path, csp::msc::render_mermaid(&res.causal))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote MSC ({} causal event(s)) to {path}", res.causal.len());
            }
            if let Some(path) = &opts.causal_out {
                std::fs::write(path, res.causal.to_jsonl())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "wrote causal log ({} event(s), {} dropped) to {path}",
                    res.causal.len(),
                    res.causal.dropped()
                );
            }
            let monitor_ok = res
                .monitor
                .as_ref()
                .is_none_or(MonitorReport::is_conforming);
            if opts.json {
                let failures: Vec<String> = res
                    .failures
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"label\":{},\"reason\":{},\"at_step\":{},\"recovered\":{}}}",
                            csp::obs::json_string(&f.label),
                            csp::obs::json_string(&f.reason.to_string()),
                            f.at_step,
                            f.recovered,
                        )
                    })
                    .collect();
                let mut data = format!(
                    "{{\"process\":{},\"steps\":{},\"outcome\":{},\"clean\":{},\
                     \"visible\":{},\"failures\":[{}],\"supervision\":{},\"monitor\":{}",
                    csp::obs::json_string(name),
                    res.steps,
                    csp::obs::json_string(&res.outcome.to_string()),
                    res.outcome.is_clean(),
                    csp::obs::json_string(&res.visible.to_string()),
                    failures.join(","),
                    csp::serve::render_supervision(&res),
                    csp::serve::render_monitor(&res),
                );
                append_metrics(&mut data, &session, &opts);
                data.push('}');
                println!("{}", envelope("run", &data));
            } else {
                println!("{} event(s); outcome: {}", res.steps, res.outcome);
                for f in &res.failures {
                    println!(
                        "  fault: `{}` {} at step {}{}",
                        f.label,
                        f.reason,
                        f.at_step,
                        if f.recovered { " (recovered)" } else { "" }
                    );
                }
                println!("visible trace:");
                println!("  {}", res.visible);
                print!("{}", timeline(&res.visible));
                if let Some(m) = &res.monitor {
                    println!(
                        "monitor: {} ({} event(s) checked)",
                        m.verdict, m.events_checked
                    );
                    if let Some(v) = &m.violation {
                        println!("  {v}");
                    }
                    if let Some(e) = &m.error {
                        println!("  monitor aborted: {e}");
                    }
                }
            }
            finish_observation(&session, &opts)?;
            Ok(res.outcome.is_clean() && monitor_ok)
        }
        "deadlock" => {
            let name = need_process(&opts)?;
            let report = wb
                .deadlocks(name, SatOptions::from(opts.depth).with_engine(opts.engine))
                .map_err(|e| e.to_string())?;
            println!(
                "explored {} state(s) to depth {}",
                report.states_explored, opts.depth
            );
            if report.deadlocks.is_empty() {
                println!("no dead states reachable within the bound");
                return Ok(true);
            }
            for d in &report.deadlocks {
                println!(
                    "  {} after {} at `{}`",
                    if d.terminated {
                        "terminates"
                    } else {
                        "DEADLOCK"
                    },
                    d.trace,
                    d.state
                );
            }
            Ok(report.deadlock_free())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Opens a session over the workbench; the collector is active only
/// when something will consume it (`--trace-out`/`--metrics`), so the
/// default path stays on the disabled fast path.
fn observed_session<'wb>(wb: &'wb Workbench, opts: &Opts) -> Session<'wb> {
    if opts.trace_out.is_some()
        || opts.chrome_out.is_some()
        || opts.prom_out.is_some()
        || opts.watch.is_some()
        || opts.metrics
    {
        wb.session()
    } else {
        wb.session_with(Collector::disabled())
    }
}

/// Total committed events summed over the executor's live per-channel
/// throughput counters (`run.chan.<name>.events`). The `--watch`
/// events/s column derives from these rather than `run.steps`, so the
/// rate agrees with the per-channel breakdown in `/metrics`.
fn chan_events_total(m: &MetricsSnapshot) -> u64 {
    chan_event_counters(m).map(|(_, v)| v).sum()
}

/// The channel with the most committed events so far, if any.
fn busiest_channel(m: &MetricsSnapshot) -> Option<(&str, u64)> {
    // max_by_key keeps the *last* maximum; alphabetical iteration order
    // therefore breaks ties toward the later channel name, stably.
    chan_event_counters(m).max_by_key(|&(_, v)| v)
}

fn chan_event_counters(m: &MetricsSnapshot) -> impl Iterator<Item = (&str, u64)> {
    m.counters.iter().filter_map(|(k, v)| {
        let name = k.strip_prefix("run.chan.")?.strip_suffix(".events")?;
        Some((name, *v))
    })
}

/// One line of `csp run --watch` output, rendered from a live counter
/// snapshot taken while the executor is still running.
fn watch_status(m: &MetricsSnapshot, dropped: u64, events_per_s: f64) -> String {
    let components = m.counter("run.components");
    let deaths = m.counter("run.deaths");
    let restarts = m.counter("run.restarts");
    let live = components.saturating_sub(deaths.saturating_sub(restarts));
    let busiest = match busiest_channel(m) {
        Some((name, n)) if n > 0 => format!(" | busiest {name} ({n} ev)"),
        _ => String::new(),
    };
    format!(
        "watch: round {} | picks {} | components {live}/{components} live \
         ({deaths} dead, {restarts} restarted) | {events_per_s:.0} events/s{busiest} | dropped {}",
        m.counter("run.rounds"),
        m.counter("run.scheduler_picks"),
        dropped,
    )
}

/// The `--watch` sampler thread: periodically snapshots the executor's
/// collector and repaints one status line on stderr (`\r` + erase when
/// stderr is a terminal, one plain line per sample otherwise). Always
/// emits at least an initial and a final sample, so short runs still
/// leave a record; the final sample is taken after `stop` is raised and
/// ends with a newline.
fn watch_loop(collector: &Collector, interval_ms: u64, stop: &std::sync::atomic::AtomicBool) {
    use std::io::{IsTerminal, Write};
    // Repaint with ANSI only when stderr (where the line goes — stdout
    // may be piped JSON) is an interactive terminal that wants escapes:
    // NO_COLOR and TERM=dumb both demote to plain one-line-per-sample
    // output, so CI logs never fill with carriage returns.
    let ansi = std::io::stderr().is_terminal()
        && std::env::var_os("NO_COLOR").is_none()
        && std::env::var("TERM").map_or(true, |t| t != "dumb");
    let mut last_steps = 0u64;
    let mut last_t = Instant::now();
    loop {
        let done = stop.load(Relaxed);
        let m = collector.snapshot();
        // Throughput from the causal layer's per-channel counters (their
        // sum equals run.steps: hidden events count on both sides).
        let steps = chan_events_total(&m);
        let now = Instant::now();
        let dt = now.duration_since(last_t).as_secs_f64();
        let rate = if dt > 1e-9 {
            (steps.saturating_sub(last_steps)) as f64 / dt
        } else {
            0.0
        };
        last_steps = steps;
        last_t = now;
        let line = watch_status(&m, collector.dropped(), rate);
        let mut err = std::io::stderr().lock();
        if ansi {
            let _ = write!(err, "\r\x1b[2K{line}");
            if done {
                let _ = writeln!(err);
            }
            let _ = err.flush();
        } else {
            let _ = writeln!(err, "{line}");
        }
        drop(err);
        if done {
            return;
        }
        // Sleep in small slices so shutdown never waits a full interval.
        let mut slept = 0;
        while slept < interval_ms && !stop.load(Relaxed) {
            let chunk = (interval_ms - slept).min(25);
            std::thread::sleep(std::time::Duration::from_millis(chunk));
            slept += chunk;
        }
    }
}

/// Appends `,"metrics":{…}` to a JSON object body under `--metrics`.
fn append_metrics(data: &mut String, session: &Session<'_>, opts: &Opts) {
    if opts.metrics {
        data.push_str(",\"metrics\":");
        data.push_str(&session.metrics().to_json());
    }
}

/// Lints every file in `opts.files`; returns Ok(true) when nothing
/// blocking was found (no errors, and no warnings under `--deny`).
/// `command` is `lint` or its deprecated alias `validate` — the envelope
/// reports whichever was invoked.
fn run_lint(opts: &Opts, command: &str) -> Result<bool, String> {
    let mut worst: Option<Severity> = None;
    let mut json_files = Vec::new();
    let mut all_diags: Vec<Diagnostic> = Vec::new();
    for file in &opts.files {
        let (wb, errors) = build_workbench_lenient(opts, file)?;
        let mut diags = wb.lint();
        if let (Some(name), Some(assert_src)) = (opts.process.as_deref(), opts.assertion.as_deref())
        {
            diags.extend(
                wb.lint_assertion(name, assert_src)
                    .map_err(|e| e.to_string())?,
            );
        }
        if opts.json {
            json_files.push(format!(
                "{{\"file\":{file:?},\"errors\":{},\"diagnostics\":{}}}",
                render_parse_errors_json(&errors),
                render_json(&diags)
            ));
        } else {
            for e in &errors {
                println!("{file}: error [parse] at {}: {}", e.span(), e.message());
            }
            if errors.is_empty() && diags.is_empty() {
                println!("{file}: ok ({} definition(s))", wb.definitions().len());
            }
            for d in &diags {
                println!("{file}: {d}");
            }
        }
        if !errors.is_empty() {
            worst = worst.max(Some(Severity::Error));
        }
        worst = worst.max(max_severity(&diags));
        all_diags.extend(diags);
    }
    if opts.json {
        let mut data = format!("{{\"files\":[{}]", json_files.join(","));
        if opts.metrics {
            let mut m = MetricsSnapshot::new();
            m.set_counter("lint.files", opts.files.len() as u64);
            m.set_counter("lint.diagnostics", all_diags.len() as u64);
            data.push_str(",\"metrics\":");
            data.push_str(&m.to_json());
        }
        data.push('}');
        println!("{}", envelope(command, &data));
    } else if opts.metrics {
        let mut m = MetricsSnapshot::new();
        m.set_counter("lint.files", opts.files.len() as u64);
        m.set_counter("lint.diagnostics", all_diags.len() as u64);
        print!("{}", m.render_table());
    }
    if let Some(path) = &opts.trace_out {
        // Lint is a pure static analysis — there are no spans to write,
        // but an explicitly requested log should still appear.
        std::fs::write(path, "").map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(match worst {
        Some(Severity::Error) => false,
        Some(Severity::Warning) => !opts.deny_warnings,
        None => true,
    })
}

/// Renders recovered parse errors as a JSON array, span fields flattened
/// exactly like [`Diagnostic::to_json`] renders lint spans.
fn render_parse_errors_json(errors: &[ParseError]) -> String {
    let items: Vec<String> = errors
        .iter()
        .map(|e| {
            let sp = e.span();
            format!(
                "{{\"message\":{},\"line\":{},\"column\":{},\"offset\":{},\"len\":{}}}",
                csp::obs::json_string(e.message()),
                sp.line,
                sp.column,
                sp.offset,
                sp.len
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// One timed phase of `csp profile`.
struct Phase {
    name: &'static str,
    ms: f64,
    alloc_bytes: u64,
    error: Option<String>,
}

/// Runs a closure as a named profile phase, measuring wall time and
/// allocation volume (via the counting global allocator).
fn phase<T>(
    name: &'static str,
    phases: &mut Vec<Phase>,
    f: impl FnOnce() -> Result<T, String>,
) -> Option<T> {
    let alloc0 = ALLOCATED_BYTES.load(Relaxed);
    let t0 = Instant::now();
    let result = f();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let alloc_bytes = ALLOCATED_BYTES.load(Relaxed).saturating_sub(alloc0);
    match result {
        Ok(v) => {
            phases.push(Phase {
                name,
                ms,
                alloc_bytes,
                error: None,
            });
            Some(v)
        }
        Err(e) => {
            phases.push(Phase {
                name,
                ms,
                alloc_bytes,
                error: Some(e),
            });
            None
        }
    }
}

/// `csp profile`: runs the parse → fixpoint → verify pipeline under an
/// active collector and reports a per-phase wall-time/allocation table,
/// the aggregated span/counter metrics, and a folded-stacks file.
///
/// The verify phase model-checks `--process`/`--assert` when given and
/// otherwise explores every definition's traces to `--depth`, so the
/// command works on any parseable file without further flags.
fn run_profile(opts: &Opts) -> Result<bool, String> {
    let mut phases: Vec<Phase> = Vec::new();
    let wb = match phase("parse", &mut phases, || build_workbench(opts)) {
        Some(wb) => wb,
        None => {
            report_profile(opts, &phases, None)?;
            return Ok(false);
        }
    };
    let session = wb.session();
    phase("fixpoint", &mut phases, || {
        session
            .fixpoint(opts.depth, 32)
            .map_err(|e| e.to_string())
            .map(|_| ())
    });
    phase("verify", &mut phases, || {
        if let (Some(name), Some(assertion)) = (opts.process.as_deref(), opts.assertion.as_deref())
        {
            session
                .check_sat(
                    name,
                    assertion,
                    SatOptions::from(opts.depth).with_engine(opts.engine),
                )
                .map_err(|e| e.to_string())
                .map(|_| ())
        } else {
            // Array equations (`q[i:M] = …`) need a subscript to become
            // a process, so the flag-less sweep covers plain ones only.
            let names: Vec<String> = wb
                .definitions()
                .iter()
                .filter(|d| d.param().is_none())
                .map(|d| d.name().to_string())
                .collect();
            for name in names {
                wb.traces(&name, opts.depth).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
    });
    report_profile(opts, &phases, Some(&session))?;
    Ok(phases.iter().all(|p| p.error.is_none()))
}

/// Renders `csp profile` output (table or envelope) and writes the
/// folded-stacks file.
fn report_profile(
    opts: &Opts,
    phases: &[Phase],
    session: Option<&Session<'_>>,
) -> Result<(), String> {
    let folded_path = opts.folded_out.clone().unwrap_or_else(|| {
        let stem = std::path::Path::new(&opts.file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "profile".to_string());
        format!("{stem}.folded")
    });
    let metrics = session.map(Session::metrics);
    if let Some(session) = session {
        std::fs::write(&folded_path, session.folded_stacks())
            .map_err(|e| format!("cannot write {folded_path}: {e}"))?;
        if let Some(path) = &opts.trace_out {
            let mut f =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            session
                .write_trace_jsonl(&mut f)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        write_exports(session, opts)?;
    }
    let noise_ns = (opts.noise_ms.max(0.0) * 1e6) as u64;
    let diff = match (&opts.diff, &metrics) {
        (Some(path), Some(m)) => {
            let baseline = load_baseline_metrics(path)?;
            Some((path.clone(), m.delta(&baseline)))
        }
        _ => None,
    };
    if opts.json {
        let phases_json: Vec<String> = phases
            .iter()
            .map(|p| {
                let mut o = format!(
                    "{{\"name\":{:?},\"ms\":{:.3},\"alloc_bytes\":{}",
                    p.name, p.ms, p.alloc_bytes
                );
                if let Some(e) = &p.error {
                    o.push_str(&format!(",\"error\":{e:?}"));
                }
                o.push('}');
                o
            })
            .collect();
        let mut data = format!(
            "{{\"file\":{:?},\"phases\":[{}],\"folded_out\":{:?}",
            opts.file,
            phases_json.join(","),
            folded_path
        );
        if let Some(m) = &metrics {
            data.push_str(",\"metrics\":");
            data.push_str(&m.to_json());
        }
        if let Some((base_path, delta)) = &diff {
            data.push_str(&format!(
                ",\"diff\":{{\"baseline\":{},\"noise_ms\":{:.3},\"noise\":{},\"table\":{}}}",
                csp::obs::json_string(base_path),
                opts.noise_ms,
                delta.is_noise(noise_ns),
                csp::obs::json_string(&delta.render_table(noise_ns)),
            ));
        }
        data.push('}');
        println!("{}", envelope("profile", &data));
        return Ok(());
    }
    println!("profile: {}", opts.file);
    println!("{:<12} {:>12} {:>14}", "phase", "time ms", "alloc bytes");
    for p in phases {
        println!("{:<12} {:>12.3} {:>14}", p.name, p.ms, p.alloc_bytes);
        if let Some(e) = &p.error {
            println!("  phase failed: {e}");
        }
    }
    if let Some(m) = &metrics {
        print!("{}", m.render_table());
    }
    if let Some((base_path, delta)) = &diff {
        println!("diff vs {base_path} (noise {:.1} ms):", opts.noise_ms);
        print!("{}", delta.render_table(noise_ns));
    }
    if session.is_some() {
        println!("folded stacks: {folded_path}");
    }
    Ok(())
}

/// Loads the baseline [`MetricsSnapshot`] for `csp profile --diff`.
/// Accepts either a full `csp profile --json` envelope (the metrics are
/// found under `data.metrics`) or a bare metrics-snapshot object.
fn load_baseline_metrics(path: &str) -> Result<MetricsSnapshot, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = parse_json(src.trim())
        .map_err(|e| format!("{path}: bad JSON at offset {}: {}", e.offset, e.message))?;
    let metrics = find_metrics(&v).ok_or_else(|| {
        format!(
            "{path}: no metrics object found \
             (expected `csp profile --json` output or a bare metrics snapshot)"
        )
    })?;
    MetricsSnapshot::from_json_value(metrics).map_err(|e| format!("{path}: {}", e.message))
}

/// Finds the metrics-snapshot object inside a baseline document: the
/// value itself, its `metrics` member, or the same one level down under
/// the envelope's `data`.
fn find_metrics(v: &JsonValue) -> Option<&JsonValue> {
    if v.get("counters").is_some() {
        return Some(v);
    }
    if let Some(m) = v.get("metrics") {
        return Some(m);
    }
    v.get("data").and_then(find_metrics)
}

/// `csp serve`: binds the persistent verification service and runs its
/// accept loop on this thread until killed. The listening line goes to
/// *stdout* (machine-parseable, resolves `--addr`'s port 0); everything
/// operational is observable over `/metrics` and `/v1/trace` instead of
/// the process's stderr.
fn run_serve(args: &[String]) -> Result<bool, String> {
    let mut cfg = csp::serve::ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse::<usize>()
                    .map_err(|_| "--workers expects a number".to_string())?
                    .max(1);
            }
            "--cache-cap" => {
                cfg.cache_cap = value("--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap expects a number".to_string())?;
            }
            other => return Err(format!("unknown option `{other}` for `csp serve`")),
        }
    }
    let server =
        csp::serve::CspServer::bind(&cfg).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    {
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        writeln!(
            out,
            "csp serve: listening on http://{addr} (workers {}, cache-cap {})",
            cfg.workers, cfg.cache_cap
        )
        .map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }
    server.run().map_err(|e| format!("server failed: {e}"))?;
    Ok(true)
}

/// `csp bench report`: renders the run-over-run trajectory appended to
/// `BENCH_history.jsonl` by `bench-json --history` — one line per
/// recorded run, plus a first→last comparison per benchmark.
fn run_bench_report(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("report") => {}
        Some(other) => return Err(format!("unknown bench subcommand `{other}` (try `report`)")),
        None => return Err("bench expects a subcommand: `csp bench report`".to_string()),
    }
    let mut history = "BENCH_history.jsonl".to_string();
    let mut engine_filter: Option<Engine> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--history" => {
                history = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--history requires a value".to_string())?;
            }
            "--engine" => {
                engine_filter = Some(
                    it.next()
                        .ok_or_else(|| "--engine requires a value".to_string())?
                        .parse()?,
                );
            }
            other => return Err(format!("unknown option `{other}` for `bench report`")),
        }
    }
    struct Row {
        unix_ms: u64,
        samples: u64,
        total_wall_ms: f64,
        benches: Vec<(String, f64)>,
        engines: Vec<(String, String)>,
    }
    let src =
        std::fs::read_to_string(&history).map_err(|e| format!("cannot read {history}: {e}"))?;
    let mut rows: Vec<Row> = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |msg: String| format!("{history}:{}: {msg}", i + 1);
        let v = parse_json(line).map_err(|e| bad(e.message.clone()))?;
        if v.get("schema").and_then(JsonValue::as_str) != Some("csp-bench-history/v1") {
            return Err(bad("not a csp-bench-history/v1 row".to_string()));
        }
        let benches = v
            .get("benches")
            .and_then(JsonValue::entries)
            .ok_or_else(|| bad("missing benches map".to_string()))?
            .iter()
            .filter_map(|(name, ms)| ms.as_f64().map(|ms| (name.clone(), ms)))
            .collect();
        // Rows written before the engine split have no engines map.
        let engines = v
            .get("engines")
            .and_then(JsonValue::entries)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(name, e)| e.as_str().map(|e| (name.clone(), e.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        rows.push(Row {
            unix_ms: v.get("unix_ms").and_then(JsonValue::as_u64).unwrap_or(0),
            samples: v.get("samples").and_then(JsonValue::as_u64).unwrap_or(0),
            total_wall_ms: v
                .get("total_wall_ms")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            benches,
            engines,
        });
    }
    if rows.is_empty() {
        println!("bench history: {history} — no runs recorded");
        return Ok(true);
    }
    println!("bench history: {history} — {} run(s)", rows.len());
    println!(
        "{:>4} {:>15} {:>8} {:>12} {:>8}",
        "run", "unix_ms", "samples", "total ms", "Δ"
    );
    let mut prev: Option<f64> = None;
    for (i, r) in rows.iter().enumerate() {
        let delta = match prev {
            Some(p) if p > 0.0 => format!("{:+.1}%", (r.total_wall_ms - p) / p * 100.0),
            _ => "—".to_string(),
        };
        println!(
            "{:>4} {:>15} {:>8} {:>12.3} {:>8}",
            format!("#{}", i + 1),
            r.unix_ms,
            r.samples,
            r.total_wall_ms,
            delta
        );
        prev = Some(r.total_wall_ms);
    }
    let (first, last) = (&rows[0], &rows[rows.len() - 1]);
    if rows.len() > 1 {
        match &engine_filter {
            Some(e) => println!("per-bench (first → last, engine {e}):"),
            None => println!("per-bench (first → last):"),
        }
        let mut shown = 0usize;
        for (name, new_ms) in &last.benches {
            let engine = last
                .engines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.as_str());
            if let Some(want) = &engine_filter {
                // Only benches recorded on the requested engine; rows
                // written before the engine split never match.
                if engine != Some(want.as_str()) {
                    continue;
                }
            }
            shown += 1;
            let tag = engine.map(|e| format!("  [{e}]")).unwrap_or_default();
            let old = first
                .benches
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, ms)| *ms);
            match old {
                Some(old_ms) if old_ms > 0.0 => println!(
                    "  {name:<28} {old_ms:>10.3} → {new_ms:>10.3} ms  {:+.1}%{tag}",
                    (new_ms - old_ms) / old_ms * 100.0
                ),
                _ => println!("  {name:<28} {:>10} → {new_ms:>10.3} ms  (new){tag}", "—"),
            }
        }
        if let Some(e) = &engine_filter {
            if shown == 0 {
                println!("  no benches recorded on engine {e}");
            }
        }
    }
    Ok(true)
}
