//! `csp` — command-line driver for the hoare-csp reproduction.
//!
//! ```text
//! csp lint      <file.csp> [more.csp ...] [--json] [--deny warnings]
//! csp validate  <file.csp> [--json]
//! csp traces    <file.csp> --process NAME [--depth N] [--nat-bound K]
//! csp check     <file.csp> --process NAME --assert EXPR [--depth N]
//! csp prove     <file.csp> --spec NAME=EXPR [--spec NAME=EXPR ...]
//! csp run       <file.csp> --process NAME [--steps N] [--seed S]
//!               [--fault-plan SPEC] [--deadline-ms T] [--livelock-window W]
//! csp deadlock  <file.csp> --process NAME [--depth N]
//! ```
//!
//! Common options: `--nat-bound K` (finite carrier for NAT, default 2),
//! `--set M=v1,v2,…` (interpret a named abstract set), `--bind v=1,2,3`
//! (host constant vector, cells `v[1]…`), `--channels a,b` (declare
//! assertion-only channels).
//!
//! Fault plans use the [`FaultPlan::parse`] syntax, e.g.
//! `--fault-plan 'crash:copier@4;restart:replay'` or
//! `--fault-plan 'stall:2@3x5;starve:0'`.
//!
//! Exit status: 0 on success; 1 when the requested analysis found a
//! refutation (counterexample, deadlock, failed proof, lint error — or
//! any lint warning under `--deny warnings`); 2 on usage or input
//! errors.

use std::process::ExitCode;

use csp::prelude::*;
use csp::{max_severity, render_json, render_report, timeline, LintCode, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  csp lint      <file.csp> [more.csp ...] [--json] [--deny warnings]
                [--process NAME --assert EXPR]
  csp validate  <file.csp> [--json]
  csp traces    <file.csp> --process NAME [--depth N]
  csp check     <file.csp> --process NAME --assert EXPR [--depth N]
  csp prove     <file.csp> --spec NAME=EXPR [--spec NAME=EXPR ...]
  csp run       <file.csp> --process NAME [--steps N] [--seed S]
                [--fault-plan SPEC] [--deadline-ms T] [--livelock-window W]
  csp deadlock  <file.csp> --process NAME [--depth N]
options:
  --json               machine-readable diagnostics (lint/validate)
  --deny warnings      treat lint warnings as errors (exit 1)
  --nat-bound K        finite carrier for NAT (default 2)
  --set M=v1,v2        interpretation for a named abstract set
  --bind v=1,2,3       host constant vector (cells v[1], v[2], …)
  --channels a,b       declare assertion-only channel names
  --fault-plan SPEC    inject faults into `run`: ;-separated clauses
                       crash:COMP@STEP  stall:COMP@STEPxROUNDS
                       delay:COMP@STEPxROUNDS  starve:COMP
                       restart:failstop|replay|reset
  --deadline-ms T      wall-clock budget for `run` (watchdog)
  --livelock-window W  stop `run` after W consecutive concealed events";

/// Parsed command-line options shared by all subcommands.
struct Opts {
    file: String,
    files: Vec<String>,
    json: bool,
    deny_warnings: bool,
    process: Option<String>,
    assertion: Option<String>,
    specs: Vec<(String, String)>,
    depth: usize,
    steps: usize,
    seed: u64,
    fault_plan: Option<String>,
    deadline_ms: Option<u64>,
    livelock_window: usize,
    nat_bound: u32,
    sets: Vec<(String, Vec<Value>)>,
    binds: Vec<(String, Vec<i64>)>,
    channels: Vec<String>,
}

fn parse_opts(args: &[String], multi_file: bool) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        files: Vec::new(),
        json: false,
        deny_warnings: false,
        process: None,
        assertion: None,
        specs: Vec::new(),
        depth: 4,
        steps: 32,
        seed: 0,
        fault_plan: None,
        deadline_ms: None,
        livelock_window: 0,
        nat_bound: 2,
        sets: Vec::new(),
        binds: Vec::new(),
        channels: Vec::new(),
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => {
                let v = value("--deny")?;
                if v != "warnings" {
                    return Err(format!("--deny expects `warnings`, got `{v}`"));
                }
                opts.deny_warnings = true;
            }
            "--process" => opts.process = Some(value("--process")?),
            "--assert" => opts.assertion = Some(value("--assert")?),
            "--spec" => {
                let v = value("--spec")?;
                let (name, inv) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--spec expects NAME=EXPR, got `{v}`"))?;
                opts.specs
                    .push((name.trim().to_string(), inv.trim().to_string()));
            }
            "--depth" => {
                opts.depth = value("--depth")?
                    .parse()
                    .map_err(|_| "--depth expects a number".to_string())?;
            }
            "--steps" => {
                opts.steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects a number".to_string())?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--fault-plan" => opts.fault_plan = Some(value("--fault-plan")?),
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms expects a number".to_string())?,
                );
            }
            "--livelock-window" => {
                opts.livelock_window = value("--livelock-window")?
                    .parse()
                    .map_err(|_| "--livelock-window expects a number".to_string())?;
            }
            "--nat-bound" => {
                opts.nat_bound = value("--nat-bound")?
                    .parse()
                    .map_err(|_| "--nat-bound expects a number".to_string())?;
            }
            "--set" => {
                let v = value("--set")?;
                let (name, vals) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects NAME=v1,v2, got `{v}`"))?;
                let parsed = vals
                    .split(',')
                    .map(parse_value)
                    .collect::<Result<Vec<_>, _>>()?;
                opts.sets.push((name.trim().to_string(), parsed));
            }
            "--bind" => {
                let v = value("--bind")?;
                let (name, vals) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects NAME=1,2,3, got `{v}`"))?;
                let parsed = vals
                    .split(',')
                    .map(|x| {
                        x.trim()
                            .parse::<i64>()
                            .map_err(|_| format!("bad integer `{x}` in --bind"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                opts.binds.push((name.trim().to_string(), parsed));
            }
            "--channels" => {
                let v = value("--channels")?;
                opts.channels
                    .extend(v.split(',').map(|c| c.trim().to_string()));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if multi_file {
        if positional.is_empty() {
            return Err("missing <file.csp>".to_string());
        }
        opts.file = positional[0].clone();
        opts.files = positional;
        return Ok(opts);
    }
    match positional.as_slice() {
        [file] => {
            opts.file = file.clone();
            opts.files = vec![file.clone()];
            Ok(opts)
        }
        [] => Err("missing <file.csp>".to_string()),
        more => Err(format!("unexpected arguments: {more:?}")),
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Ok(n) = s.parse::<i64>() {
        Ok(Value::Int(n))
    } else if s.chars().next().is_some_and(char::is_uppercase) {
        Ok(Value::sym(s))
    } else {
        Err(format!("bad value `{s}` (integers or Uppercase atoms)"))
    }
}

fn build_workbench(opts: &Opts) -> Result<Workbench, String> {
    build_workbench_for(opts, &opts.file)
}

fn build_workbench_for(opts: &Opts, file: &str) -> Result<Workbench, String> {
    let mut uni = Universe::new(opts.nat_bound);
    for (name, vals) in &opts.sets {
        uni = uni.with_named(name, vals.iter().cloned());
    }
    let mut wb = Workbench::new().with_universe(uni);
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    wb.define_source(&src).map_err(|e| e.to_string())?;
    for (name, vals) in &opts.binds {
        wb.bind_vector(name, vals);
    }
    if !opts.channels.is_empty() {
        wb.declare_channels(opts.channels.iter().map(String::as_str));
    }
    Ok(wb)
}

fn need_process(opts: &Opts) -> Result<&str, String> {
    opts.process
        .as_deref()
        .ok_or_else(|| "--process NAME is required".to_string())
}

/// Returns Ok(true) when the analysis found no refutation.
fn dispatch(args: &[String]) -> Result<bool, String> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| "missing subcommand".to_string())?;
    let opts = parse_opts(rest, cmd == "lint")?;
    if cmd == "lint" {
        return run_lint(&opts);
    }
    let wb = build_workbench(&opts)?;
    match cmd.as_str() {
        "validate" => {
            // The four classic validation issues are CSP001-CSP004 in
            // the lint framework; `--json` reports them in that shape.
            if opts.json {
                let diags: Vec<_> = wb
                    .lint()
                    .into_iter()
                    .filter(|d| {
                        matches!(
                            d.code,
                            LintCode::UndefinedProcess
                                | LintCode::ArityMismatch
                                | LintCode::UnboundVariable
                                | LintCode::UnguardedRecursion
                        )
                    })
                    .collect();
                println!("{}", render_json(&diags));
                return Ok(diags.is_empty());
            }
            #[allow(deprecated)]
            let issues = wb.validate();
            if issues.is_empty() {
                println!("ok: {} definition(s), no issues", wb.definitions().len());
                Ok(true)
            } else {
                for i in &issues {
                    println!("issue: {i}");
                }
                Ok(false)
            }
        }
        "traces" => {
            let name = need_process(&opts)?;
            let traces = wb.traces(name, opts.depth).map_err(|e| e.to_string())?;
            println!(
                "{} traces of `{name}` to depth {} ({} maximal):",
                traces.len(),
                opts.depth,
                traces.maximal_traces().len()
            );
            for t in traces.maximal_traces().iter().take(20) {
                println!("  {t}");
            }
            Ok(true)
        }
        "check" => {
            let name = need_process(&opts)?;
            let assertion = opts
                .assertion
                .as_deref()
                .ok_or_else(|| "--assert EXPR is required".to_string())?;
            match wb
                .check_sat(name, assertion, opts.depth)
                .map_err(|e| e.to_string())?
            {
                SatResult::Holds {
                    traces_checked,
                    depth,
                } => {
                    println!(
                        "holds: {name} sat {assertion} on {traces_checked} traces (depth {depth})"
                    );
                    Ok(true)
                }
                SatResult::Counterexample { trace } => {
                    println!("REFUTED: {name} sat {assertion}");
                    println!("counterexample: {trace}");
                    print!("{}", timeline(&trace));
                    Ok(false)
                }
            }
        }
        "prove" => {
            if opts.specs.is_empty() {
                return Err("at least one --spec NAME=EXPR is required".to_string());
            }
            let specs: Vec<(&str, &str)> = opts
                .specs
                .iter()
                .map(|(n, a)| (n.as_str(), a.as_str()))
                .collect();
            match wb.prove_auto(&specs) {
                Ok(report) => {
                    let title = format!("proof: {} sat {}", specs[0].0, specs[0].1);
                    println!("{}", render_report(&title, &report));
                    Ok(true)
                }
                Err(e) => {
                    println!("proof failed: {e}");
                    Ok(false)
                }
            }
        }
        "run" => {
            let name = need_process(&opts)?;
            let faults = match &opts.fault_plan {
                Some(spec) => FaultPlan::parse(spec).map_err(|e| e.to_string())?,
                None => FaultPlan::none(),
            };
            let mut supervision = Supervision::default();
            if let Some(ms) = opts.deadline_ms {
                supervision = supervision.with_deadline(std::time::Duration::from_millis(ms));
            }
            supervision = supervision.with_livelock_window(opts.livelock_window);
            let res = wb
                .run(
                    name,
                    RunOptions {
                        max_steps: opts.steps,
                        scheduler: Scheduler::seeded(opts.seed),
                        faults,
                        supervision,
                    },
                )
                .map_err(|e| e.to_string())?;
            println!("{} event(s); outcome: {}", res.steps, res.outcome);
            for f in &res.failures {
                println!(
                    "  fault: `{}` {} at step {}{}",
                    f.label,
                    f.reason,
                    f.at_step,
                    if f.recovered { " (recovered)" } else { "" }
                );
            }
            println!("visible trace:");
            println!("  {}", res.visible);
            print!("{}", timeline(&res.visible));
            Ok(res.outcome.is_clean())
        }
        "deadlock" => {
            let name = need_process(&opts)?;
            let report = wb.deadlocks(name, opts.depth).map_err(|e| e.to_string())?;
            println!(
                "explored {} state(s) to depth {}",
                report.states_explored, opts.depth
            );
            if report.deadlocks.is_empty() {
                println!("no dead states reachable within the bound");
                return Ok(true);
            }
            for d in &report.deadlocks {
                println!(
                    "  {} after {} at `{}`",
                    if d.terminated {
                        "terminates"
                    } else {
                        "DEADLOCK"
                    },
                    d.trace,
                    d.state
                );
            }
            Ok(report.deadlock_free())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Lints every file in `opts.files`; returns Ok(true) when nothing
/// blocking was found (no errors, and no warnings under `--deny`).
fn run_lint(opts: &Opts) -> Result<bool, String> {
    let mut worst: Option<Severity> = None;
    for file in &opts.files {
        let wb = build_workbench_for(opts, file)?;
        let mut diags = wb.lint();
        if let (Some(name), Some(assert_src)) = (opts.process.as_deref(), opts.assertion.as_deref())
        {
            diags.extend(
                wb.lint_assertion(name, assert_src)
                    .map_err(|e| e.to_string())?,
            );
        }
        if opts.json {
            println!(
                "{{\"file\":{file:?},\"diagnostics\":{}}}",
                render_json(&diags)
            );
        } else if diags.is_empty() {
            println!("{file}: ok ({} definition(s))", wb.definitions().len());
        } else {
            for d in &diags {
                println!("{file}: {d}");
            }
        }
        worst = worst.max(max_severity(&diags));
    }
    Ok(match worst {
        Some(Severity::Error) => false,
        Some(Severity::Warning) => !opts.deny_warnings,
        None => true,
    })
}
