//! Root facade crate: re-exports the full public API of [`csp_core`].
//!
//! See the `README.md` for a tour and `DESIGN.md` for the architecture.
//!
//! ```
//! use csp::prelude::*;
//!
//! let mut wb = Workbench::new();
//! wb.define_source("copier = input?x:NAT -> wire!x -> copier").unwrap();
//! let traces = wb.traces("copier", 4).unwrap();
//! assert!(traces.len() > 1);
//! ```

#![forbid(unsafe_code)]

pub use csp_core::*;

/// The persistent verification service (re-exported from `csp-serve`):
/// the HTTP server behind `csp serve`, its shared state, and the
/// minimal client the bench driver and tests use to talk to it.
pub mod serve {
    pub use csp_serve::*;
}
