//! Aggregated metrics: counters, fixed-bucket histograms, and per-span
//! timing stats, snapshotted into one owned, serialisable value.

use std::collections::BTreeMap;

/// Fixed histogram bucket upper bounds, in nanoseconds: 1µs … 1s in a
/// 1-5-10 ladder, plus an overflow bucket. Fixed boundaries keep
/// snapshots mergeable and diffable across runs without negotiation.
pub const BUCKET_BOUNDS_NS: [u64; 13] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// A histogram over [`BUCKET_BOUNDS_NS`] (one extra overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[i]` holds observations
    /// `<= BUCKET_BOUNDS_NS[i]`, the last bucket everything larger.
    pub counts: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); `u64::MAX` when it falls in the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Accumulated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Total (inclusive) nanoseconds across all of them.
    pub total_ns: u64,
    /// The longest single span.
    pub max_ns: u64,
}

/// One coherent, owned view of everything a [`Collector`](crate::Collector)
/// (or a subsystem's internal tallies) accumulated: counters, histograms,
/// and per-span-name stats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span-name timing aggregates.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a counter (builder-style, for subsystems that tally
    /// locally instead of through a collector).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.insert(name.into(), value);
        self
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) -> &mut Self {
        *self.counters.entry(name.into()).or_insert(0) += delta;
        self
    }

    /// Merges another snapshot into this one: counters and histograms
    /// add, span stats combine (counts/totals add, maxes max).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_default();
            e.count += s.count;
            e.total_ns += s.total_ns;
            e.max_ns = e.max_ns.max(s.max_ns);
        }
    }

    /// Renders the snapshot as a compact JSON object (no external
    /// dependencies; keys sorted, stable across runs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"histograms\":{");
        push_map(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"counts\":[{}]}}",
                h.count,
                h.sum,
                h.counts
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        });
        out.push_str("},\"spans\":{");
        push_map(&mut out, &self.spans, |out, s| {
            out.push_str(&format!(
                "{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.max_ns
            ));
        });
        out.push_str("}}");
        out
    }

    /// Renders a human-readable table of counters and span timings.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>12} {:>12}\n",
                "span", "count", "total ms", "max ms"
            ));
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>12.3} {:>12.3}\n",
                    name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e6,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<32} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<32} {v:>12}\n"));
            }
        }
        out
    }
}

fn push_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::jsonl::json_string(k));
        out.push(':');
        render(out, v);
    }
}

/// Uniform access to the metrics a result type carries — implemented by
/// `FixpointRun`, `CheckReport`, and `RunResult` so callers can ask any
/// of them "what did that cost?" the same way.
pub trait Metered {
    /// The metrics recorded while producing this value.
    fn metrics(&self) -> &MetricsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        h.record(500); // <= 1µs bucket
        h.record(700_000); // <= 1ms bucket
        h.record(2_000_000_000); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[6], 1);
        assert_eq!(h.counts[BUCKET_BOUNDS_NS.len()], 1);
        assert_eq!(h.quantile_bound(0.0), 1_000);
        assert_eq!(h.quantile_bound(0.5), 1_000_000);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        assert_eq!(h.mean(), (500 + 700_000 + 2_000_000_000) / 3);
    }

    #[test]
    fn snapshot_merge_adds_and_maxes() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", 2);
        a.spans.insert(
            "s".into(),
            SpanStat {
                count: 1,
                total_ns: 10,
                max_ns: 10,
            },
        );
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 3).set_counter("y", 1);
        b.spans.insert(
            "s".into(),
            SpanStat {
                count: 2,
                total_ns: 30,
                max_ns: 25,
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(
            a.spans["s"],
            SpanStat {
                count: 3,
                total_ns: 40,
                max_ns: 25
            }
        );
    }

    #[test]
    fn json_rendering_is_stable() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("b", 2).set_counter("a", 1);
        let json = m.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":1,\"b\":2}"));
        assert!(json.ends_with("\"spans\":{}}"));
    }
}
