//! Aggregated metrics: counters, fixed-bucket histograms, and per-span
//! timing stats, snapshotted into one owned, serialisable value — plus
//! the parse ([`MetricsSnapshot::from_json`]) and diff
//! ([`MetricsSnapshot::delta`]) halves that differential profiling is
//! built on.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{parse_json, JsonError, JsonValue};

/// Fixed histogram bucket upper bounds, in nanoseconds: 1µs … 1s in a
/// 1-5-10 ladder, plus an overflow bucket. Fixed boundaries keep
/// snapshots mergeable and diffable across runs without negotiation.
pub const BUCKET_BOUNDS_NS: [u64; 13] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// A histogram over [`BUCKET_BOUNDS_NS`] (one extra overflow bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[i]` holds observations
    /// `<= BUCKET_BOUNDS_NS[i]`, the last bucket everything larger.
    pub counts: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); `u64::MAX` when it falls in the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Accumulated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Total (inclusive) nanoseconds across all of them.
    pub total_ns: u64,
    /// The longest single span.
    pub max_ns: u64,
}

/// One coherent, owned view of everything a [`Collector`](crate::Collector)
/// (or a subsystem's internal tallies) accumulated: counters, histograms,
/// and per-span-name stats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-span-name timing aggregates.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a counter (builder-style, for subsystems that tally
    /// locally instead of through a collector).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.insert(name.into(), value);
        self
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) -> &mut Self {
        *self.counters.entry(name.into()).or_insert(0) += delta;
        self
    }

    /// Merges another snapshot into this one: counters and histograms
    /// add, span stats combine (counts/totals add, maxes max).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.spans {
            let e = self.spans.entry(k.clone()).or_default();
            e.count += s.count;
            e.total_ns += s.total_ns;
            e.max_ns = e.max_ns.max(s.max_ns);
        }
    }

    /// Renders the snapshot as a compact JSON object (no external
    /// dependencies; keys sorted, stable across runs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"histograms\":{");
        push_map(&mut out, &self.histograms, |out, h| {
            // p50/p90/p99 are derived views for human consumers; the
            // parser rebuilds them from `counts` and ignores them.
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\
                 \"p99_ns\":{},\"counts\":[{}]}}",
                h.count,
                h.sum,
                h.mean(),
                h.quantile_bound(0.5),
                h.quantile_bound(0.9),
                h.quantile_bound(0.99),
                h.counts
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        });
        out.push_str("},\"spans\":{");
        push_map(&mut out, &self.spans, |out, s| {
            out.push_str(&format!(
                "{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.max_ns
            ));
        });
        out.push_str("}}");
        out
    }

    /// Renders a human-readable table of counters and span timings.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>12} {:>12}\n",
                "span", "count", "total ms", "max ms"
            ));
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>12.3} {:>12.3}\n",
                    name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e6,
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "mean", "p50", "p90", "p99"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.quantile_bound(0.5)),
                    fmt_ns(h.quantile_bound(0.9)),
                    fmt_ns(h.quantile_bound(0.99)),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<32} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<32} {v:>12}\n"));
            }
        }
        out
    }

    /// Parses a snapshot previously rendered by
    /// [`MetricsSnapshot::to_json`] (derived fields such as `p50_ns`
    /// are ignored and recomputed from the bucket counts).
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or mistyped members.
    pub fn from_json(src: &str) -> Result<MetricsSnapshot, JsonError> {
        Self::from_json_value(&parse_json(src)?)
    }

    /// [`MetricsSnapshot::from_json`] over an already-parsed value —
    /// for callers that find the snapshot embedded in a larger
    /// document (a `csp/v1` envelope, a bench history row).
    ///
    /// # Errors
    ///
    /// Fails on mistyped members.
    pub fn from_json_value(v: &JsonValue) -> Result<MetricsSnapshot, JsonError> {
        let bad = |message: String| JsonError { offset: 0, message };
        let mut m = MetricsSnapshot::new();
        if let Some(counters) = v.get("counters").and_then(JsonValue::entries) {
            for (k, v) in counters {
                let n = v
                    .as_u64()
                    .ok_or_else(|| bad(format!("counter `{k}` is not an unsigned integer")))?;
                m.counters.insert(k.clone(), n);
            }
        }
        if let Some(hists) = v.get("histograms").and_then(JsonValue::entries) {
            for (k, hv) in hists {
                let want = |field: &str| {
                    hv.get(field)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| bad(format!("histogram `{k}` lacks unsigned `{field}`")))
                };
                let mut h = Histogram {
                    count: want("count")?,
                    sum: want("sum")?,
                    ..Histogram::default()
                };
                let counts = hv
                    .get("counts")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad(format!("histogram `{k}` lacks `counts`")))?;
                if counts.len() != h.counts.len() {
                    return Err(bad(format!(
                        "histogram `{k}` has {} buckets, expected {}",
                        counts.len(),
                        h.counts.len()
                    )));
                }
                for (slot, c) in h.counts.iter_mut().zip(counts) {
                    *slot = c
                        .as_u64()
                        .ok_or_else(|| bad(format!("histogram `{k}` has a bad bucket count")))?;
                }
                m.histograms.insert(k.clone(), h);
            }
        }
        if let Some(spans) = v.get("spans").and_then(JsonValue::entries) {
            for (k, sv) in spans {
                let want = |field: &str| {
                    sv.get(field)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| bad(format!("span `{k}` lacks unsigned `{field}`")))
                };
                m.spans.insert(
                    k.clone(),
                    SpanStat {
                        count: want("count")?,
                        total_ns: want("total_ns")?,
                        max_ns: want("max_ns")?,
                    },
                );
            }
        }
        Ok(m)
    }

    /// The signed change from `baseline` to `self`: per-counter and
    /// per-span-name deltas over the union of names (a name absent on
    /// one side counts as zero there).
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsDelta {
        let mut d = MetricsDelta::default();
        let counter_names: BTreeSet<&String> = self
            .counters
            .keys()
            .chain(baseline.counters.keys())
            .collect();
        for name in counter_names {
            let new = self.counter(name) as i128;
            let old = baseline.counter(name) as i128;
            if new != old {
                let delta = (new - old).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                d.counters.insert(name.clone(), delta);
            }
        }
        let span_names: BTreeSet<&String> =
            self.spans.keys().chain(baseline.spans.keys()).collect();
        for name in span_names {
            let new = self.spans.get(name).copied().unwrap_or_default();
            let old = baseline.spans.get(name).copied().unwrap_or_default();
            if new != old {
                d.spans.insert(
                    name.clone(),
                    SpanDelta {
                        count: new.count as i64 - old.count as i64,
                        total_ns: new.total_ns as i64 - old.total_ns as i64,
                        old_total_ns: old.total_ns,
                    },
                );
            }
        }
        d
    }
}

/// Renders nanoseconds for a table cell: `µs`/`ms`/`s` with the
/// overflow-bucket sentinel shown as `>1s`.
fn fmt_ns(ns: u64) -> String {
    if ns == u64::MAX {
        ">1s".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One span name's change between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanDelta {
    /// Change in closed-span count.
    pub count: i64,
    /// Change in total inclusive nanoseconds.
    pub total_ns: i64,
    /// The baseline's total, for relative reporting.
    pub old_total_ns: u64,
}

/// The signed difference between two [`MetricsSnapshot`]s, from
/// [`MetricsSnapshot::delta`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Changed counters (unchanged names omitted).
    pub counters: BTreeMap<String, i64>,
    /// Changed span aggregates (unchanged names omitted).
    pub spans: BTreeMap<String, SpanDelta>,
}

impl MetricsDelta {
    /// True when nothing changed beyond `noise_ns` of span time and no
    /// counter moved.
    pub fn is_noise(&self, noise_ns: u64) -> bool {
        self.counters.is_empty()
            && self
                .spans
                .values()
                .all(|s| s.total_ns.unsigned_abs() < noise_ns)
    }

    /// Renders a signed table of the changes, suppressing span rows
    /// whose time moved less than `noise_ns` (count-only changes are
    /// always shown). Rows are ordered by descending |time delta|.
    pub fn render_table(&self, noise_ns: u64) -> String {
        let mut out = String::new();
        let mut rows: Vec<(&String, &SpanDelta)> = self
            .spans
            .iter()
            .filter(|(_, s)| s.total_ns.unsigned_abs() >= noise_ns || s.count != 0)
            .collect();
        rows.sort_by_key(|(name, s)| (std::cmp::Reverse(s.total_ns.unsigned_abs()), *name));
        if !rows.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>14} {:>9}\n",
                "span", "Δcount", "Δtotal ms", "Δ%"
            ));
            for (name, s) in rows {
                let pct = if s.old_total_ns == 0 {
                    "new".to_string()
                } else {
                    format!("{:+.1}%", s.total_ns as f64 / s.old_total_ns as f64 * 100.0)
                };
                out.push_str(&format!(
                    "{:<32} {:>+8} {:>+14.3} {:>9}\n",
                    name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    pct,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<32} {:>12}\n", "counter", "Δvalue"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<32} {v:>+12}\n"));
            }
        }
        if out.is_empty() {
            out.push_str(&format!(
                "no changes above the noise threshold ({:.1} ms)\n",
                noise_ns as f64 / 1e6
            ));
        }
        out
    }
}

fn push_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::json::json_string(k));
        out.push(':');
        render(out, v);
    }
}

/// Uniform access to the metrics a result type carries — implemented by
/// `FixpointRun`, `CheckReport`, and `RunResult` so callers can ask any
/// of them "what did that cost?" the same way.
pub trait Metered {
    /// The metrics recorded while producing this value.
    fn metrics(&self) -> &MetricsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        h.record(500); // <= 1µs bucket
        h.record(700_000); // <= 1ms bucket
        h.record(2_000_000_000); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[6], 1);
        assert_eq!(h.counts[BUCKET_BOUNDS_NS.len()], 1);
        assert_eq!(h.quantile_bound(0.0), 1_000);
        assert_eq!(h.quantile_bound(0.5), 1_000_000);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        assert_eq!(h.mean(), (500 + 700_000 + 2_000_000_000) / 3);
    }

    #[test]
    fn snapshot_merge_adds_and_maxes() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", 2);
        a.spans.insert(
            "s".into(),
            SpanStat {
                count: 1,
                total_ns: 10,
                max_ns: 10,
            },
        );
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 3).set_counter("y", 1);
        b.spans.insert(
            "s".into(),
            SpanStat {
                count: 2,
                total_ns: 30,
                max_ns: 25,
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(
            a.spans["s"],
            SpanStat {
                count: 3,
                total_ns: 40,
                max_ns: 25
            }
        );
    }

    #[test]
    fn json_rendering_is_stable() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("b", 2).set_counter("a", 1);
        let json = m.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":1,\"b\":2}"));
        assert!(json.ends_with("\"spans\":{}}"));
    }

    fn populated_snapshot() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("trace.events", 42);
        let mut h = Histogram::default();
        h.record(500);
        h.record(700_000);
        h.record(2_000_000_000);
        m.histograms.insert("step".into(), h);
        m.spans.insert(
            "fixpoint".into(),
            SpanStat {
                count: 3,
                total_ns: 9_000_000,
                max_ns: 4_000_000,
            },
        );
        m
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let m = populated_snapshot();
        assert_eq!(MetricsSnapshot::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn json_exposes_quantile_bounds() {
        let m = populated_snapshot();
        let v = crate::json::parse_json(&m.to_json()).unwrap();
        let h = v.get("histograms").unwrap().get("step").unwrap();
        assert_eq!(h.get("p50_ns").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(h.get("p90_ns").unwrap().as_f64(), Some(u64::MAX as f64));
        assert_eq!(
            h.get("mean_ns").unwrap().as_u64(),
            Some((500 + 700_000 + 2_000_000_000) / 3)
        );
    }

    #[test]
    fn table_shows_quantile_columns() {
        let table = populated_snapshot().render_table();
        let header = table
            .lines()
            .find(|l| l.starts_with("histogram"))
            .expect("histogram header");
        for col in ["count", "mean", "p50", "p90", "p99"] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        let row = table.lines().find(|l| l.starts_with("step")).unwrap();
        assert!(row.contains("1.0ms"), "p50 bound rendered: {row}");
        assert!(row.contains(">1s"), "overflow sentinel rendered: {row}");
    }

    #[test]
    fn delta_reports_signed_changes_over_name_union() {
        let old = populated_snapshot();
        let mut new = populated_snapshot();
        new.set_counter("trace.events", 40); // regressed downward
        new.spans.get_mut("fixpoint").unwrap().total_ns = 21_000_000;
        new.spans.insert(
            "sat".into(),
            SpanStat {
                count: 1,
                total_ns: 5_000_000,
                max_ns: 5_000_000,
            },
        );
        let d = new.delta(&old);
        assert_eq!(d.counters["trace.events"], -2);
        assert_eq!(d.spans["fixpoint"].total_ns, 12_000_000);
        assert_eq!(d.spans["sat"].old_total_ns, 0);
        assert!(!d.is_noise(1_000_000));

        let table = d.render_table(1_000_000);
        let fixpoint_line = table.lines().position(|l| l.starts_with("fixpoint"));
        let sat_line = table.lines().position(|l| l.starts_with("sat"));
        assert!(
            fixpoint_line.unwrap() < sat_line.unwrap(),
            "sorted by |Δ|:\n{table}"
        );
        assert!(table.contains("+12.000"), "signed ms delta:\n{table}");
        assert!(table.contains("+133.3%"), "relative delta:\n{table}");
        assert!(table.contains("new"), "baseline-absent marker:\n{table}");
        assert!(table.contains("-2"), "signed counter delta:\n{table}");
    }

    #[test]
    fn delta_below_noise_is_noise() {
        let old = populated_snapshot();
        let mut new = populated_snapshot();
        new.spans.get_mut("fixpoint").unwrap().total_ns += 10; // 10ns jitter
        let d = new.delta(&old);
        assert!(d.is_noise(1_000_000));
        // Only time moved (no count change), so the row is suppressed
        // and the table collapses to the placeholder.
        assert!(d.render_table(1_000_000).contains("no changes above"));
    }
}
