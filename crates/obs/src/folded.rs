//! Flamegraph-style folded stacks: one line per distinct span-name
//! chain, `root;child;leaf <self-nanoseconds>`, consumable by standard
//! flamegraph tooling.

use std::collections::BTreeMap;

use crate::span::SpanRecord;

/// Renders span records as folded stacks. Each span contributes its
/// *self* time (duration minus the durations of its direct children) to
/// the stack named by its ancestry chain. Spans whose parent was evicted
/// from the ring buffer are treated as roots. Lines are sorted, so the
/// output is stable for a deterministic span tree.
pub fn folded_stacks(records: &[SpanRecord]) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    // Direct children time, for self-time computation.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        if let Some(p) = r.parent {
            if by_id.contains_key(&p) {
                *child_ns.entry(p).or_insert(0) += r.duration_ns();
            }
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        let mut chain = vec![r.name.as_str()];
        let mut cursor = r.parent;
        while let Some(p) = cursor {
            match by_id.get(&p) {
                Some(parent) => {
                    chain.push(parent.name.as_str());
                    cursor = parent.parent;
                }
                None => break, // evicted ancestor: truncate at the known part
            }
        }
        chain.reverse();
        let self_ns = r
            .duration_ns()
            .saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0));
        *stacks.entry(chain.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn folded_output_nests_and_accounts_self_time() {
        let c = Collector::new();
        {
            let root = c.span("root");
            {
                let mid = root.child("mid");
                let _leaf_a = mid.child("leaf");
            }
            {
                let _mid2 = root.child("mid");
            }
        }
        let folded = c.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        assert!(lines[0].starts_with("root "));
        assert!(lines[1].starts_with("root;mid "));
        assert!(lines[2].starts_with("root;mid;leaf "));
        // Self times sum back to the root's inclusive duration.
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let root_incl = c
            .records()
            .iter()
            .find(|r| r.name == "root")
            .unwrap()
            .duration_ns();
        assert_eq!(total, root_incl);
    }

    #[test]
    fn orphaned_spans_become_roots() {
        // Simulate eviction: a record whose parent id is unknown.
        let records = vec![SpanRecord {
            id: 9,
            parent: Some(1),
            name: "lost".into(),
            start_ns: 0,
            end_ns: 10,
            fields: vec![],
        }];
        assert_eq!(folded_stacks(&records), "lost 10\n");
    }
}
