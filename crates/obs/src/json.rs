//! A minimal, dependency-free JSON value model and parser.
//!
//! The observability stack emits several JSON dialects (span JSONL,
//! metrics snapshots, Chrome trace events, the `csp/v1` CLI envelope)
//! and — because the build environment is offline — parses them back
//! with this module instead of serde. The model is deliberately small:
//! one number type (`f64`, as in JSON itself), objects as ordered
//! key/value vectors, and a recursive-descent parser over the byte
//! slice.

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (one type, as in the grammar).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (keys may repeat; lookups take the
    /// first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives and
    /// fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members in source order, if it is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Fails on malformed JSON with the offending byte offset.
pub fn parse_json(src: &str) -> Result<JsonValue, JsonError> {
    let mut c = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let value = parse_value(&mut c)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Escapes a string as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(self.err(&format!("expected `{}`, got {got:?}", b as char))),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }
}

fn parse_value(c: &mut Cursor<'_>) -> Result<JsonValue, JsonError> {
    match c.peek() {
        Some(b'{') => {
            c.bump();
            let mut pairs = Vec::new();
            if c.peek() == Some(b'}') {
                c.bump();
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                let key = parse_string(c)?;
                c.expect(b':')?;
                let value = parse_value(c)?;
                pairs.push((key, value));
                match c.bump() {
                    Some(b',') => continue,
                    Some(b'}') => return Ok(JsonValue::Object(pairs)),
                    other => return Err(c.err(&format!("bad object separator {other:?}"))),
                }
            }
        }
        Some(b'[') => {
            c.bump();
            let mut items = Vec::new();
            if c.peek() == Some(b']') {
                c.bump();
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(c)?);
                match c.bump() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(JsonValue::Array(items)),
                    other => return Err(c.err(&format!("bad array separator {other:?}"))),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(c)?)),
        Some(b) if b == b'-' || b.is_ascii_digit() => {
            c.skip_ws();
            let start = c.pos;
            if c.bytes[c.pos] == b'-' {
                c.pos += 1;
            }
            while c
                .bytes
                .get(c.pos)
                .is_some_and(|b| b.is_ascii_digit() || matches!(*b, b'.' | b'e' | b'E' | b'+'))
            {
                c.pos += 1;
            }
            let text = std::str::from_utf8(&c.bytes[start..c.pos]).expect("ascii");
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| c.err(&format!("bad number `{text}`")))
        }
        _ if c.eat_literal("null") => Ok(JsonValue::Null),
        _ if c.eat_literal("true") => Ok(JsonValue::Bool(true)),
        _ if c.eat_literal("false") => Ok(JsonValue::Bool(false)),
        other => Err(c.err(&format!("unexpected input {other:?}"))),
    }
}

fn parse_string(c: &mut Cursor<'_>) -> Result<String, JsonError> {
    c.expect(b'"')?;
    let mut out = String::new();
    loop {
        match c.bytes.get(c.pos).copied() {
            None => return Err(c.err("unterminated string")),
            Some(b'"') => {
                c.pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                c.pos += 1;
                match c.bytes.get(c.pos).copied() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = c
                            .bytes
                            .get(c.pos + 1..c.pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| c.err("bad \\u escape"))?;
                        out.push(hex);
                        c.pos += 4;
                    }
                    other => {
                        return Err(c.err(&format!("bad escape {other:?}")));
                    }
                }
                c.pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest =
                    std::str::from_utf8(&c.bytes[c.pos..]).map_err(|_| c.err("invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                c.pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":"x\n"},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn accepts_multiline_whitespace() {
        let v = parse_json("{\n  \"k\" : [ 1 ,\n 2 ]\n}\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_json("{} extra").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn integer_accessors_reject_mismatches() {
        let v = parse_json(r#"{"n":-4,"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-4));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn json_string_round_trips_escapes() {
        let s = "tab\t \"quoted\" — déjà\u{1}\n";
        let v = parse_json(&json_string(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
