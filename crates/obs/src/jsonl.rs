//! JSONL (one JSON object per line) serialisation of span records, and
//! a parser for the same subset — enough to round-trip our own logs and
//! to let external tooling consume them.
//!
//! A log written by a collector whose ring buffer overflowed ends with
//! one marker record `{"dropped":N}`; [`parse_jsonl`] skips it,
//! [`parse_jsonl_with_dropped`] surfaces the count.

use std::io::Write;

use crate::json::{json_string, parse_json, JsonValue};
use crate::span::{FieldValue, SpanRecord};

fn render_record(r: &SpanRecord) -> String {
    let mut line = format!(
        "{{\"id\":{},\"parent\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{},\"fields\":{{",
        r.id,
        r.parent
            .map_or_else(|| "null".to_string(), |p| p.to_string()),
        json_string(&r.name),
        r.start_ns,
        r.end_ns,
    );
    for (i, (k, v)) in r.fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&json_string(k));
        line.push(':');
        match v {
            FieldValue::Int(n) => line.push_str(&n.to_string()),
            FieldValue::Uint(n) => {
                // Tag unsigned with a trailing marker? No — JSON has one
                // number type; disambiguate on parse by sign and range.
                line.push_str(&n.to_string());
            }
            FieldValue::Str(s) => line.push_str(&json_string(s)),
            FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}}");
    line
}

/// Writes the records as JSONL.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_jsonl<W: Write>(records: &[SpanRecord], w: &mut W) -> std::io::Result<()> {
    write_jsonl_with_dropped(records, 0, w)
}

/// Writes the records as JSONL, followed by a `{"dropped":N}` marker
/// record when `dropped > 0` — so a consumer of an overflowed ring
/// buffer can tell a complete log from a truncated one.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_jsonl_with_dropped<W: Write>(
    records: &[SpanRecord],
    dropped: u64,
    w: &mut W,
) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", render_record(r))?;
    }
    if dropped > 0 {
        writeln!(w, "{{\"dropped\":{dropped}}}")?;
    }
    Ok(())
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// The offending line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

/// Parses a JSONL event log produced by [`write_jsonl`] back into span
/// records. Blank lines are skipped; lines whose top-level object lacks
/// an `"id"` key (the `dropped` marker, a trailing metrics line) are
/// ignored.
///
/// # Errors
///
/// Fails on malformed JSON or records with missing/mistyped core keys.
pub fn parse_jsonl(src: &str) -> Result<Vec<SpanRecord>, JsonlError> {
    parse_jsonl_with_dropped(src).map(|(records, _)| records)
}

/// Like [`parse_jsonl`], additionally returning the count from the
/// final `{"dropped":N}` marker (0 when the log has none).
///
/// # Errors
///
/// Fails on malformed JSON or records with missing/mistyped core keys.
pub fn parse_jsonl_with_dropped(src: &str) -> Result<(Vec<SpanRecord>, u64), JsonlError> {
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for (i, line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| err(line_no, &e.message))?;
        let JsonValue::Object(pairs) = value else {
            return Err(err(line_no, "expected a JSON object"));
        };
        if !pairs.iter().any(|(k, _)| k == "id") {
            if let Some(n) = pairs
                .iter()
                .find(|(k, _)| k == "dropped")
                .and_then(|(_, v)| v.as_u64())
            {
                dropped = n;
            }
            continue; // a non-span line (dropped marker, metrics trailer)
        }
        out.push(record_from(pairs, line_no)?);
    }
    Ok((out, dropped))
}

fn record_from(pairs: Vec<(String, JsonValue)>, line: usize) -> Result<SpanRecord, JsonlError> {
    let mut r = SpanRecord {
        id: 0,
        parent: None,
        name: String::new(),
        start_ns: 0,
        end_ns: 0,
        fields: Vec::new(),
    };
    let want_u64 = |v: &JsonValue, what: &str| {
        v.as_u64().ok_or_else(|| {
            err(
                line,
                &format!("expected unsigned integer {what}, got {v:?}"),
            )
        })
    };
    for (k, v) in pairs {
        match (k.as_str(), v) {
            ("id", v) => r.id = want_u64(&v, "id")?,
            ("parent", JsonValue::Null) => r.parent = None,
            ("parent", v) => r.parent = Some(want_u64(&v, "parent")?),
            ("name", JsonValue::Str(s)) => r.name = s,
            ("start_ns", v) => r.start_ns = want_u64(&v, "start_ns")?,
            ("end_ns", v) => r.end_ns = want_u64(&v, "end_ns")?,
            ("fields", JsonValue::Object(fs)) => {
                for (fk, fv) in fs {
                    let value = match fv {
                        JsonValue::Num(n) if n < 0.0 => FieldValue::Int(n as i64),
                        JsonValue::Num(n) => FieldValue::Uint(n as u64),
                        JsonValue::Str(s) => FieldValue::Str(s),
                        JsonValue::Bool(b) => FieldValue::Bool(b),
                        other => {
                            return Err(err(line, &format!("bad field value {other:?}")));
                        }
                    };
                    r.fields.push((fk, value));
                }
            }
            (k, v) => return Err(err(line, &format!("unexpected key `{k}` = {v:?}"))),
        }
    }
    if r.name.is_empty() {
        return Err(err(line, "record has no name"));
    }
    Ok(r)
}

fn err(line: usize, message: &str) -> JsonlError {
    JsonlError {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn round_trip_preserves_records() {
        let c = Collector::new();
        {
            let mut root = c.span("root");
            root.record("depth", 4u64);
            root.record("label", "a \"quoted\" name\nwith newline");
            root.record("negative", -3i64);
            root.record("flag", true);
            let _child = root.child("child");
        }
        let records = c.records();
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn non_span_lines_are_skipped() {
        let text = "\n{\"counters\":{\"x\":1}}\n{\"id\":7,\"parent\":null,\"name\":\"s\",\"start_ns\":1,\"end_ns\":2,\"fields\":{}}\n";
        let parsed = parse_jsonl(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, 7);
        assert_eq!(parsed[0].name, "s");
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = "{\"id\":1,\"name\":\"ok\",\"parent\":null,\"start_ns\":0,\"end_ns\":0,\"fields\":{}}\n{\"id\":2 oops";
        let e = parse_jsonl(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let c = Collector::new();
        {
            let mut s = c.span("π");
            s.record("val", "tab\there — déjà\u{1}");
            drop(s);
        }
        let mut buf = Vec::new();
        write_jsonl(&c.records(), &mut buf).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, c.records());
    }

    #[test]
    fn dropped_marker_round_trips_and_is_transparent_to_parse_jsonl() {
        let c = Collector::new();
        c.span("s").end();
        let mut buf = Vec::new();
        write_jsonl_with_dropped(&c.records(), 7, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.ends_with("{\"dropped\":7}\n"), "{text}");
        let (records, dropped) = parse_jsonl_with_dropped(&text).unwrap();
        assert_eq!(records, c.records());
        assert_eq!(dropped, 7);
        // The plain parser skips the marker silently.
        assert_eq!(parse_jsonl(&text).unwrap(), c.records());
    }
}
