//! JSONL (one JSON object per line) serialisation of span records, and
//! a parser for the same subset — enough to round-trip our own logs and
//! to let external tooling consume them.

use std::io::Write;

use crate::span::{FieldValue, SpanRecord};

/// Escapes a string as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_record(r: &SpanRecord) -> String {
    let mut line = format!(
        "{{\"id\":{},\"parent\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{},\"fields\":{{",
        r.id,
        r.parent
            .map_or_else(|| "null".to_string(), |p| p.to_string()),
        json_string(&r.name),
        r.start_ns,
        r.end_ns,
    );
    for (i, (k, v)) in r.fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&json_string(k));
        line.push(':');
        match v {
            FieldValue::Int(n) => line.push_str(&n.to_string()),
            FieldValue::Uint(n) => {
                // Tag unsigned with a trailing marker? No — JSON has one
                // number type; disambiguate on parse by sign and range.
                line.push_str(&n.to_string());
            }
            FieldValue::Str(s) => line.push_str(&json_string(s)),
            FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}}");
    line
}

/// Writes the records as JSONL.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_jsonl<W: Write>(records: &[SpanRecord], w: &mut W) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", render_record(r))?;
    }
    Ok(())
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// The offending line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

/// Parses a JSONL event log produced by [`write_jsonl`] back into span
/// records. Blank lines are skipped; lines whose top-level object lacks
/// an `"id"` key (e.g. a trailing metrics line) are ignored.
///
/// # Errors
///
/// Fails on malformed JSON or records with missing/mistyped core keys.
pub fn parse_jsonl(src: &str) -> Result<Vec<SpanRecord>, JsonlError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_value(&mut Cursor::new(line, line_no))?;
        let Json::Object(pairs) = value else {
            return Err(err(line_no, "expected a JSON object"));
        };
        if !pairs.iter().any(|(k, _)| k == "id") {
            continue; // a non-span line (metrics trailer etc.)
        }
        out.push(record_from(pairs, line_no)?);
    }
    Ok(out)
}

fn record_from(pairs: Vec<(String, Json)>, line: usize) -> Result<SpanRecord, JsonlError> {
    let mut r = SpanRecord {
        id: 0,
        parent: None,
        name: String::new(),
        start_ns: 0,
        end_ns: 0,
        fields: Vec::new(),
    };
    for (k, v) in pairs {
        match (k.as_str(), v) {
            ("id", Json::Num(n)) => r.id = as_u64(n, line)?,
            ("parent", Json::Null) => r.parent = None,
            ("parent", Json::Num(n)) => r.parent = Some(as_u64(n, line)?),
            ("name", Json::Str(s)) => r.name = s,
            ("start_ns", Json::Num(n)) => r.start_ns = as_u64(n, line)?,
            ("end_ns", Json::Num(n)) => r.end_ns = as_u64(n, line)?,
            ("fields", Json::Object(fs)) => {
                for (fk, fv) in fs {
                    let value = match fv {
                        Json::Num(n) if n < 0.0 => FieldValue::Int(n as i64),
                        Json::Num(n) => FieldValue::Uint(n as u64),
                        Json::Str(s) => FieldValue::Str(s),
                        Json::Bool(b) => FieldValue::Bool(b),
                        other => {
                            return Err(err(line, &format!("bad field value {other:?}")));
                        }
                    };
                    r.fields.push((fk, value));
                }
            }
            (k, v) => return Err(err(line, &format!("unexpected key `{k}` = {v:?}"))),
        }
    }
    if r.name.is_empty() {
        return Err(err(line, "record has no name"));
    }
    Ok(r)
}

fn as_u64(n: f64, line: usize) -> Result<u64, JsonlError> {
    if n < 0.0 || n.fract() != 0.0 {
        return Err(err(line, &format!("expected unsigned integer, got {n}")));
    }
    Ok(n as u64)
}

fn err(line: usize, message: &str) -> JsonlError {
    JsonlError {
        line,
        message: message.to_string(),
    }
}

/// The minimal JSON value model the parser needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
            line,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonlError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(err(
                self.line,
                &format!("expected `{}`, got {got:?}", b as char),
            )),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }
}

fn parse_value(c: &mut Cursor<'_>) -> Result<Json, JsonlError> {
    match c.peek() {
        Some(b'{') => {
            c.bump();
            let mut pairs = Vec::new();
            if c.peek() == Some(b'}') {
                c.bump();
                return Ok(Json::Object(pairs));
            }
            loop {
                let key = parse_string(c)?;
                c.expect(b':')?;
                let value = parse_value(c)?;
                pairs.push((key, value));
                match c.bump() {
                    Some(b',') => continue,
                    Some(b'}') => return Ok(Json::Object(pairs)),
                    other => return Err(err(c.line, &format!("bad object separator {other:?}"))),
                }
            }
        }
        Some(b'[') => {
            c.bump();
            let mut items = Vec::new();
            if c.peek() == Some(b']') {
                c.bump();
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(c)?);
                match c.bump() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(Json::Array(items)),
                    other => return Err(err(c.line, &format!("bad array separator {other:?}"))),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(c)?)),
        Some(b) if b == b'-' || b.is_ascii_digit() => {
            c.skip_ws();
            let start = c.pos;
            if c.bytes[c.pos] == b'-' {
                c.pos += 1;
            }
            while c
                .bytes
                .get(c.pos)
                .is_some_and(|b| b.is_ascii_digit() || *b == b'.' || *b == b'e' || *b == b'E')
            {
                c.pos += 1;
            }
            let text = std::str::from_utf8(&c.bytes[start..c.pos]).expect("ascii");
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| err(c.line, &format!("bad number `{text}`")))
        }
        _ if c.eat_literal("null") => Ok(Json::Null),
        _ if c.eat_literal("true") => Ok(Json::Bool(true)),
        _ if c.eat_literal("false") => Ok(Json::Bool(false)),
        other => Err(err(c.line, &format!("unexpected input {other:?}"))),
    }
}

fn parse_string(c: &mut Cursor<'_>) -> Result<String, JsonlError> {
    c.expect(b'"')?;
    let mut out = String::new();
    loop {
        match c.bytes.get(c.pos).copied() {
            None => return Err(err(c.line, "unterminated string")),
            Some(b'"') => {
                c.pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                c.pos += 1;
                match c.bytes.get(c.pos).copied() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = c
                            .bytes
                            .get(c.pos + 1..c.pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| err(c.line, "bad \\u escape"))?;
                        out.push(hex);
                        c.pos += 4;
                    }
                    other => {
                        return Err(err(c.line, &format!("bad escape {other:?}")));
                    }
                }
                c.pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&c.bytes[c.pos..])
                    .map_err(|_| err(c.line, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                c.pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn round_trip_preserves_records() {
        let c = Collector::new();
        {
            let mut root = c.span("root");
            root.record("depth", 4u64);
            root.record("label", "a \"quoted\" name\nwith newline");
            root.record("negative", -3i64);
            root.record("flag", true);
            let _child = root.child("child");
        }
        let records = c.records();
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn non_span_lines_are_skipped() {
        let text = "\n{\"counters\":{\"x\":1}}\n{\"id\":7,\"parent\":null,\"name\":\"s\",\"start_ns\":1,\"end_ns\":2,\"fields\":{}}\n";
        let parsed = parse_jsonl(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, 7);
        assert_eq!(parsed[0].name, "s");
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = "{\"id\":1,\"name\":\"ok\",\"parent\":null,\"start_ns\":0,\"end_ns\":0,\"fields\":{}}\n{\"id\":2 oops";
        let e = parse_jsonl(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let c = Collector::new();
        {
            let mut s = c.span("π");
            s.record("val", "tab\there — déjà\u{1}");
            drop(s);
        }
        let mut buf = Vec::new();
        write_jsonl(&c.records(), &mut buf).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, c.records());
    }
}
