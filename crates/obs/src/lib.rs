//! # csp-obs
//!
//! Zero-dependency structured observability for the `hoare-csp` stack:
//! scoped [`Span`]s with parent ids and monotonic timestamps, process
//! counters and fixed-bucket [`Histogram`]s, an in-memory ring buffer of
//! finished spans, a JSONL event-log writer/reader, and a
//! flamegraph-style folded-stacks renderer.
//!
//! The design centre is the **disabled fast path**: a
//! [`Collector::disabled()`] is a `None` behind one pointer-sized
//! option, so instrumented hot loops pay a single branch and no
//! allocation, locking, or clock read. Every subsystem of the workbench
//! (semantics, proof, runtime, verify) threads a [`Collector`] through
//! its load-bearing loops and stays measurably free when observation is
//! off — the CI bench gate runs with collection enabled and must stay
//! within the ordinary noise tolerance.
//!
//! ```
//! use csp_obs::Collector;
//!
//! let c = Collector::new();
//! {
//!     let mut outer = c.span("fixpoint");
//!     outer.record("depth", 4i64);
//!     let _inner = outer.child("fixpoint.iter");
//!     c.add("fixpoint.memo_hits", 3);
//! } // spans record themselves on drop
//! let records = c.records();
//! assert_eq!(records.len(), 2);
//! // Children finish (and are recorded) before their parents.
//! assert_eq!(records[0].name, "fixpoint.iter");
//! assert_eq!(records[1].name, "fixpoint");
//! assert_eq!(records[0].parent, Some(records[1].id));
//! assert_eq!(c.snapshot().counter("fixpoint.memo_hits"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod folded;
mod jsonl;
mod metrics;
mod span;

pub use folded::folded_stacks;
pub use jsonl::{parse_jsonl, write_jsonl, JsonlError};
pub use metrics::{Histogram, Metered, MetricsSnapshot, SpanStat, BUCKET_BOUNDS_NS};
pub use span::{Collector, FieldValue, Span, SpanRecord};
