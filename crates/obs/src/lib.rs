//! # csp-obs
//!
//! Zero-dependency structured observability for the `hoare-csp` stack:
//! scoped [`Span`]s with parent ids and monotonic timestamps, process
//! counters and fixed-bucket [`Histogram`]s, an in-memory ring buffer of
//! finished spans, a JSONL event-log writer/reader, and a
//! flamegraph-style folded-stacks renderer.
//!
//! The design centre is the **disabled fast path**: a
//! [`Collector::disabled()`] is a `None` behind one pointer-sized
//! option, so instrumented hot loops pay a single branch and no
//! allocation, locking, or clock read. Every subsystem of the workbench
//! (semantics, proof, runtime, verify) threads a [`Collector`] through
//! its load-bearing loops and stays measurably free when observation is
//! off — the CI bench gate runs with collection enabled and must stay
//! within the ordinary noise tolerance.
//!
//! ```
//! use csp_obs::Collector;
//!
//! let c = Collector::new();
//! {
//!     let mut outer = c.span("fixpoint");
//!     outer.record("depth", 4i64);
//!     let _inner = outer.child("fixpoint.iter");
//!     c.add("fixpoint.memo_hits", 3);
//! } // spans record themselves on drop
//! let records = c.records();
//! assert_eq!(records.len(), 2);
//! // Children finish (and are recorded) before their parents.
//! assert_eq!(records[0].name, "fixpoint.iter");
//! assert_eq!(records[1].name, "fixpoint");
//! assert_eq!(records[0].parent, Some(records[1].id));
//! assert_eq!(c.snapshot().counter("fixpoint.memo_hits"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod folded;
mod json;
mod jsonl;
mod metrics;
mod prom;
mod span;

pub use chrome::{chrome_trace, chrome_trace_named};
pub use folded::folded_stacks;
pub use json::{json_string, parse_json, JsonError, JsonValue};
pub use jsonl::{
    parse_jsonl, parse_jsonl_with_dropped, write_jsonl, write_jsonl_with_dropped, JsonlError,
};
pub use metrics::{
    Histogram, Metered, MetricsDelta, MetricsSnapshot, SpanDelta, SpanStat, BUCKET_BOUNDS_NS,
};
pub use prom::{parse_prometheus, render_prometheus, PromError};
pub use span::{Collector, FieldValue, Span, SpanRecord};
