//! Chrome trace-event / Perfetto exporter: renders a span ring buffer
//! as the JSON object format `chrome://tracing` and
//! <https://ui.perfetto.dev> load directly.
//!
//! Every finished span becomes one complete (`"ph":"X"`) event with
//! microsecond `ts`/`dur` (fractional, so the nanosecond resolution of
//! the collector survives) and its typed fields as `args`. Chrome infers
//! nesting from interval containment *per track* (`tid`), so the
//! exporter assigns each span a track such that containment on a track
//! holds exactly for ancestor/descendant pairs: children sit on their
//! parent's track until a concurrent sibling would overlap, which is
//! moved to a fresh track instead. The span's `id` and `parent` id ride
//! along in `args`, so the exact tree is recoverable regardless of
//! track placement.

use std::collections::BTreeMap;

use crate::json::json_string;
use crate::span::{FieldValue, SpanRecord};

/// Renders span records as a Chrome trace-event JSON document (the
/// object form: `{"traceEvents":[…]}`). The output is stable for a
/// deterministic span tree: events are ordered by start time, then by
/// span id.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    chrome_trace_named(records, "csp")
}

/// [`chrome_trace`] with an explicit process name (shown by the viewer
/// as the top-level group).
pub fn chrome_trace_named(records: &[SpanRecord], process_name: &str) -> String {
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    // True iff `candidate` appears on `r`'s parent chain.
    let is_ancestor = |candidate: u64, r: &SpanRecord| -> bool {
        let mut cursor = r.parent;
        while let Some(p) = cursor {
            if p == candidate {
                return true;
            }
            cursor = by_id.get(&p).and_then(|pr| pr.parent);
        }
        false
    };

    // Sort by start (ties: longer span first, so a parent sharing its
    // child's start timestamp is placed before the child).
    let mut order: Vec<&SpanRecord> = records.iter().collect();
    order.sort_by_key(|r| (r.start_ns, std::cmp::Reverse(r.end_ns), r.id));

    // Greedy track assignment. Each track keeps a stack of the spans
    // currently covering it; a span may join a track iff, after closing
    // the spans that ended before it starts, the track is free or its
    // innermost open span is one of the span's ancestors. This makes
    // interval containment on a track coincide with ancestry.
    let mut tracks: Vec<Vec<&SpanRecord>> = Vec::new();
    let mut track_of: BTreeMap<u64, usize> = BTreeMap::new();
    for r in &order {
        let mut chosen = None;
        for (t, stack) in tracks.iter_mut().enumerate() {
            while stack.last().is_some_and(|top| top.end_ns <= r.start_ns) {
                stack.pop();
            }
            let fits = match stack.last() {
                None => true,
                // Ancestry plus temporal containment: a child that
                // outlived its parent (malformed scoping) must not
                // share the lane, or the track would partially overlap.
                Some(top) => is_ancestor(top.id, r) && top.end_ns >= r.end_ns,
            };
            if fits {
                chosen = Some(t);
                break;
            }
        }
        let t = chosen.unwrap_or_else(|| {
            tracks.push(Vec::new());
            tracks.len() - 1
        });
        tracks[t].push(r);
        track_of.insert(r.id, t);
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":{}}}}}",
        json_string(process_name)
    ));
    for r in &order {
        let ts = r.start_ns as f64 / 1e3;
        let dur = r.duration_ns() as f64 / 1e3;
        out.push(',');
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"csp\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{},\"parent\":{}",
            json_string(&r.name),
            track_of[&r.id],
            r.id,
            r.parent
                .map_or_else(|| "null".to_string(), |p| p.to_string()),
        ));
        for (k, v) in &r.fields {
            out.push(',');
            out.push_str(&json_string(k));
            out.push(':');
            match v {
                FieldValue::Int(n) => out.push_str(&n.to_string()),
                FieldValue::Uint(n) => out.push_str(&n.to_string()),
                FieldValue::Str(s) => out.push_str(&json_string(s)),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};
    use crate::Collector;
    use proptest::prelude::*;

    /// The exported events, metadata stripped.
    fn span_events(doc: &JsonValue) -> Vec<&JsonValue> {
        doc.get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array")
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect()
    }

    fn ns(e: &JsonValue, key: &str) -> u64 {
        (e.get(key).and_then(JsonValue::as_f64).expect("µs number") * 1e3).round() as u64
    }

    /// Checks every guarantee the exporter makes against the source
    /// records: one event per span with exact timestamps and args, the
    /// parent link temporally contained, and containment per track
    /// coinciding with ancestry.
    fn assert_well_formed(records: &[SpanRecord], json: &str) {
        let doc = parse_json(json).expect("valid JSON");
        let events = span_events(&doc);
        assert_eq!(events.len(), records.len());
        let by_id: std::collections::BTreeMap<u64, &SpanRecord> =
            records.iter().map(|r| (r.id, r)).collect();
        let is_ancestor = |candidate: u64, r: &SpanRecord| -> bool {
            let mut cursor = r.parent;
            while let Some(p) = cursor {
                if p == candidate {
                    return true;
                }
                cursor = by_id.get(&p).and_then(|pr| pr.parent);
            }
            false
        };

        let mut seen: Vec<(u64, u64, u64, u64)> = Vec::new(); // (tid, id, start, end)
        for e in &events {
            let id = e
                .get("args")
                .unwrap()
                .get("span_id")
                .unwrap()
                .as_u64()
                .unwrap();
            let r = by_id[&id];
            assert_eq!(e.get("name").unwrap().as_str(), Some(r.name.as_str()));
            assert_eq!(ns(e, "ts"), r.start_ns, "ts survives µs conversion");
            assert_eq!(ns(e, "dur"), r.duration_ns(), "dur survives µs conversion");
            let parent = e.get("args").unwrap().get("parent").unwrap();
            match r.parent {
                None => assert_eq!(*parent, JsonValue::Null),
                Some(p) => {
                    assert_eq!(parent.as_u64(), Some(p));
                    // The parent event (when recorded) contains the child.
                    if let Some(pr) = by_id.get(&p) {
                        assert!(pr.start_ns <= r.start_ns && r.end_ns <= pr.end_ns);
                    }
                }
            }
            // Typed fields all appear in args.
            for (k, _) in &r.fields {
                assert!(e.get("args").unwrap().get(k).is_some(), "missing arg {k}");
            }
            seen.push((
                e.get("tid").unwrap().as_u64().unwrap(),
                id,
                r.start_ns,
                r.end_ns,
            ));
        }

        // Per track: any two events either nest or are disjoint, and
        // containment implies ancestry — the viewer's inferred nesting
        // is exactly the span tree.
        for (i, &(tid_a, id_a, s_a, e_a)) in seen.iter().enumerate() {
            for &(tid_b, id_b, s_b, e_b) in &seen[i + 1..] {
                if tid_a != tid_b {
                    continue;
                }
                let disjoint = e_a <= s_b || e_b <= s_a;
                let a_in_b = s_b <= s_a && e_a <= e_b;
                let b_in_a = s_a <= s_b && e_b <= e_a;
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "partial overlap on track {tid_a}: {id_a} vs {id_b}"
                );
                if !disjoint {
                    let (inner, outer) = if a_in_b { (id_a, id_b) } else { (id_b, id_a) };
                    assert!(
                        is_ancestor(outer, by_id[&inner]) || is_ancestor(inner, by_id[&outer]),
                        "track {tid_a} nests unrelated spans {inner} inside {outer}"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_tree_exports_on_one_track() {
        let c = Collector::new();
        {
            let root = c.span("root");
            {
                let mid = root.child("mid");
                let _leaf = mid.child("leaf");
            }
            let _mid2 = root.child("mid2");
        }
        let records = c.records();
        let json = chrome_trace(&records);
        assert_well_formed(&records, &json);
        let doc = parse_json(&json).unwrap();
        assert!(span_events(&doc)
            .iter()
            .all(|e| e.get("tid").unwrap().as_u64() == Some(0)));
    }

    #[test]
    fn concurrent_siblings_get_disjoint_tracks() {
        let c = Collector::new();
        let root = c.span("root");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let root = &root;
                scope.spawn(move || {
                    let mut s = root.child("worker");
                    s.record("busy", true);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                });
            }
        });
        drop(root);
        let records = c.records();
        assert_well_formed(&records, &chrome_trace(&records));
    }

    #[test]
    fn fields_become_args() {
        let c = Collector::new();
        {
            let mut s = c.span("s");
            s.record("n", 4u64);
            s.record("label", "x \"y\"");
            s.record("neg", -2i64);
            s.record("flag", false);
        }
        let json = chrome_trace(&c.records());
        let doc = parse_json(&json).unwrap();
        let args = span_events(&doc)[0].get("args").unwrap().clone();
        assert_eq!(args.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(args.get("label").unwrap().as_str(), Some("x \"y\""));
        assert_eq!(args.get("neg").unwrap().as_i64(), Some(-2));
        assert_eq!(args.get("flag").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn process_name_metadata_is_emitted_first() {
        let c = Collector::new();
        c.span("s").end();
        let json = chrome_trace_named(&c.records(), "bench");
        let doc = parse_json(&json).unwrap();
        let all = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(all[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            all[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("bench")
        );
    }

    #[test]
    fn orphaned_spans_are_still_exported() {
        // Simulate ring-buffer eviction: a record whose parent is gone.
        let records = vec![SpanRecord {
            id: 9,
            parent: Some(1),
            name: "lost".into(),
            start_ns: 5,
            end_ns: 10,
            fields: vec![],
        }];
        assert_well_formed(&records, &chrome_trace(&records));
    }

    /// A randomly shaped span forest: at every step either open a child
    /// of the innermost open span, close the innermost span, or open a
    /// new root. Timestamps come from the real collector, so the trees
    /// are properly nested — the exporter must keep them that way.
    fn run_random_forest(ops: &[u8]) -> Vec<SpanRecord> {
        let c = Collector::new();
        let mut open: Vec<crate::Span> = Vec::new();
        for op in ops {
            match op % 3 {
                0 => {
                    let child = match open.last() {
                        Some(parent) => parent.child("inner"),
                        None => c.span("root"),
                    };
                    open.push(child);
                }
                1 => {
                    open.pop();
                }
                _ => {
                    // Close everything (innermost first, as scoped code
                    // would), then a fresh root: exercises multiple
                    // consecutive trees.
                    while open.pop().is_some() {}
                    open.push(c.span("root"));
                }
            }
        }
        while open.pop().is_some() {}
        c.records()
    }

    proptest! {
        #[test]
        fn random_span_forests_export_well_formed(ops in proptest::collection::vec(0u8..6, 0..40)) {
            let records = run_random_forest(&ops);
            assert_well_formed(&records, &chrome_trace(&records));
        }
    }
}
