//! The [`Collector`]/[`Span`] core: scoped spans with parent ids,
//! monotonic timestamps, and key=value fields, recorded into a bounded
//! in-memory ring buffer.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Histogram, MetricsSnapshot, SpanStat};

/// Default capacity of the finished-span ring buffer.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 8192;

/// One typed field value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters, sizes).
    Uint(u64),
    /// A string (names, keys, rendered judgements).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Int(v) => v.fmt(f),
            FieldValue::Uint(v) => v.fmt(f),
            FieldValue::Str(v) => v.fmt(f),
            FieldValue::Bool(v) => v.fmt(f),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Uint(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Uint(v as u64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// A finished span, as stored in the ring buffer and the JSONL log.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique (per collector) span id; ids are allocated in *open*
    /// order, records appear in *close* order.
    pub id: u64,
    /// The id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// The span's name — a stable, dot-separated taxonomy entry
    /// (`fixpoint.iter`, `proof.rule`, `run.round`, …).
    pub name: String,
    /// Nanoseconds since the collector's epoch at open.
    pub start_ns: u64,
    /// Nanoseconds since the collector's epoch at close.
    pub end_ns: u64,
    /// Key=value fields recorded while the span was open.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// The span's wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Mutable collector state behind one mutex.
#[derive(Debug, Default)]
struct State {
    records: VecDeque<SpanRecord>,
    dropped: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    span_stats: BTreeMap<String, SpanStat>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    capacity: usize,
    state: Mutex<State>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push_record(&self, record: SpanRecord) {
        let duration = record.duration_ns();
        let mut state = self.state.lock().expect("collector state");
        let stat = state.span_stats.entry(record.name.clone()).or_default();
        stat.count += 1;
        stat.total_ns += duration;
        stat.max_ns = stat.max_ns.max(duration);
        if state.records.len() >= self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }
}

/// A handle to one observation stream. Cloning shares the stream;
/// [`Collector::disabled`] is a no-op handle whose every operation costs
/// one branch.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl Collector {
    /// An active collector with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An active collector keeping at most `capacity` finished spans
    /// (older spans are evicted and counted in [`dropped`](Self::dropped);
    /// counters and aggregates keep the full totals).
    pub fn with_capacity(capacity: usize) -> Self {
        Collector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                capacity: capacity.max(1),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The no-op collector: every span is a null guard, every counter
    /// update a single branch. This is the default everywhere.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. The guard records itself when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        self.open(name, None)
    }

    fn open(&self, name: &'static str, parent: Option<u64>) -> Span {
        match &self.inner {
            None => Span(None),
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                Span(Some(SpanInner {
                    collector: Arc::clone(inner),
                    id,
                    parent,
                    name,
                    start_ns: inner.now_ns(),
                    fields: Vec::new(),
                }))
            }
        }
    }

    /// Adds `delta` to a named counter. The name converts lazily, so a
    /// disabled collector never allocates.
    pub fn add(&self, counter: impl Into<String>, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("collector state");
            *state.counters.entry(counter.into()).or_insert(0) += delta;
        }
    }

    /// Records one observation (in nanoseconds) into a named
    /// fixed-bucket histogram.
    pub fn observe_ns(&self, histogram: &'static str, ns: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("collector state");
            state.histograms.entry(histogram).or_default().record(ns);
        }
    }

    /// The finished spans currently held by the ring buffer, oldest
    /// first (i.e. in close order).
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .state
                .lock()
                .expect("collector state")
                .records
                .iter()
                .cloned()
                .collect(),
        }
    }

    /// Number of finished spans evicted from the ring buffer.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.state.lock().expect("collector state").dropped,
        }
    }

    /// Aggregates counters, histograms, and per-span-name timing stats
    /// into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(inner) = &self.inner {
            let state = inner.state.lock().expect("collector state");
            for (k, v) in &state.counters {
                snap.counters.insert(k.clone(), *v);
            }
            for (k, h) in &state.histograms {
                snap.histograms.insert((*k).to_string(), h.clone());
            }
            snap.spans = state.span_stats.clone();
        }
        snap
    }

    /// Serialises the ring buffer as JSONL (one span per line). When
    /// the ring overflowed, the log ends with a `{"dropped":N}` marker
    /// so consumers can tell a complete log from a truncated one.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        crate::jsonl::write_jsonl_with_dropped(&self.records(), self.dropped(), w)
    }

    /// Renders the ring buffer as a Chrome trace-event / Perfetto JSON
    /// document (see [`crate::chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        crate::chrome_trace(&self.records())
    }

    /// Renders the ring buffer as flamegraph-style folded stacks.
    pub fn folded_stacks(&self) -> String {
        crate::folded_stacks(&self.records())
    }
}

/// The live half of a span. Construction is [`Collector::span`] or
/// [`Span::child`]; the span records itself into the collector's ring
/// buffer on drop (or explicitly via [`Span::end`]).
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    collector: Arc<Inner>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Opens a child span of this one (on the same collector). A child
    /// of a disabled span is disabled.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.0 {
            None => Span(None),
            Some(inner) => Collector {
                inner: Some(Arc::clone(&inner.collector)),
            }
            .open(name, Some(inner.id)),
        }
    }

    /// Attaches (or appends) a key=value field.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.0 {
            inner.fields.push((key, value.into()));
        }
    }

    /// The span id, when recording. Stable within a collector.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.id)
    }

    /// Whether the span records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let end_ns = inner.collector.now_ns();
            inner.collector.push_record(SpanRecord {
                id: inner.id,
                parent: inner.parent,
                name: inner.name.to_string(),
                start_ns: inner.start_ns,
                end_ns,
                fields: inner
                    .fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::disabled();
        let mut s = c.span("anything");
        s.record("k", 1i64);
        let child = s.child("inner");
        assert!(!child.is_enabled());
        drop(child);
        drop(s);
        c.add("counter", 5);
        c.observe_ns("h", 100);
        assert!(c.records().is_empty());
        assert_eq!(c.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let c = Collector::new();
        let root = c.span("root");
        let mid = root.child("mid");
        let leaf = mid.child("leaf");
        drop(leaf);
        drop(mid);
        drop(root);
        let r = c.records();
        assert_eq!(
            r.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["leaf", "mid", "root"]
        );
        // Parent links form the chain root <- mid <- leaf.
        assert_eq!(r[0].parent, Some(r[1].id));
        assert_eq!(r[1].parent, Some(r[2].id));
        assert_eq!(r[2].parent, None);
        // Timestamps are monotonic and properly nested.
        assert!(r[0].start_ns >= r[1].start_ns);
        assert!(r[0].end_ns <= r[1].end_ns);
        assert!(r[1].end_ns <= r[2].end_ns);
    }

    #[test]
    fn sibling_spans_share_a_parent_and_order_by_close() {
        let c = Collector::new();
        let root = c.span("root");
        let a = root.child("a");
        let b = root.child("b");
        drop(b); // b closes first
        drop(a);
        drop(root);
        let r = c.records();
        assert_eq!(
            r.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["b", "a", "root"]
        );
        assert_eq!(r[0].parent, r[1].parent);
        assert_eq!(r[0].parent, Some(r[2].id));
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let c = Collector::with_capacity(3);
        for _ in 0..5 {
            c.span("s").end();
        }
        assert_eq!(c.records().len(), 3);
        assert_eq!(c.dropped(), 2);
        // Aggregates keep the full totals regardless of eviction.
        assert_eq!(c.snapshot().spans["s"].count, 5);
    }

    /// Overflow end-to-end: exact `dropped()` accounting, the JSONL
    /// `{"dropped":N}` marker, and a well-formed Chrome export even
    /// though the surviving children reference a parent (the still-open
    /// root) that is not in the buffer.
    #[test]
    fn ring_overflow_is_reported_by_every_sink() {
        let c = Collector::with_capacity(4);
        let root = c.span("root");
        for _ in 0..10 {
            root.child("work").end();
        }
        assert_eq!(c.records().len(), 4);
        assert_eq!(c.dropped(), 6);

        let mut buf = Vec::new();
        c.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.trim_end().ends_with("{\"dropped\":6}"), "{text}");
        let (records, dropped) = crate::parse_jsonl_with_dropped(&text).unwrap();
        assert_eq!(records, c.records());
        assert_eq!(dropped, 6);

        let chrome = c.chrome_trace();
        let doc = crate::parse_json(&chrome).expect("well-formed trace JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4 + 1, "four spans plus process metadata");
        drop(root);
    }

    #[test]
    fn fields_are_kept_in_record_order() {
        let c = Collector::new();
        let mut s = c.span("s");
        s.record("first", 1i64);
        s.record("second", "two");
        s.record("third", true);
        s.end();
        let r = c.records().pop().unwrap();
        assert_eq!(r.fields.len(), 3);
        assert_eq!(r.field("second"), Some(&FieldValue::Str("two".into())));
        assert_eq!(r.fields[0].0, "first");
        assert_eq!(r.fields[2].1, FieldValue::Bool(true));
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let c = Collector::new();
        let c2 = c.clone();
        c.add("n", 2);
        c2.add("n", 3);
        assert_eq!(c.snapshot().counter("n"), 5);
    }

    #[test]
    fn spans_can_cross_threads() {
        let c = Collector::new();
        let root = c.span("root");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let root = &root;
                scope.spawn(move || {
                    let mut s = root.child("worker");
                    s.record("ok", true);
                });
            }
        });
        drop(root);
        let r = c.records();
        assert_eq!(r.len(), 5);
        assert_eq!(r.iter().filter(|s| s.name == "worker").count(), 4);
        let root_id = r.iter().find(|s| s.name == "root").unwrap().id;
        assert!(r
            .iter()
            .filter(|s| s.name == "worker")
            .all(|s| s.parent == Some(root_id)));
    }
}
