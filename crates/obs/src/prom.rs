//! Prometheus text exposition of a [`MetricsSnapshot`], and a parser
//! for the same format.
//!
//! The snapshot's dotted names (`trace.events`, `run.rounds`) are not
//! legal Prometheus metric names, so the exposition uses a fixed family
//! per snapshot section and carries the original name as a `name`
//! label. Histogram buckets follow the standard cumulative `le`
//! convention (each bucket counts observations `<=` its bound,
//! `le="+Inf"` counts everything). All values are unsigned integers
//! rendered exactly, so [`parse_prometheus`] reconstructs the
//! originating snapshot bit-for-bit.

use std::collections::BTreeMap;

use crate::metrics::{Histogram, MetricsSnapshot, BUCKET_BOUNDS_NS};

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render_prometheus(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !m.counters.is_empty() {
        out.push_str("# HELP csp_counter Monotone counters from the csp collector.\n");
        out.push_str("# TYPE csp_counter counter\n");
        for (name, v) in &m.counters {
            out.push_str(&format!("csp_counter{{name={}}} {v}\n", label(name)));
        }
    }
    // Ring-buffer overflow gets a dedicated gauge family so dashboards
    // can alert on sampler blind spots without knowing our name scheme.
    // The value also appears under `csp_counter` above; the parser
    // treats both as the same counter, so round-tripping stays exact.
    if let Some(v) = m.counters.get("obs.events_dropped") {
        out.push_str("# HELP csp_events_dropped Spans evicted from the observation ring buffer.\n");
        out.push_str("# TYPE csp_events_dropped gauge\n");
        out.push_str(&format!(
            "csp_events_dropped{{name={}}} {v}\n",
            label("obs.events_dropped")
        ));
    }
    if !m.histograms.is_empty() {
        out.push_str("# HELP csp_duration_ns Fixed-bucket duration histograms (nanoseconds).\n");
        out.push_str("# TYPE csp_duration_ns histogram\n");
        for (name, h) in &m.histograms {
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match BUCKET_BOUNDS_NS.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "csp_duration_ns_bucket{{name={},le=\"{le}\"}} {cumulative}\n",
                    label(name)
                ));
            }
            out.push_str(&format!(
                "csp_duration_ns_sum{{name={}}} {}\n",
                label(name),
                h.sum
            ));
            out.push_str(&format!(
                "csp_duration_ns_count{{name={}}} {}\n",
                label(name),
                h.count
            ));
        }
    }
    if !m.spans.is_empty() {
        out.push_str("# HELP csp_span_count Spans closed per span name.\n");
        out.push_str("# TYPE csp_span_count counter\n");
        for (name, s) in &m.spans {
            out.push_str(&format!(
                "csp_span_count{{name={}}} {}\n",
                label(name),
                s.count
            ));
        }
        out.push_str("# HELP csp_span_total_ns Inclusive nanoseconds per span name.\n");
        out.push_str("# TYPE csp_span_total_ns counter\n");
        for (name, s) in &m.spans {
            out.push_str(&format!(
                "csp_span_total_ns{{name={}}} {}\n",
                label(name),
                s.total_ns
            ));
        }
        out.push_str("# HELP csp_span_max_ns Longest single span per span name.\n");
        out.push_str("# TYPE csp_span_max_ns gauge\n");
        for (name, s) in &m.spans {
            out.push_str(&format!(
                "csp_span_max_ns{{name={}}} {}\n",
                label(name),
                s.max_ns
            ));
        }
    }
    out
}

/// Quotes and escapes a label value per the exposition format.
fn label(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromError {
    /// The offending line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PromError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PromError {}

/// Parses a text exposition produced by [`render_prometheus`] back into
/// a [`MetricsSnapshot`]. `# HELP`/`# TYPE` comments and blank lines
/// are skipped; unknown metric families are rejected (the parser exists
/// to round-trip our own output, not to scrape the world).
///
/// # Errors
///
/// Fails on malformed lines, unknown families, or histograms whose
/// bucket bounds do not match [`BUCKET_BOUNDS_NS`].
pub fn parse_prometheus(src: &str) -> Result<MetricsSnapshot, PromError> {
    let mut m = MetricsSnapshot::new();
    // name -> le-label -> cumulative count, accumulated then decoded.
    let mut buckets: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    let mut hist_sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut hist_counts: BTreeMap<String, u64> = BTreeMap::new();

    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_sample(line).map_err(|message| PromError {
            line: line_no,
            message,
        })?;
        let name = sample.name_label.ok_or_else(|| PromError {
            line: line_no,
            message: "missing name label".into(),
        })?;
        match sample.family.as_str() {
            "csp_counter" => {
                m.counters.insert(name, sample.value);
            }
            // Mirror of the `obs.events_dropped` counter; inserting it
            // again is idempotent, so the exposition round-trips.
            "csp_events_dropped" => {
                m.counters.insert(name, sample.value);
            }
            "csp_duration_ns_bucket" => {
                let le = sample.le_label.ok_or_else(|| PromError {
                    line: line_no,
                    message: "bucket sample without le label".into(),
                })?;
                buckets.entry(name).or_default().insert(le, sample.value);
            }
            "csp_duration_ns_sum" => {
                hist_sums.insert(name, sample.value);
            }
            "csp_duration_ns_count" => {
                hist_counts.insert(name, sample.value);
            }
            "csp_span_count" => m.spans.entry(name).or_default().count = sample.value,
            "csp_span_total_ns" => m.spans.entry(name).or_default().total_ns = sample.value,
            "csp_span_max_ns" => m.spans.entry(name).or_default().max_ns = sample.value,
            other => {
                return Err(PromError {
                    line: line_no,
                    message: format!("unknown metric family `{other}`"),
                })
            }
        }
    }

    for (name, les) in buckets {
        let mut h = Histogram {
            sum: hist_sums.get(&name).copied().unwrap_or(0),
            count: hist_counts.get(&name).copied().unwrap_or(0),
            ..Histogram::default()
        };
        let mut prev = 0u64;
        for (i, slot) in h.counts.iter_mut().enumerate() {
            let le = match BUCKET_BOUNDS_NS.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let cumulative = *les.get(&le).ok_or_else(|| PromError {
                line: 0,
                message: format!("histogram `{name}` missing bucket le=\"{le}\""),
            })?;
            *slot = cumulative.checked_sub(prev).ok_or_else(|| PromError {
                line: 0,
                message: format!("histogram `{name}` buckets are not cumulative at le=\"{le}\""),
            })?;
            prev = cumulative;
        }
        if les.len() != BUCKET_BOUNDS_NS.len() + 1 {
            return Err(PromError {
                line: 0,
                message: format!("histogram `{name}` has unexpected extra buckets"),
            });
        }
        m.histograms.insert(name, h);
    }
    Ok(m)
}

struct Sample {
    family: String,
    name_label: Option<String>,
    le_label: Option<String>,
    value: u64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let brace = line.find('{').ok_or("sample without labels")?;
    let family = line[..brace].to_string();
    let rest = &line[brace + 1..];
    let mut name_label = None;
    let mut le_label = None;
    let mut consumed = 0;
    loop {
        // label name
        let start = consumed;
        let eq = rest[start..].find('=').ok_or("label without `=`")? + start;
        let key = rest[start..eq].trim().to_string();
        // quoted value with escapes
        let mut value = String::new();
        let mut pos = eq + 1;
        if rest.as_bytes().get(pos) != Some(&b'"') {
            return Err("label value is not quoted".into());
        }
        pos += 1;
        let bytes = rest.as_bytes();
        loop {
            match bytes.get(pos) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => return Err(format!("bad label escape {other:?}")),
                    }
                    pos += 2;
                }
                Some(_) => {
                    let ch = rest[pos..].chars().next().expect("non-empty");
                    value.push(ch);
                    pos += ch.len_utf8();
                }
            }
        }
        match key.as_str() {
            "name" => name_label = Some(value),
            "le" => le_label = Some(value),
            other => return Err(format!("unknown label `{other}`")),
        }
        match bytes.get(pos) {
            Some(b',') => consumed = pos + 1,
            Some(b'}') => {
                consumed = pos + 1;
                break;
            }
            other => return Err(format!("bad label separator {other:?}")),
        }
    }
    let value_text = rest[consumed..].trim();
    let value = value_text
        .parse::<u64>()
        .map_err(|_| format!("bad sample value `{value_text}`"))?;
    Ok(Sample {
        family,
        name_label,
        le_label,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SpanStat;
    use proptest::prelude::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("trace.events", 42)
            .set_counter("run.rounds", 7);
        let mut h = Histogram::default();
        h.record(500);
        h.record(700_000);
        h.record(2_000_000_000);
        m.histograms.insert("step.duration".into(), h);
        m.spans.insert(
            "fixpoint".into(),
            SpanStat {
                count: 3,
                total_ns: 900,
                max_ns: 400,
            },
        );
        m
    }

    #[test]
    fn exposition_round_trips() {
        let m = sample_snapshot();
        let text = render_prometheus(&m);
        assert_eq!(parse_prometheus(&text).unwrap(), m);
    }

    #[test]
    fn buckets_are_cumulative() {
        let m = sample_snapshot();
        let text = render_prometheus(&m);
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("csp_duration_ns_bucket"))
            .unwrap();
        assert!(last_bucket.contains("le=\"+Inf\""));
        assert!(last_bucket.ends_with(" 3"), "{last_bucket}");
        // The 1µs bucket already counts the 500ns observation.
        assert!(text.contains("le=\"1000\"} 1"));
        // A mid-ladder bucket counts everything at or below it.
        assert!(text.contains("le=\"1000000\"} 2"));
    }

    #[test]
    fn label_escaping_survives_hostile_names() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("weird\"name\\with\nstuff", 1);
        let text = render_prometheus(&m);
        assert_eq!(parse_prometheus(&text).unwrap(), m);
    }

    #[test]
    fn events_dropped_gets_its_own_gauge_family() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("obs.events_dropped", 9);
        let text = render_prometheus(&m);
        assert!(text.contains("# TYPE csp_events_dropped gauge"));
        assert!(text.contains("csp_events_dropped{name=\"obs.events_dropped\"} 9"));
        assert_eq!(parse_prometheus(&text).unwrap(), m);
        // Absent counter, absent family.
        let none = render_prometheus(&MetricsSnapshot::new());
        assert!(!none.contains("csp_events_dropped"));
    }

    #[test]
    fn unknown_families_are_rejected() {
        let e = parse_prometheus("node_load1{name=\"x\"} 3\n").unwrap_err();
        assert!(e.message.contains("unknown metric family"));
    }

    #[test]
    fn non_cumulative_buckets_are_rejected() {
        let m = sample_snapshot();
        let text = render_prometheus(&m).replace("le=\"1000\"} 1", "le=\"1000\"} 9");
        let e = parse_prometheus(&text).unwrap_err();
        assert!(e.message.contains("not cumulative"), "{e}");
    }

    /// Metric names for generated snapshots, including hostile ones the
    /// label escaping must survive.
    fn name_for(i: u8) -> String {
        const NAMES: [&str; 8] = [
            "trace.events",
            "run.rounds",
            "fixpoint.iter",
            "sat.nodes",
            "spaced out",
            "quo\"te",
            "back\\slash",
            "new\nline",
        ];
        NAMES[i as usize % NAMES.len()].to_string()
    }

    proptest! {
        #[test]
        fn arbitrary_snapshots_round_trip(
            counters in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 0..6),
            histograms in proptest::collection::vec(
                (0u8..8, proptest::collection::vec(0u64..3_000_000_000, 0..30)),
                0..4
            ),
            spans in proptest::collection::vec(
                (0u8..8, (0u64..1000, 0u64..u64::MAX, 0u64..u64::MAX)),
                0..6
            ),
        ) {
            let mut m = MetricsSnapshot::new();
            for (i, v) in counters {
                m.counters.insert(name_for(i), v);
            }
            for (i, values) in histograms {
                let h = m.histograms.entry(name_for(i)).or_default();
                for v in values {
                    h.record(v);
                }
            }
            for (i, (count, total_ns, max_ns)) in spans {
                m.spans.insert(name_for(i), SpanStat { count, total_ns, max_ns });
            }
            let text = render_prometheus(&m);
            prop_assert_eq!(parse_prometheus(&text).unwrap(), m);
        }
    }
}
