//! Substitution of values for variables in expressions and processes.
//!
//! The paper's rules use substitutions like `P^x_v` (replace free `x` by
//! `v`, rule 6) and the instantiation `Q'` formed from an array body `Q`
//! by replacing the parameter `i` by the value of the subscript
//! (§1.2(3)). Because we only ever substitute *constants* (values), no
//! variable capture can occur; binders (`c?x:M -> P`) simply stop the
//! substitution of their own variable.

use std::sync::Arc;

use csp_trace::Value;

use crate::{ChanRef, Env, EvalError, Expr, Process, SetExpr};

fn expr_has_free(e: &Expr, x: &str) -> bool {
    match e {
        Expr::Const(_) => false,
        Expr::Var(y) => y == x,
        Expr::Bin(_, a, b) => expr_has_free(a, x) || expr_has_free(b, x),
        Expr::Un(_, a) => expr_has_free(a, x),
        Expr::Tuple(es) => es.iter().any(|e| expr_has_free(e, x)),
        Expr::ArrayRef(_, idx) => expr_has_free(idx, x),
    }
}

fn setexpr_has_free(s: &SetExpr, x: &str) -> bool {
    match s {
        SetExpr::Nat | SetExpr::Named(_) => false,
        SetExpr::Range(lo, hi) => expr_has_free(lo, x) || expr_has_free(hi, x),
        SetExpr::Enum(es) => es.iter().any(|e| expr_has_free(e, x)),
    }
}

fn chanref_has_free(c: &ChanRef, x: &str) -> bool {
    c.indices().iter().any(|e| expr_has_free(e, x))
}

/// True when variable `x` occurs free in `p` — exactly when
/// [`subst_process`] for `x` could change the term. A read-only
/// traversal, so callers can use it to skip no-op substitutions (the
/// common case when re-closing an already-closed network state).
pub fn process_has_free(p: &Process, x: &str) -> bool {
    match p {
        Process::Stop | Process::Error(_) => false,
        Process::Call { args, .. } => args.iter().any(|e| expr_has_free(e, x)),
        Process::Output { chan, msg, then } => {
            chanref_has_free(chan, x) || expr_has_free(msg, x) || process_has_free(then, x)
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            chanref_has_free(chan, x)
                || setexpr_has_free(set, x)
                || (var != x && process_has_free(then, x))
        }
        Process::Choice(a, b) => process_has_free(a, x) || process_has_free(b, x),
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => {
            process_has_free(left, x)
                || process_has_free(right, x)
                || left_alpha
                    .as_ref()
                    .is_some_and(|cs| cs.iter().any(|c| chanref_has_free(c, x)))
                || right_alpha
                    .as_ref()
                    .is_some_and(|cs| cs.iter().any(|c| chanref_has_free(c, x)))
        }
        Process::Hide { channels, body } => {
            channels.iter().any(|c| chanref_has_free(c, x)) || process_has_free(body, x)
        }
    }
}

/// `e^x_v` — replaces every free occurrence of variable `x` in `e` by the
/// constant `v`.
///
/// # Examples
///
/// ```
/// use csp_lang::{subst_expr, Expr};
/// use csp_trace::Value;
///
/// let e = Expr::var("x").add(Expr::var("y"));
/// let e2 = subst_expr(&e, "x", &Value::Int(3));
/// assert_eq!(e2.to_string(), "(3 + y)");
/// ```
pub fn subst_expr(e: &Expr, x: &str, v: &Value) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(y) => {
            if y == x {
                Expr::Const(v.clone())
            } else {
                e.clone()
            }
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_expr(a, x, v)),
            Box::new(subst_expr(b, x, v)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(subst_expr(a, x, v))),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| subst_expr(e, x, v)).collect()),
        Expr::ArrayRef(name, idx) => Expr::ArrayRef(name.clone(), Box::new(subst_expr(idx, x, v))),
    }
}

fn subst_setexpr(s: &SetExpr, x: &str, v: &Value) -> SetExpr {
    match s {
        SetExpr::Nat | SetExpr::Named(_) => s.clone(),
        SetExpr::Range(lo, hi) => SetExpr::Range(
            Box::new(subst_expr(lo, x, v)),
            Box::new(subst_expr(hi, x, v)),
        ),
        SetExpr::Enum(es) => SetExpr::Enum(es.iter().map(|e| subst_expr(e, x, v)).collect()),
    }
}

fn subst_chanref(c: &ChanRef, x: &str, v: &Value) -> ChanRef {
    ChanRef::with_indices(
        c.base(),
        c.indices().iter().map(|e| subst_expr(e, x, v)).collect(),
    )
}

/// `P^x_v` — replaces every free occurrence of variable `x` in process
/// `P` by the constant `v` (rule 6 of §2.1 and the array-instantiation of
/// §1.2(3)).
///
/// # Examples
///
/// ```
/// use csp_lang::{parse_process, subst_process};
/// use csp_trace::Value;
///
/// let p = parse_process("wire!x -> q[x]").unwrap();
/// let p3 = subst_process(&p, "x", &Value::nat(3));
/// assert_eq!(p3.to_string(), "wire!3 -> q[3]");
///
/// // Binders shadow: the inner x is untouched.
/// let p = parse_process("wire!x -> input?x:NAT -> out!x -> STOP").unwrap();
/// let p3 = subst_process(&p, "x", &Value::nat(3));
/// assert_eq!(p3.to_string(), "wire!3 -> input?x:NAT -> out!x -> STOP");
/// ```
pub fn subst_process(p: &Process, x: &str, v: &Value) -> Process {
    match p {
        Process::Stop => Process::Stop,
        Process::Error(_) => p.clone(),
        Process::Call { name, args } => Process::Call {
            name: name.clone(),
            args: args.iter().map(|e| subst_expr(e, x, v)).collect(),
        },
        Process::Output { chan, msg, then } => Process::Output {
            chan: subst_chanref(chan, x, v),
            msg: subst_expr(msg, x, v),
            then: Arc::new(subst_process(then, x, v)),
        },
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            let new_then = if var == x {
                // x is rebound below; substitution stops here.
                then.clone()
            } else {
                Arc::new(subst_process(then, x, v))
            };
            Process::Input {
                chan: subst_chanref(chan, x, v),
                var: var.clone(),
                set: subst_setexpr(set, x, v),
                then: new_then,
            }
        }
        Process::Choice(a, b) => Process::Choice(
            Arc::new(subst_process(a, x, v)),
            Arc::new(subst_process(b, x, v)),
        ),
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => Process::Parallel {
            left: Arc::new(subst_process(left, x, v)),
            right: Arc::new(subst_process(right, x, v)),
            left_alpha: left_alpha
                .as_ref()
                .map(|cs| cs.iter().map(|c| subst_chanref(c, x, v)).collect()),
            right_alpha: right_alpha
                .as_ref()
                .map(|cs| cs.iter().map(|c| subst_chanref(c, x, v)).collect()),
        },
        Process::Hide { channels, body } => Process::Hide {
            channels: channels.iter().map(|c| subst_chanref(c, x, v)).collect(),
            body: Arc::new(subst_process(body, x, v)),
        },
    }
}

/// Substitutes *every* binding of `env` into `p`, producing the closed
/// instantiation of an array body (or the identity for an empty
/// environment).
///
/// # Errors
///
/// Currently infallible in practice (substituting constants cannot fail),
/// but returns `Result` so the definition-resolution pipeline composes
/// with genuine evaluation errors.
pub fn close_process(p: &Process, env: &Env) -> Result<Process, EvalError> {
    // Substitute only the bindings that actually occur free: re-closing an
    // already-closed state (every rebuild step of the operational
    // semantics) then costs one read-only scan per binding and a single
    // shallow clone, instead of a full rebuild per binding.
    let mut out: Option<Process> = None;
    for (x, v) in env.iter() {
        let cur = out.as_ref().unwrap_or(p);
        if process_has_free(cur, x) {
            out = Some(subst_process(cur, x, v));
        }
    }
    Ok(out.unwrap_or_else(|| p.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_expr_replaces_free_occurrences() {
        let e = Expr::var("x").add(Expr::var("x"));
        let e2 = subst_expr(&e, "x", &Value::Int(2));
        assert!(e2.is_closed());
        assert_eq!(e2.eval(&Env::new()).unwrap(), Value::Int(4));
    }

    #[test]
    fn subst_expr_leaves_other_vars() {
        let e = Expr::var("y");
        assert_eq!(subst_expr(&e, "x", &Value::Int(1)), e);
    }

    #[test]
    fn subst_process_output_and_call() {
        let p = Process::output("wire", Expr::var("x"), Process::call1("q", Expr::var("x")));
        let p2 = subst_process(&p, "x", &Value::Int(5));
        match p2 {
            Process::Output { msg, then, .. } => {
                assert_eq!(msg, Expr::int(5));
                assert_eq!(*then, Process::call1("q", Expr::int(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn input_binder_shadows() {
        // (input?x:M -> wire!x -> STOP)^x_v leaves the bound x alone.
        let p = Process::input(
            "input",
            "x",
            SetExpr::Nat,
            Process::output("wire", Expr::var("x"), Process::Stop),
        );
        let p2 = subst_process(&p, "x", &Value::Int(9));
        assert_eq!(p2, p);
    }

    #[test]
    fn input_set_and_channel_are_substituted_even_when_var_shadows() {
        // The set M and channel subscripts are outside the binder's scope.
        let p = Process::Input {
            chan: ChanRef::indexed("row", Expr::var("x")),
            var: "x".to_string(),
            set: SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::var("x"))),
            then: std::sync::Arc::new(Process::Stop),
        };
        let p2 = subst_process(&p, "x", &Value::Int(3));
        match p2 {
            Process::Input { chan, set, .. } => {
                assert_eq!(chan.indices()[0], Expr::int(3));
                assert_eq!(
                    set,
                    SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_process_applies_all_bindings() {
        let p = Process::output("c", Expr::var("a").add(Expr::var("b")), Process::Stop);
        let env = Env::new().bind("a", Value::Int(1)).bind("b", Value::Int(2));
        let p2 = close_process(&p, &env).unwrap();
        match p2 {
            Process::Output { msg, .. } => {
                assert_eq!(msg.eval(&Env::new()).unwrap(), Value::Int(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_under_choice_and_parallel_and_hide() {
        let p = Process::output("a", Expr::var("x"), Process::Stop)
            .or(Process::output("b", Expr::var("x"), Process::Stop))
            .par(Process::call1("r", Expr::var("x")))
            .hide(vec![ChanRef::indexed("h", Expr::var("x"))]);
        let p2 = subst_process(&p, "x", &Value::Int(1));
        let shown = format!("{p2:?}");
        assert!(!shown.contains("Var(\"x\")"), "left a free x: {shown}");
    }
}

/// `e^x_r` — replaces every free occurrence of variable `x` in `e` by the
/// *expression* `r` (the generalisation of [`subst_expr`] needed by
/// ∀-elimination, where the instantiating argument may itself contain
/// variables).
pub fn subst_expr_with(e: &Expr, x: &str, r: &Expr) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(y) => {
            if y == x {
                r.clone()
            } else {
                e.clone()
            }
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_expr_with(a, x, r)),
            Box::new(subst_expr_with(b, x, r)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(subst_expr_with(a, x, r))),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|t| subst_expr_with(t, x, r)).collect()),
        Expr::ArrayRef(name, idx) => {
            Expr::ArrayRef(name.clone(), Box::new(subst_expr_with(idx, x, r)))
        }
    }
}

/// `P^x_r` with an expression replacement — see [`subst_expr_with`].
/// No capture is possible only when `r`'s variables are not bound inside
/// `P`; callers (the proof checker) use fresh variables.
pub fn subst_process_with(p: &Process, x: &str, r: &Expr) -> Process {
    let sub_set = |s: &SetExpr| match s {
        SetExpr::Nat | SetExpr::Named(_) => s.clone(),
        SetExpr::Range(lo, hi) => SetExpr::Range(
            Box::new(subst_expr_with(lo, x, r)),
            Box::new(subst_expr_with(hi, x, r)),
        ),
        SetExpr::Enum(es) => SetExpr::Enum(es.iter().map(|e| subst_expr_with(e, x, r)).collect()),
    };
    let sub_chan = |c: &ChanRef| {
        ChanRef::with_indices(
            c.base(),
            c.indices()
                .iter()
                .map(|e| subst_expr_with(e, x, r))
                .collect(),
        )
    };
    match p {
        Process::Stop => Process::Stop,
        Process::Error(_) => p.clone(),
        Process::Call { name, args } => Process::Call {
            name: name.clone(),
            args: args.iter().map(|e| subst_expr_with(e, x, r)).collect(),
        },
        Process::Output { chan, msg, then } => Process::Output {
            chan: sub_chan(chan),
            msg: subst_expr_with(msg, x, r),
            then: Arc::new(subst_process_with(then, x, r)),
        },
        Process::Input {
            chan,
            var,
            set,
            then,
        } => Process::Input {
            chan: sub_chan(chan),
            var: var.clone(),
            set: sub_set(set),
            then: if var == x {
                then.clone()
            } else {
                Arc::new(subst_process_with(then, x, r))
            },
        },
        Process::Choice(a, b) => Process::Choice(
            Arc::new(subst_process_with(a, x, r)),
            Arc::new(subst_process_with(b, x, r)),
        ),
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => Process::Parallel {
            left: Arc::new(subst_process_with(left, x, r)),
            right: Arc::new(subst_process_with(right, x, r)),
            left_alpha: left_alpha
                .as_ref()
                .map(|cs| cs.iter().map(&sub_chan).collect()),
            right_alpha: right_alpha
                .as_ref()
                .map(|cs| cs.iter().map(&sub_chan).collect()),
        },
        Process::Hide { channels, body } => Process::Hide {
            channels: channels.iter().map(&sub_chan).collect(),
            body: Arc::new(subst_process_with(body, x, r)),
        },
    }
}

#[cfg(test)]
mod expr_subst_tests {
    use super::*;

    #[test]
    fn expr_level_substitution_replaces_with_expression() {
        let e = Expr::var("x").add(Expr::int(1));
        let r = subst_expr_with(&e, "x", &Expr::var("v"));
        assert_eq!(r.to_string(), "(v + 1)");
    }

    #[test]
    fn process_level_substitution_respects_binders() {
        let p = crate::parse_process("c!x -> c?x:NAT -> d!x -> STOP").unwrap();
        let q = subst_process_with(&p, "x", &Expr::var("v"));
        assert_eq!(q.to_string(), "c!v -> c?x:NAT -> d!x -> STOP");
    }
}
