//! Static validation of definition lists.
//!
//! Checks the well-formedness conditions the paper assumes implicitly:
//! every referenced process name is defined with the right number of
//! subscripts, every variable is bound (by an input prefix or an array
//! parameter), and recursion is guarded by at least one communication —
//! unguarded equations like `p = p` are legal in the model (they denote
//! `STOP`'s trace set) but almost always a mistake, so they are flagged.

use std::collections::BTreeSet;

use crate::{Definitions, Expr, Process};

/// A problem found in a definition list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A call to a process name with no defining equation.
    UndefinedProcess {
        /// The definition whose body contains the call.
        in_def: String,
        /// The missing name.
        name: String,
    },
    /// A call whose subscript count disagrees with the definition.
    ArityMismatch {
        /// The definition whose body contains the call.
        in_def: String,
        /// The called name.
        name: String,
        /// Subscripts supplied.
        got: usize,
        /// Subscripts expected.
        expected: usize,
    },
    /// A variable used without a binding input prefix or array parameter.
    /// Array names (like the constant vector `v` of the multiplier) are
    /// reported too: hosts must bind their cells in the environment.
    UnboundVariable {
        /// The definition whose body uses the variable.
        in_def: String,
        /// The variable name.
        var: String,
    },
    /// The equation can reach a recursive call without performing any
    /// communication, e.g. `p = p` or `p = p | c!0 -> p`.
    UnguardedRecursion {
        /// The offending definition.
        name: String,
    },
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationIssue::UndefinedProcess { in_def, name } => {
                write!(f, "in `{in_def}`: call to undefined process `{name}`")
            }
            ValidationIssue::ArityMismatch {
                in_def,
                name,
                got,
                expected,
            } => write!(
                f,
                "in `{in_def}`: `{name}` called with {got} subscript(s), defined with {expected}"
            ),
            ValidationIssue::UnboundVariable { in_def, var } => {
                write!(f, "in `{in_def}`: unbound variable `{var}`")
            }
            ValidationIssue::UnguardedRecursion { name } => {
                write!(f, "`{name}` can recurse without communicating")
            }
        }
    }
}

/// Validates a definition list, returning all issues found (empty when
/// clean).
///
/// `host_vars` names variables the embedding program promises to bind in
/// the evaluation environment — e.g. the constant vector `v` of the
/// multiplier example (§1.3(5)).
///
/// # Examples
///
/// ```
/// use csp_lang::{parse_definitions, validate};
///
/// let defs = parse_definitions("p = c!0 -> q").unwrap();
/// let issues = validate(&defs, &[]);
/// assert_eq!(issues.len(), 1); // q is undefined
/// ```
pub fn validate(defs: &Definitions, host_vars: &[&str]) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let host: BTreeSet<&str> = host_vars.iter().copied().collect();

    for def in defs.iter() {
        // Unbound variables: free vars of the body minus the array param
        // and host-supplied names.
        let mut fv = crate::free_vars_process(def.body());
        if let Some((param, _)) = def.param() {
            fv.remove(param);
        }
        for v in fv {
            if !host.contains(v.as_str()) {
                issues.push(ValidationIssue::UnboundVariable {
                    in_def: def.name().to_string(),
                    var: v,
                });
            }
        }

        // Call-site checks.
        check_calls(def.name(), def.body(), defs, &mut issues);

        // Guardedness.
        let mut visited = BTreeSet::new();
        if unguarded_reaches(def.body(), defs, def.name(), &mut visited) {
            issues.push(ValidationIssue::UnguardedRecursion {
                name: def.name().to_string(),
            });
        }
    }
    issues
}

fn check_calls(in_def: &str, p: &Process, defs: &Definitions, issues: &mut Vec<ValidationIssue>) {
    match p {
        // Error holes contribute no issues — the parse error that
        // produced them already owns the report.
        Process::Stop | Process::Error(_) => {}
        Process::Call { name, args } => match defs.get(name) {
            None => issues.push(ValidationIssue::UndefinedProcess {
                in_def: in_def.to_string(),
                name: name.clone(),
            }),
            Some(def) if def.arity() != args.len() => {
                issues.push(ValidationIssue::ArityMismatch {
                    in_def: in_def.to_string(),
                    name: name.clone(),
                    got: args.len(),
                    expected: def.arity(),
                });
            }
            Some(_) => {}
        },
        Process::Output { then, .. } | Process::Input { then, .. } => {
            check_calls(in_def, then, defs, issues);
        }
        Process::Choice(a, b) => {
            check_calls(in_def, a, defs, issues);
            check_calls(in_def, b, defs, issues);
        }
        Process::Parallel { left, right, .. } => {
            check_calls(in_def, left, defs, issues);
            check_calls(in_def, right, defs, issues);
        }
        Process::Hide { body, .. } => check_calls(in_def, body, defs, issues),
    }
}

/// True if, starting from `p`, a call to `target` is reachable without
/// crossing a communication prefix.
fn unguarded_reaches(
    p: &Process,
    defs: &Definitions,
    target: &str,
    visited: &mut BTreeSet<String>,
) -> bool {
    match p {
        Process::Stop | Process::Output { .. } | Process::Input { .. } | Process::Error(_) => false,
        Process::Call { name, .. } => {
            if name == target {
                return true;
            }
            if !visited.insert(name.clone()) {
                return false;
            }
            defs.get(name)
                .is_some_and(|d| unguarded_reaches(d.body(), defs, target, visited))
        }
        Process::Choice(a, b) => {
            unguarded_reaches(a, defs, target, visited)
                || unguarded_reaches(b, defs, target, visited)
        }
        Process::Parallel { left, right, .. } => {
            unguarded_reaches(left, defs, target, visited)
                || unguarded_reaches(right, defs, target, visited)
        }
        Process::Hide { body, .. } => unguarded_reaches(body, defs, target, visited),
    }
}

/// Convenience: true when [`validate`] reports nothing.
pub fn is_well_formed(defs: &Definitions, host_vars: &[&str]) -> bool {
    validate(defs, host_vars).is_empty()
}

#[allow(dead_code)]
fn _suppress_unused_expr_import(e: &Expr) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_definitions;

    #[test]
    fn clean_definitions_have_no_issues() {
        let defs = parse_definitions(
            "copier = input?x:NAT -> wire!x -> copier
             recopier = wire?y:NAT -> output!y -> recopier
             pipeline = chan wire; (copier || recopier)",
        )
        .unwrap();
        assert!(validate(&defs, &[]).is_empty());
    }

    #[test]
    fn undefined_process_detected() {
        let defs = parse_definitions("p = c!0 -> ghost").unwrap();
        let issues = validate(&defs, &[]);
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::UndefinedProcess { name, .. } if name == "ghost")
        ));
    }

    #[test]
    fn arity_mismatch_detected() {
        let defs = parse_definitions(
            "q[x:0..3] = wire!x -> q[x]
             p = c!0 -> q",
        )
        .unwrap();
        let issues = validate(&defs, &[]);
        assert!(issues.iter().any(|i| matches!(
            i,
            ValidationIssue::ArityMismatch {
                got: 0,
                expected: 1,
                ..
            }
        )));
    }

    #[test]
    fn unbound_variable_detected_and_host_vars_allowed() {
        let defs = parse_definitions("p = c!x -> p").unwrap();
        let issues = validate(&defs, &[]);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnboundVariable { var, .. } if var == "x")));
        // Declaring x host-supplied silences it.
        assert!(validate(&defs, &["x"]).is_empty());
    }

    #[test]
    fn array_param_binds_variable() {
        let defs = parse_definitions("q[x:0..3] = wire!x -> q[x]").unwrap();
        assert!(validate(&defs, &[]).is_empty());
    }

    #[test]
    fn multiplier_needs_v_declared() {
        let defs = parse_definitions(
            "mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]",
        )
        .unwrap();
        assert!(!validate(&defs, &[]).is_empty());
        assert!(validate(&defs, &["v"]).is_empty());
    }

    #[test]
    fn unguarded_recursion_flagged() {
        let defs = parse_definitions("p = p").unwrap();
        let issues = validate(&defs, &[]);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnguardedRecursion { name } if name == "p")));
        // Guarded recursion is fine.
        let ok = parse_definitions("p = c!0 -> p").unwrap();
        assert!(validate(&ok, &[]).is_empty());
        // Unguarded through a choice arm.
        let half = parse_definitions("p = c!0 -> p | p").unwrap();
        assert!(!validate(&half, &[]).is_empty());
    }

    #[test]
    fn mutual_unguarded_recursion_flagged() {
        let defs = parse_definitions(
            "p = q
             q = p",
        )
        .unwrap();
        let issues = validate(&defs, &[]);
        assert_eq!(
            issues
                .iter()
                .filter(|i| matches!(i, ValidationIssue::UnguardedRecursion { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn issue_display_is_informative() {
        let i = ValidationIssue::UndefinedProcess {
            in_def: "p".into(),
            name: "ghost".into(),
        };
        assert!(i.to_string().contains("ghost"));
    }
}
