//! Process expressions — §1.2 of the paper.

use std::fmt;
use std::sync::Arc;

use csp_trace::Channel;

use crate::{Env, EvalError, Expr, SetExpr, Span};

/// A syntactic reference to a channel, possibly with symbolic subscripts:
/// `wire`, `col[i-1]`, `row[i]`.
///
/// Evaluating the subscripts in an environment yields a concrete
/// [`Channel`].
///
/// # Examples
///
/// ```
/// use csp_lang::{ChanRef, Env, Expr};
/// use csp_trace::{Channel, Value};
///
/// let c = ChanRef::indexed("col", Expr::var("i").sub(Expr::int(1)));
/// let env = Env::new().bind("i", Value::Int(2));
/// assert_eq!(c.resolve(&env).unwrap(), Channel::indexed("col", 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanRef {
    /// The array (or plain) channel name.
    base: String,
    /// Subscript expressions; empty for a plain channel.
    indices: Vec<Expr>,
}

impl ChanRef {
    /// An unsubscripted channel reference.
    pub fn simple(base: &str) -> Self {
        ChanRef {
            base: base.to_string(),
            indices: Vec::new(),
        }
    }

    /// A singly-subscripted channel reference `base[index]`.
    pub fn indexed(base: &str, index: Expr) -> Self {
        ChanRef {
            base: base.to_string(),
            indices: vec![index],
        }
    }

    /// A channel reference with an arbitrary subscript path.
    pub fn with_indices(base: &str, indices: Vec<Expr>) -> Self {
        ChanRef {
            base: base.to_string(),
            indices,
        }
    }

    /// The array (or plain) name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The subscript expressions.
    pub fn indices(&self) -> &[Expr] {
        &self.indices
    }

    /// Evaluates the subscripts to obtain a concrete channel.
    ///
    /// # Errors
    ///
    /// Fails if a subscript expression fails to evaluate or is not an
    /// integer.
    pub fn resolve(&self, env: &Env) -> Result<Channel, EvalError> {
        let mut idx = Vec::with_capacity(self.indices.len());
        for e in &self.indices {
            let v = e.eval(env)?;
            let i = v.as_int().ok_or_else(|| EvalError::BadSubscript {
                name: self.base.clone(),
            })?;
            idx.push(i);
        }
        Ok(Channel::with_indices(&self.base, idx))
    }
}

impl From<&str> for ChanRef {
    fn from(base: &str) -> Self {
        ChanRef::simple(base)
    }
}

impl fmt::Display for ChanRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for e in &self.indices {
            write!(f, "[{e}]")?;
        }
        Ok(())
    }
}

/// A process expression (§1.2).
///
/// Recursion is expressed exclusively through [`Process::Call`] to a name
/// defined in a [`Definitions`](crate::Definitions) list, exactly as in
/// the paper — so the syntax tree itself is acyclic. Subterms are held in
/// [`Arc`] so that the operational semantics can rebuild the stationary
/// parts of a network term (the unchanged side of a `||`, the body of a
/// `chan L; …`) by reference-count bumps instead of deep copies; terms
/// are immutable after construction, which keeps the sharing sound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Process {
    /// `STOP` — the process that never does anything (§1.2(1)).
    Stop,
    /// A (possibly subscripted) process-name reference: `copier`, `q[x]`,
    /// `mult[i]` (§1.2(2)–(3)).
    Call {
        /// The process or process-array name.
        name: String,
        /// Subscript expressions; empty for a plain name.
        args: Vec<Expr>,
    },
    /// `c!e -> P` — transmit the value of `e` on `c`, then behave like `P`
    /// (§1.2(4)).
    Output {
        /// The channel to send on.
        chan: ChanRef,
        /// The message expression.
        msg: Expr,
        /// The continuation.
        then: Arc<Process>,
    },
    /// `c?x:M -> P` — communicate any value of `M` on `c`, binding it to
    /// `x` in `P` (§1.2(5)).
    Input {
        /// The channel to receive on.
        chan: ChanRef,
        /// The bound variable naming the received value.
        var: String,
        /// The set of acceptable messages.
        set: SetExpr,
        /// The continuation, in which `var` is bound.
        then: Arc<Process>,
    },
    /// `P | Q` — behave like `P` or like `Q`; the choice may be regarded
    /// as non-deterministic (§1.2(6)).
    Choice(Arc<Process>, Arc<Process>),
    /// `P || Q` — a network of `P` and `Q` connected by their common
    /// channels (§1.2(7)). The alphabets `X` and `Y` default to the sets of
    /// channel names occurring in each operand (the paper's convention when
    /// "the content of the sets X and Y are clear from the context") but may
    /// be given explicitly for open networks.
    Parallel {
        /// Left operand.
        left: Arc<Process>,
        /// Right operand.
        right: Arc<Process>,
        /// Explicit alphabet of the left operand (base channel names);
        /// `None` means "infer from the text of the operand".
        left_alpha: Option<Vec<ChanRef>>,
        /// Explicit alphabet of the right operand.
        right_alpha: Option<Vec<ChanRef>>,
    },
    /// `chan L; P` — conceal communications on the channels of `L`
    /// (§1.2(8)).
    Hide {
        /// The concealed channels. A reference with unresolved subscripts
        /// conceals the whole family, e.g. `col[0..3]` is expanded by the
        /// parser to the individual elements when bounds are constant.
        channels: Vec<ChanRef>,
        /// The network whose internal channels are concealed.
        body: Arc<Process>,
    },
    /// A hole left by error recovery: the recovering parser
    /// ([`parse_module`](crate::parse_module)) could not parse this
    /// region and resynchronised at the next definition boundary. The
    /// span covers the offending token. Semantically inert (behaves like
    /// `STOP`), so the rest of the module still parses, lints, and
    /// resolves names against it.
    Error(Span),
}

impl Process {
    /// A plain name reference.
    pub fn call(name: &str) -> Process {
        Process::Call {
            name: name.to_string(),
            args: Vec::new(),
        }
    }

    /// A subscripted name reference `name[arg]`.
    pub fn call1(name: &str, arg: Expr) -> Process {
        Process::Call {
            name: name.to_string(),
            args: vec![arg],
        }
    }

    /// `chan!msg -> self` builder.
    pub fn output(chan: impl Into<ChanRef>, msg: Expr, then: Process) -> Process {
        Process::Output {
            chan: chan.into(),
            msg,
            then: Arc::new(then),
        }
    }

    /// `chan?var:set -> self` builder.
    pub fn input(chan: impl Into<ChanRef>, var: &str, set: SetExpr, then: Process) -> Process {
        Process::Input {
            chan: chan.into(),
            var: var.to_string(),
            set,
            then: Arc::new(then),
        }
    }

    /// `self | other` builder.
    pub fn or(self, other: Process) -> Process {
        Process::Choice(Arc::new(self), Arc::new(other))
    }

    /// `self || other` builder with inferred alphabets.
    pub fn par(self, other: Process) -> Process {
        Process::Parallel {
            left: Arc::new(self),
            right: Arc::new(other),
            left_alpha: None,
            right_alpha: None,
        }
    }

    /// `chan channels; self` builder.
    pub fn hide(self, channels: Vec<ChanRef>) -> Process {
        Process::Hide {
            channels,
            body: Arc::new(self),
        }
    }

    /// Folds the n-ary parallel composition `p₁ || p₂ || … || pₙ`
    /// (left-associated, inferred alphabets), as used for the multiplier
    /// network of §1.3(5).
    ///
    /// Returns `STOP` for an empty iterator.
    pub fn par_all<I: IntoIterator<Item = Process>>(procs: I) -> Process {
        let mut it = procs.into_iter();
        match it.next() {
            None => Process::Stop,
            Some(first) => it.fold(first, Process::par),
        }
    }

    /// Number of syntactic nodes — a size measure used by generators and
    /// benchmarks.
    pub fn size(&self) -> usize {
        match self {
            Process::Stop | Process::Call { .. } | Process::Error(_) => 1,
            Process::Output { then, .. } => 1 + then.size(),
            Process::Input { then, .. } => 1 + then.size(),
            Process::Choice(a, b) => 1 + a.size() + b.size(),
            Process::Parallel { left, right, .. } => 1 + left.size() + right.size(),
            Process::Hide { body, .. } => 1 + body.size(),
        }
    }

    /// True when this process contains a [`Process::Error`] recovery
    /// hole anywhere — i.e. part of its source failed to parse.
    pub fn has_error_hole(&self) -> bool {
        match self {
            Process::Stop | Process::Call { .. } => false,
            Process::Error(_) => true,
            Process::Output { then, .. } | Process::Input { then, .. } => then.has_error_hole(),
            Process::Choice(a, b) => a.has_error_hole() || b.has_error_hole(),
            Process::Parallel { left, right, .. } => {
                left.has_error_hole() || right.has_error_hole()
            }
            Process::Hide { body, .. } => body.has_error_hole(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::Value;

    #[test]
    fn chanref_resolution_with_arithmetic_subscript() {
        // col[i-1] with i = 1 resolves to col[0] — multiplier boundary.
        let c = ChanRef::indexed("col", Expr::var("i").sub(Expr::int(1)));
        let env = Env::new().bind("i", Value::Int(1));
        assert_eq!(c.resolve(&env).unwrap(), Channel::indexed("col", 0));
    }

    #[test]
    fn chanref_rejects_symbol_subscripts() {
        let c = ChanRef::indexed("col", Expr::sym("ACK"));
        assert!(matches!(
            c.resolve(&Env::new()),
            Err(EvalError::BadSubscript { .. })
        ));
    }

    #[test]
    fn builders_compose_copier() {
        // copier = input?x:NAT -> wire!x -> copier
        let copier = Process::input(
            "input",
            "x",
            SetExpr::Nat,
            Process::output("wire", Expr::var("x"), Process::call("copier")),
        );
        assert_eq!(copier.size(), 3);
        match &copier {
            Process::Input { var, then, .. } => {
                assert_eq!(var, "x");
                assert!(matches!(**then, Process::Output { .. }));
            }
            other => panic!("expected input, got {other:?}"),
        }
    }

    #[test]
    fn par_all_folds_left() {
        let net = Process::par_all([
            Process::call("zeroes"),
            Process::call1("mult", Expr::int(1)),
            Process::call("last"),
        ]);
        assert_eq!(net.size(), 5);
        assert_eq!(Process::par_all([]), Process::Stop);
        assert_eq!(Process::par_all([Process::Stop]), Process::Stop);
    }

    #[test]
    fn display_of_chanref() {
        assert_eq!(ChanRef::simple("wire").to_string(), "wire");
        assert_eq!(
            ChanRef::indexed("col", Expr::var("i").sub(Expr::int(1))).to_string(),
            "col[(i - 1)]"
        );
    }
}
