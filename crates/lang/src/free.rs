//! Free-variable and channel-alphabet analysis.
//!
//! The parallel rule (§1.2(7)) needs "the set of channel names occurring
//! in `P`" — including those occurring via process-name references, so
//! [`channel_alphabet`] unfolds definitions (with a visited-set to
//! terminate on recursion). Free value-variables are needed by the
//! validity checker and by the proof rules' side conditions ("let `v` be
//! a fresh variable which is not free in `P`, `R` or `c`", rule 6).

use std::collections::BTreeSet;

use csp_trace::{ChannelSet, Value};

use crate::{ChanRef, Definitions, Env, EvalError, Expr, Process, SetExpr};

/// The free variables of an expression, in sorted order.
///
/// Array references `v[e]` contribute the free variables of `e` and the
/// array name itself (its cells are environment bindings).
///
/// # Examples
///
/// ```
/// use csp_lang::{free_vars_expr, parse_expr};
///
/// let e = parse_expr("3 * i + j").unwrap();
/// let fv = free_vars_expr(&e);
/// assert!(fv.contains("i") && fv.contains("j"));
/// ```
pub fn free_vars_expr(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_expr(e, &mut out);
    out
}

fn collect_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(x) => {
            out.insert(x.clone());
        }
        Expr::Bin(_, a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        Expr::Un(_, a) => collect_expr(a, out),
        Expr::Tuple(es) => {
            for e in es {
                collect_expr(e, out);
            }
        }
        Expr::ArrayRef(name, idx) => {
            out.insert(name.clone());
            collect_expr(idx, out);
        }
    }
}

fn collect_setexpr(s: &SetExpr, out: &mut BTreeSet<String>) {
    match s {
        SetExpr::Nat | SetExpr::Named(_) => {}
        SetExpr::Range(lo, hi) => {
            collect_expr(lo, out);
            collect_expr(hi, out);
        }
        SetExpr::Enum(es) => {
            for e in es {
                collect_expr(e, out);
            }
        }
    }
}

fn collect_chanref(c: &ChanRef, out: &mut BTreeSet<String>) {
    for e in c.indices() {
        collect_expr(e, out);
    }
}

/// The free value-variables of a process expression, in sorted order.
/// Input prefixes `c?x:M -> P` bind `x` in `P` (but not in `M` or the
/// channel subscripts).
///
/// # Examples
///
/// ```
/// use csp_lang::{free_vars_process, parse_process};
///
/// // The body of q[x:M]: x is free here, y is bound by the inputs.
/// let p = parse_process(
///     "wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])",
/// ).unwrap();
/// let fv = free_vars_process(&p);
/// assert!(fv.contains("x"));
/// assert!(!fv.contains("y"));
/// ```
pub fn free_vars_process(p: &Process) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_process(p, &mut out);
    out
}

fn collect_process(p: &Process, out: &mut BTreeSet<String>) {
    match p {
        Process::Stop | Process::Error(_) => {}
        Process::Call { args, .. } => {
            for e in args {
                collect_expr(e, out);
            }
        }
        Process::Output { chan, msg, then } => {
            collect_chanref(chan, out);
            collect_expr(msg, out);
            collect_process(then, out);
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            collect_chanref(chan, out);
            collect_setexpr(set, out);
            let mut inner = BTreeSet::new();
            collect_process(then, &mut inner);
            inner.remove(var);
            out.extend(inner);
        }
        Process::Choice(a, b) => {
            collect_process(a, out);
            collect_process(b, out);
        }
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => {
            collect_process(left, out);
            collect_process(right, out);
            for alpha in [left_alpha, right_alpha].into_iter().flatten() {
                for c in alpha {
                    collect_chanref(c, out);
                }
            }
        }
        Process::Hide { channels, body } => {
            for c in channels {
                collect_chanref(c, out);
            }
            collect_process(body, out);
        }
    }
}

/// The set of concrete channels a (closed) process expression can ever
/// communicate on — the alphabet `X` of §1.2(7) — obtained by walking the
/// text, resolving channel subscripts in `env`, and unfolding
/// process-name references through `defs` (each `(name, args)` pair is
/// visited once, so recursion terminates).
///
/// # Errors
///
/// Fails if a channel subscript or call argument contains a variable not
/// bound in `env`, or a referenced process is undefined.
///
/// # Examples
///
/// ```
/// use csp_lang::{channel_alphabet, parse_definitions, Env};
/// use csp_trace::Channel;
///
/// let defs = parse_definitions(
///     "copier = input?x:NAT -> wire!x -> copier",
/// ).unwrap();
/// let alpha = channel_alphabet(defs.get("copier").unwrap().body(), &defs, &Env::new()).unwrap();
/// assert!(alpha.contains(&Channel::simple("input")));
/// assert!(alpha.contains(&Channel::simple("wire")));
/// assert_eq!(alpha.len(), 2);
/// ```
pub fn channel_alphabet(
    p: &Process,
    defs: &Definitions,
    env: &Env,
) -> Result<ChannelSet, EvalError> {
    let mut out = ChannelSet::new();
    let mut visited = BTreeSet::new();
    walk_alphabet(p, defs, env, &mut out, &mut visited)?;
    Ok(out)
}

/// The subset of a process's alphabet it can ever *write* on — the
/// channels appearing in output position (`c!e`). Together with
/// [`channel_alphabet`] this recovers the direction of a committed
/// communication: among the components synchronizing on a channel, the
/// one with the channel in its output set is the sender, the others are
/// readers. Same traversal rules (and error cases) as
/// [`channel_alphabet`].
///
/// # Errors
///
/// Fails if a channel subscript or call argument contains a variable not
/// bound in `env`, or a referenced process is undefined.
///
/// # Examples
///
/// ```
/// use csp_lang::{output_channels, parse_definitions, Env};
/// use csp_trace::Channel;
///
/// let defs = parse_definitions(
///     "copier = input?x:NAT -> wire!x -> copier",
/// ).unwrap();
/// let w = output_channels(defs.get("copier").unwrap().body(), &defs, &Env::new()).unwrap();
/// assert!(w.contains(&Channel::simple("wire")));
/// assert!(!w.contains(&Channel::simple("input")));
/// ```
pub fn output_channels(
    p: &Process,
    defs: &Definitions,
    env: &Env,
) -> Result<ChannelSet, EvalError> {
    let mut out = ChannelSet::new();
    let mut visited = BTreeSet::new();
    walk_outputs(p, defs, env, &mut out, &mut visited)?;
    Ok(out)
}

fn walk_outputs(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    out: &mut ChannelSet,
    visited: &mut BTreeSet<(String, Vec<Value>)>,
) -> Result<(), EvalError> {
    match p {
        Process::Stop | Process::Error(_) => Ok(()),
        Process::Call { name, args } => {
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()?;
            let key = (name.clone(), vals.clone());
            if visited.insert(key) {
                let (body, scope) = defs.resolve_call(name, &vals, env)?;
                walk_outputs(body, defs, &scope, out, visited)?;
            }
            Ok(())
        }
        Process::Output { chan, then, .. } => {
            out.insert(chan.resolve(env)?);
            walk_outputs(then, defs, env, out, visited)
        }
        Process::Input {
            chan: _,
            var,
            set,
            then,
        } => {
            let m = set.eval(env)?;
            match m.enumerate(0, &|_| None) {
                Ok(vals) if !vals.is_empty() => {
                    for v in vals {
                        let scope = env.bind(var, v);
                        walk_outputs(then, defs, &scope, out, visited)?;
                    }
                    Ok(())
                }
                _ => {
                    let scope = env.bind(var, Value::nat(0));
                    walk_outputs(then, defs, &scope, out, visited)
                }
            }
        }
        Process::Choice(a, b) => {
            walk_outputs(a, defs, env, out, visited)?;
            walk_outputs(b, defs, env, out, visited)
        }
        Process::Parallel { left, right, .. } => {
            walk_outputs(left, defs, env, out, visited)?;
            walk_outputs(right, defs, env, out, visited)
        }
        Process::Hide { channels: _, body } => walk_outputs(body, defs, env, out, visited),
    }
}

fn walk_alphabet(
    p: &Process,
    defs: &Definitions,
    env: &Env,
    out: &mut ChannelSet,
    visited: &mut BTreeSet<(String, Vec<Value>)>,
) -> Result<(), EvalError> {
    match p {
        Process::Stop | Process::Error(_) => Ok(()),
        Process::Call { name, args } => {
            let vals = args
                .iter()
                .map(|e| e.eval(env))
                .collect::<Result<Vec<_>, _>>()?;
            let key = (name.clone(), vals.clone());
            if visited.insert(key) {
                let (body, scope) = defs.resolve_call(name, &vals, env)?;
                walk_alphabet(body, defs, &scope, out, visited)?;
            }
            Ok(())
        }
        Process::Output { chan, then, .. } => {
            out.insert(chan.resolve(env)?);
            walk_alphabet(then, defs, env, out, visited)
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            out.insert(chan.resolve(env)?);
            // The bound variable may appear in later channel subscripts
            // (e.g. route[x]); sample the set's members when finite so the
            // alphabet covers every instantiation.
            let m = set.eval(env)?;
            match m.enumerate(0, &|_| None) {
                Ok(vals) if !vals.is_empty() => {
                    for v in vals {
                        let scope = env.bind(var, v);
                        walk_alphabet(then, defs, &scope, out, visited)?;
                    }
                    Ok(())
                }
                _ => {
                    // NAT / abstract set: bind a representative 0 so that
                    // subscripts like col[x] resolve; processes whose channel
                    // *identity* depends on an unbounded input are outside
                    // the paper's examples.
                    let scope = env.bind(var, Value::nat(0));
                    walk_alphabet(then, defs, &scope, out, visited)
                }
            }
        }
        Process::Choice(a, b) => {
            walk_alphabet(a, defs, env, out, visited)?;
            walk_alphabet(b, defs, env, out, visited)
        }
        Process::Parallel { left, right, .. } => {
            walk_alphabet(left, defs, env, out, visited)?;
            walk_alphabet(right, defs, env, out, visited)
        }
        Process::Hide { channels, body } => {
            for c in channels {
                out.insert(c.resolve(env)?);
            }
            walk_alphabet(body, defs, env, out, visited)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Definition, Expr};

    #[test]
    fn free_vars_of_expr() {
        let e = Expr::mul(Expr::int(3), Expr::var("i")).add(Expr::var("j"));
        let fv = free_vars_expr(&e);
        assert_eq!(fv.len(), 2);
        assert!(fv.contains("i"));
    }

    #[test]
    fn array_ref_contributes_array_name() {
        let e = Expr::ArrayRef("v".into(), Box::new(Expr::var("i")));
        let fv = free_vars_expr(&e);
        assert!(fv.contains("v"));
        assert!(fv.contains("i"));
    }

    #[test]
    fn input_binds_its_variable() {
        let p = Process::input(
            "c",
            "x",
            SetExpr::Nat,
            Process::output("d", Expr::var("x").add(Expr::var("y")), Process::Stop),
        );
        let fv = free_vars_process(&p);
        assert!(!fv.contains("x"));
        assert!(fv.contains("y"));
    }

    #[test]
    fn binder_does_not_capture_set_or_subscript() {
        // c[x]?x:{0..x} — the outer x's in the subscript and the set are
        // free even though the payload variable is also called x.
        let p = Process::Input {
            chan: ChanRef::indexed("c", Expr::var("x")),
            var: "x".into(),
            set: SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::var("x"))),
            then: std::sync::Arc::new(Process::Stop),
        };
        assert!(free_vars_process(&p).contains("x"));
    }

    #[test]
    fn alphabet_of_recursive_copier_terminates() {
        let mut defs = Definitions::new();
        defs.define(Definition::plain(
            "copier",
            Process::input(
                "input",
                "x",
                SetExpr::Nat,
                Process::output("wire", Expr::var("x"), Process::call("copier")),
            ),
        ));
        let alpha = channel_alphabet(&Process::call("copier"), &defs, &Env::new()).unwrap();
        assert_eq!(alpha.len(), 2);
    }

    #[test]
    fn alphabet_resolves_subscripts_per_instance() {
        // mult[i] = row[i]?x -> col[i-1]?y -> col[i]!(x+y) -> mult[i]
        let body = Process::Input {
            chan: ChanRef::indexed("row", Expr::var("i")),
            var: "x".into(),
            set: SetExpr::Nat,
            then: std::sync::Arc::new(Process::Input {
                chan: ChanRef::indexed("col", Expr::var("i").sub(Expr::int(1))),
                var: "y".into(),
                set: SetExpr::Nat,
                then: std::sync::Arc::new(Process::Output {
                    chan: ChanRef::indexed("col", Expr::var("i")),
                    msg: Expr::var("x").add(Expr::var("y")),
                    then: std::sync::Arc::new(Process::call1("mult", Expr::var("i"))),
                }),
            }),
        };
        let mut defs = Definitions::new();
        defs.define(Definition::array("mult", "i", SetExpr::range(1, 3), body));
        let alpha =
            channel_alphabet(&Process::call1("mult", Expr::int(2)), &defs, &Env::new()).unwrap();
        use csp_trace::Channel;
        assert!(alpha.contains(&Channel::indexed("row", 2)));
        assert!(alpha.contains(&Channel::indexed("col", 1)));
        assert!(alpha.contains(&Channel::indexed("col", 2)));
        assert_eq!(alpha.len(), 3);
    }

    #[test]
    fn alphabet_includes_hidden_channels() {
        let p = Process::output("a", Expr::int(1), Process::Stop).hide(vec![ChanRef::simple("a")]);
        let alpha = channel_alphabet(&p, &Definitions::new(), &Env::new()).unwrap();
        assert_eq!(alpha.len(), 1);
    }

    #[test]
    fn alphabet_error_on_undefined_call() {
        let p = Process::call("ghost");
        assert!(channel_alphabet(&p, &Definitions::new(), &Env::new()).is_err());
    }
}
