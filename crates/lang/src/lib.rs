//! # csp-lang
//!
//! The programming notation of Zhou & Hoare (1981), *Partial Correctness
//! of Communicating Sequential Processes*, §1.
//!
//! The language is deliberately tiny (§0): no local variables, no
//! assignment, no sequential composition; loops are tail recursion through
//! process names. Its constructs (§1.2) are:
//!
//! | Construct | Concrete syntax | Meaning |
//! |---|---|---|
//! | `STOP` | `STOP` | never does anything |
//! | name / `q[e]` | `copier`, `q[x]`, `mult[i]` | recursion & arrays |
//! | output | `c!e -> P` | send value of `e` on `c`, then `P` |
//! | input | `c?x:M -> P` | receive any `x ∈ M` on `c`, then `P` |
//! | choice | `P \| Q` | behave like `P` or like `Q` |
//! | parallel | `P \|\| Q` | network, synchronising on common channels |
//! | hiding | `chan L; P` | make channels of `L` internal |
//!
//! This crate provides the abstract syntax ([`Process`], [`Expr`],
//! [`SetExpr`]), definition lists ([`Definitions`], supporting process
//! arrays `q[i:M] = …` and mutual recursion), evaluation environments
//! ([`Env`]), free-variable and channel-alphabet analysis, substitution,
//! a parser for the concrete syntax above, and a pretty-printer that
//! round-trips with the parser.
//!
//! ```
//! use csp_lang::parse_definitions;
//!
//! let defs = parse_definitions(
//!     "copier = input?x:NAT -> wire!x -> copier
//!      recopier = wire?y:NAT -> output!y -> recopier
//!      pipeline = chan wire; (copier || recopier)",
//! ).unwrap();
//! assert_eq!(defs.len(), 3);
//! assert!(defs.get("pipeline").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod defs;
mod env;
mod error;
mod expr;
mod free;
mod parser;
mod printer;
mod process;
mod setexpr;
mod span;
mod subst;
mod validate;

pub mod examples;

pub use defs::{Definition, Definitions};
pub use env::Env;
pub use error::{EvalError, LangError, ParseError};
pub use expr::{BinOp, Expr, UnOp};
pub use free::{channel_alphabet, free_vars_expr, free_vars_process, output_channels};
pub use parser::{
    parse_definitions, parse_definitions_spanned, parse_expr, parse_module, parse_process,
    parse_process_spanned, parse_set_expr, ParsedModule,
};
pub use process::{ChanRef, Process};
pub use setexpr::{MsgSet, SetExpr};
pub use span::{DefSpans, SourceMap, Span, SpanTree};
pub use subst::{
    close_process, process_has_free, subst_expr, subst_expr_with, subst_process, subst_process_with,
};
pub use validate::{is_well_formed, validate, ValidationIssue};
