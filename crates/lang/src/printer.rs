//! Pretty-printer for process expressions.
//!
//! Prints with the minimum bracketing that re-parses to the same tree
//! under the paper's conventions (`->` right-associative, tighter than
//! `|`, tighter than `||`; `chan` extends to the end of the group). The
//! round-trip property `parse(print(p)) == p` is tested here and by
//! property tests in the crate root.

use std::fmt;

use crate::Process;

/// Binding strength of each construct; larger binds tighter.
const PREC_HIDE: u8 = 0;
const PREC_PAR: u8 = 1;
const PREC_CHOICE: u8 = 2;
const PREC_PREFIX: u8 = 3;

fn fmt_process(p: &Process, f: &mut fmt::Formatter<'_>, ctx: u8) -> fmt::Result {
    match p {
        Process::Stop => write!(f, "STOP"),
        // Deliberately not valid syntax: an error hole must fail a
        // re-parse loudly rather than silently round-trip as STOP.
        Process::Error(_) => write!(f, "<error>"),
        Process::Call { name, args } => {
            write!(f, "{name}")?;
            for a in args {
                write!(f, "[{a}]")?;
            }
            Ok(())
        }
        Process::Output { chan, msg, then } => {
            let parens = ctx > PREC_PREFIX;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "{chan}!{msg} -> ")?;
            fmt_process(then, f, PREC_PREFIX)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Process::Input {
            chan,
            var,
            set,
            then,
        } => {
            let parens = ctx > PREC_PREFIX;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "{chan}?{var}:{set} -> ")?;
            fmt_process(then, f, PREC_PREFIX)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Process::Choice(a, b) => {
            let parens = ctx > PREC_CHOICE;
            if parens {
                write!(f, "(")?;
            }
            fmt_process(a, f, PREC_CHOICE)?;
            write!(f, " | ")?;
            // Right operand one level tighter: `a | (b | c)` keeps its
            // explicit grouping, while left-nested choices print flat.
            fmt_process(b, f, PREC_CHOICE + 1)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Process::Parallel {
            left,
            right,
            left_alpha,
            right_alpha,
        } => {
            let parens = ctx > PREC_PAR;
            if parens {
                write!(f, "(")?;
            }
            fmt_process(left, f, PREC_PAR)?;
            // Explicit alphabets print as `||{a, b | c, d}`; only when both
            // sides are declared, matching what the parser can produce.
            match (left_alpha, right_alpha) {
                (Some(la), Some(ra)) => {
                    write!(f, " ||{{")?;
                    for (i, c) in la.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, " | ")?;
                    for (i, c) in ra.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, "}} ")?;
                }
                _ => write!(f, " || ")?,
            }
            fmt_process(right, f, PREC_PAR + 1)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Process::Hide { channels, body } => {
            let parens = ctx > PREC_HIDE;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "chan ")?;
            for (i, c) in channels.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "; ")?;
            fmt_process(body, f, PREC_HIDE)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_process(self, f, PREC_HIDE)
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_definitions, parse_process};

    #[track_caller]
    fn roundtrip(src: &str) {
        let p = parse_process(src).expect("parses");
        let printed = p.to_string();
        let reparsed = parse_process(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed}: {e}"));
        assert_eq!(reparsed, p, "round-trip changed the tree: {printed}");
    }

    #[test]
    fn roundtrip_paper_processes() {
        roundtrip("STOP");
        roundtrip("input?x:NAT -> wire!x -> copier");
        roundtrip("wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])");
        roundtrip("wire?z:M -> (wire!ACK -> output!z -> receiver | wire!NACK -> receiver)");
        roundtrip("chan wire; (sender || receiver)");
        roundtrip("row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]");
        roundtrip("zeroes || mult[1] || mult[2] || mult[3] || last");
        roundtrip("chan col[0..3]; network");
    }

    #[test]
    fn roundtrip_nested_grouping() {
        roundtrip("(a!1 -> STOP | b!2 -> STOP) || c!3 -> STOP");
        roundtrip("a!1 -> (b!2 -> STOP | c!3 -> STOP)");
        roundtrip("a!1 -> STOP | (b!2 -> STOP | c!3 -> STOP)");
        roundtrip("(chan h; a!1 -> h!2 -> STOP) || h?x:NAT -> STOP");
    }

    #[test]
    fn roundtrip_explicit_parallel_alphabets() {
        roundtrip("copier ||{input, wire | wire, output} recopier");
        roundtrip("(a!1 -> STOP ||{a | b} b!2 -> STOP) || c!3 -> STOP");
        let p = parse_process("copier ||{input, wire | wire, output} recopier").unwrap();
        assert_eq!(
            p.to_string(),
            "copier ||{input, wire | wire, output} recopier"
        );
    }

    #[test]
    fn choice_prints_without_redundant_parens() {
        let p = parse_process("a!1 -> STOP | b!2 -> STOP | c!3 -> STOP").unwrap();
        let s = p.to_string();
        assert!(!s.contains('('), "unexpected parens in {s}");
    }

    #[test]
    fn prefix_to_choice_keeps_parens() {
        let p = parse_process("a!1 -> (b!2 -> STOP | c!3 -> STOP)").unwrap();
        assert_eq!(p.to_string(), "a!1 -> (b!2 -> STOP | c!3 -> STOP)");
    }

    #[test]
    fn definitions_display_reparses() {
        let src = "sender = input?y:M -> q[y]
                   q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])";
        let defs = parse_definitions(src).unwrap();
        let printed = defs.to_string();
        let defs2 = parse_definitions(&printed).unwrap();
        assert_eq!(defs2, defs);
    }
}
