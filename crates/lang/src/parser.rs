//! Parser for the paper's concrete syntax.
//!
//! The grammar follows §1.2 with the paper's stated conventions:
//!
//! * `->` is right-associative and binds tighter than `|`;
//! * `|` binds tighter than `||`;
//! * `chan L; P` extends to the end of the enclosing group;
//! * identifiers starting with an upper-case letter are symbolic atoms
//!   (`ACK`, `NACK`) in expression position and named abstract sets (`M`)
//!   in set position; lower-case identifiers are variables;
//! * `--` and `//` start line comments.
//!
//! ```text
//! definitions := definition*
//! definition  := name ('[' var ':' set ']')? '=' process
//! process     := 'chan' chanlist ';' process | par
//! par         := choice (parop choice)*
//! parop       := '||' ('{' chanlist '|' chanlist '}')?
//! choice      := prefix ('|' prefix)*
//! prefix      := 'STOP'
//!              | chanref '!' expr '->' prefix
//!              | chanref '?' var ':' set '->' prefix
//!              | name ('[' expr ']')*
//!              | '(' process ')'
//! set         := 'NAT' | Uname | expr '..' expr | '{' elems? '}'
//! elems       := expr '..' expr | expr (',' expr)*
//! ```
//!
//! The `parop` alphabets realise the paper's `P ‖_{X,Y} Q`: writing
//! `copier ||{input,wire | wire,output} recopier` declares the operand
//! alphabets explicitly instead of inferring them from the operand text
//! (§1.2(7): "when the content of the sets X and Y are clear from the
//! context, they are omitted").
//!
//! Every token carries a [`Span`]; the `_spanned` entry points return a
//! [`SpanTree`]/[`SourceMap`] mirroring the produced syntax so later
//! analyses can report byte-accurate locations.

use csp_trace::Value;

use crate::{
    BinOp, ChanRef, DefSpans, Definition, Definitions, Expr, ParseError, Process, SetExpr,
    SourceMap, Span, SpanTree, UnOp,
};

/// Parses a list of process equations.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on malformed input.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_definitions;
///
/// let defs = parse_definitions(
///     "-- the protocol of §1.3
///      sender = input?y:M -> q[y]
///      q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
///      receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
///                              | wire!NACK -> receiver)
///      protocol = chan wire; (sender || receiver)",
/// ).unwrap();
/// assert_eq!(defs.len(), 4);
/// ```
pub fn parse_definitions(src: &str) -> Result<Definitions, ParseError> {
    parse_definitions_spanned(src).map(|(defs, _)| defs)
}

/// Parses a list of process equations, also returning a [`SourceMap`]
/// with the span of each defined name and a [`SpanTree`] over each body.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending token's span on malformed
/// input.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_definitions_spanned;
///
/// let (defs, map) = parse_definitions_spanned(
///     "copier = input?x:NAT -> wire!x -> copier",
/// ).unwrap();
/// assert_eq!(defs.len(), 1);
/// let spans = map.get("copier").unwrap();
/// assert_eq!(spans.name.line, 1);
/// assert_eq!(spans.name.column, 1);
/// assert_eq!(spans.body.span.column, 10); // the `input` prefix
/// ```
pub fn parse_definitions_spanned(src: &str) -> Result<(Definitions, SourceMap), ParseError> {
    let mut p = Parser::new(src)?;
    let mut defs = Definitions::new();
    let mut map = SourceMap::new();
    while !p.at_end() {
        let (def, spans) = p.definition()?;
        map.insert(def.name(), spans);
        defs.define(def);
    }
    Ok((defs, map))
}

/// Parses a single process expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_process(src: &str) -> Result<Process, ParseError> {
    parse_process_spanned(src).map(|(p, _)| p)
}

/// Parses a single process expression together with its [`SpanTree`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_process_spanned(src: &str) -> Result<(Process, SpanTree), ParseError> {
    let mut p = Parser::new(src)?;
    let (proc, spans) = p.process()?;
    p.expect_end()?;
    Ok((proc, spans))
}

/// Parses a single value expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a set expression such as `NAT`, `{ACK, NACK}`, `0..3`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_set_expr(src: &str) -> Result<SetExpr, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.set_expr()?;
    p.expect_end()?;
    Ok(s)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Arrow,  // ->
    Query,  // ?
    Bang,   // !
    Colon,  // :
    Semi,   // ;
    Comma,  // ,
    Bar,    // |
    BarBar, // ||
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Eq,   // =
    EqEq, // ==
    Ne,   // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    DotDot, // ..
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "`{s}`"),
            Tok::Int(n) => return write!(f, "`{n}`"),
            Tok::Arrow => "`->`",
            Tok::Query => "`?`",
            Tok::Bang => "`!`",
            Tok::Colon => "`:`",
            Tok::Semi => "`;`",
            Tok::Comma => "`,`",
            Tok::Bar => "`|`",
            Tok::BarBar => "`||`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrack => "`[`",
            Tok::RBrack => "`]`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::Eq => "`=`",
            Tok::EqEq => "`==`",
            Tok::Ne => "`!=`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Slash => "`/`",
            Tok::Percent => "`%`",
            Tok::DotDot => "`..`",
        };
        write!(f, "{s}")
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    span: Span,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src_len: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.char_indices().peekable(),
            src_len: src.len(),
            line: 1,
            column: 1,
        }
    }

    /// The current character without consuming it.
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Byte offset of the next character (source length at end).
    fn offset(&mut self) -> usize {
        self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src_len)
    }

    /// Consumes one character, maintaining line/column.
    fn advance(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();

    while let Some(c) = lx.peek() {
        let start = lx.offset();
        let (line, column) = (lx.line, lx.column);
        let tok = match c {
            c if c.is_whitespace() => {
                lx.advance();
                continue;
            }
            '-' => {
                lx.advance();
                match lx.peek() {
                    Some('>') => {
                        lx.advance();
                        Tok::Arrow
                    }
                    Some('-') => {
                        // line comment
                        while let Some(c) = lx.advance() {
                            if c == '\n' {
                                break;
                            }
                        }
                        continue;
                    }
                    _ => Tok::Minus,
                }
            }
            '/' => {
                lx.advance();
                if lx.peek() == Some('/') {
                    while let Some(c) = lx.advance() {
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                Tok::Slash
            }
            '|' => {
                lx.advance();
                if lx.peek() == Some('|') {
                    lx.advance();
                    Tok::BarBar
                } else {
                    Tok::Bar
                }
            }
            '=' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::EqEq
                } else {
                    Tok::Eq
                }
            }
            '!' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            '<' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '.' => {
                lx.advance();
                if lx.peek() == Some('.') {
                    lx.advance();
                    Tok::DotDot
                } else {
                    return Err(ParseError::at(
                        "stray `.` (did you mean `..`?)",
                        Span::new(start, 1, line, column),
                    ));
                }
            }
            '?' => {
                lx.advance();
                Tok::Query
            }
            ':' => {
                lx.advance();
                Tok::Colon
            }
            ';' => {
                lx.advance();
                Tok::Semi
            }
            ',' => {
                lx.advance();
                Tok::Comma
            }
            '(' => {
                lx.advance();
                Tok::LParen
            }
            ')' => {
                lx.advance();
                Tok::RParen
            }
            '[' => {
                lx.advance();
                Tok::LBrack
            }
            ']' => {
                lx.advance();
                Tok::RBrack
            }
            '{' => {
                lx.advance();
                Tok::LBrace
            }
            '}' => {
                lx.advance();
                Tok::RBrace
            }
            '+' => {
                lx.advance();
                Tok::Plus
            }
            '*' => {
                lx.advance();
                Tok::Star
            }
            '%' => {
                lx.advance();
                Tok::Percent
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(d) = lx.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        lx.advance();
                    } else {
                        break;
                    }
                }
                let val: i64 = n.parse().map_err(|_| {
                    ParseError::at(
                        "integer literal too large",
                        Span::new(start, n.len(), line, column),
                    )
                })?;
                Tok::Int(val)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(d) = lx.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        lx.advance();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError::at(
                    format!("unexpected character `{other}`"),
                    Span::new(start, other.len_utf8(), line, column),
                ));
            }
        };
        let end = lx.offset();
        out.push(Spanned {
            tok,
            span: Span::new(start, end - start, line, column),
        });
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    /// The span of the current token; past the end, a zero-length span
    /// just after the last token.
    fn here(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(s) => s.span,
            None => match self.toks.last() {
                Some(s) => Span::new(s.span.end(), 0, s.span.line, s.span.column + s.span.len),
                None => Span::new(self.src_len, 0, 1, 1),
            },
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(msg, self.here())
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {tok}, found {t}"))),
            None => Err(self.err(format!("expected {tok}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing {}",
                self.peek().expect("non-empty")
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    // definition := name ('[' var ':' set ']')? '=' process
    fn definition(&mut self) -> Result<(Definition, DefSpans), ParseError> {
        let name_span = self.here();
        let name = self.ident()?;
        if is_keyword(&name) {
            return Err(ParseError::at(
                format!("`{name}` is reserved and cannot be defined"),
                name_span,
            ));
        }
        if self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let param = self.ident()?;
            self.expect(&Tok::Colon)?;
            let set = self.set_expr()?;
            self.expect(&Tok::RBrack)?;
            self.expect(&Tok::Eq)?;
            let (body, body_spans) = self.process()?;
            Ok((
                Definition::array(&name, &param, set, body),
                DefSpans {
                    name: name_span,
                    body: body_spans,
                },
            ))
        } else {
            self.expect(&Tok::Eq)?;
            let (body, body_spans) = self.process()?;
            Ok((
                Definition::plain(&name, body),
                DefSpans {
                    name: name_span,
                    body: body_spans,
                },
            ))
        }
    }

    // process := 'chan' chanlist ';' process | par
    fn process(&mut self) -> Result<(Process, SpanTree), ParseError> {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == "chan" {
                let kw_span = self.here();
                self.bump();
                let channels = self.chan_list()?;
                self.expect(&Tok::Semi)?;
                let (body, body_spans) = self.process()?;
                return Ok((
                    Process::Hide {
                        channels,
                        body: Box::new(body),
                    },
                    SpanTree::node(kw_span, vec![body_spans]),
                ));
            }
        }
        self.parallel()
    }

    fn parallel(&mut self) -> Result<(Process, SpanTree), ParseError> {
        let (mut left, mut lspans) = self.choice()?;
        while self.peek() == Some(&Tok::BarBar) {
            let op_span = self.here();
            self.bump();
            // Optional explicit alphabets: `||{a,b | c,d}` (§1.2(7)'s
            // `P ‖_{X,Y} Q` written out).
            let (left_alpha, right_alpha) = if self.peek() == Some(&Tok::LBrace) {
                self.bump();
                let la = self.chan_list()?;
                self.expect(&Tok::Bar)?;
                let ra = self.chan_list()?;
                self.expect(&Tok::RBrace)?;
                (Some(la), Some(ra))
            } else {
                (None, None)
            };
            let (right, rspans) = self.choice()?;
            left = Process::Parallel {
                left: Box::new(left),
                right: Box::new(right),
                left_alpha,
                right_alpha,
            };
            lspans = SpanTree::node(op_span, vec![lspans, rspans]);
        }
        Ok((left, lspans))
    }

    fn choice(&mut self) -> Result<(Process, SpanTree), ParseError> {
        let (mut left, mut lspans) = self.prefix()?;
        while self.peek() == Some(&Tok::Bar) {
            let op_span = self.here();
            self.bump();
            let (right, rspans) = self.prefix()?;
            left = left.or(right);
            lspans = SpanTree::node(op_span, vec![lspans, rspans]);
        }
        Ok((left, lspans))
    }

    fn prefix(&mut self) -> Result<(Process, SpanTree), ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let p = self.process()?;
                self.expect(&Tok::RParen)?;
                Ok(p)
            }
            Some(Tok::Ident(s)) if s == "STOP" => {
                let span = self.here();
                self.bump();
                Ok((Process::Stop, SpanTree::leaf(span)))
            }
            Some(Tok::Ident(s)) if s == "chan" => self.process(),
            Some(Tok::Ident(_)) => self.prefix_from_name(),
            Some(t) => Err(self.err(format!("expected a process, found {t}"))),
            None => Err(self.err("expected a process, found end of input")),
        }
    }

    /// Something starting with a (possibly subscripted) name: an output
    /// `c[..]!e -> P`, an input `c[..]?x:M -> P`, or a call `p[..]`.
    fn prefix_from_name(&mut self) -> Result<(Process, SpanTree), ParseError> {
        let name_span = self.here();
        let name = self.ident()?;
        let mut subs: Vec<Expr> = Vec::new();
        while self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RBrack)?;
            subs.push(e);
        }
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                let msg = self.expr()?;
                self.expect(&Tok::Arrow)?;
                let (then, then_spans) = self.prefix()?;
                Ok((
                    Process::Output {
                        chan: ChanRef::with_indices(&name, subs),
                        msg,
                        then: Box::new(then),
                    },
                    SpanTree::node(name_span, vec![then_spans]),
                ))
            }
            Some(Tok::Query) => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Colon)?;
                let set = self.set_expr()?;
                self.expect(&Tok::Arrow)?;
                let (then, then_spans) = self.prefix()?;
                Ok((
                    Process::Input {
                        chan: ChanRef::with_indices(&name, subs),
                        var,
                        set,
                        then: Box::new(then),
                    },
                    SpanTree::node(name_span, vec![then_spans]),
                ))
            }
            _ => Ok((
                Process::Call { name, args: subs },
                SpanTree::leaf(name_span),
            )),
        }
    }

    // chanlist := chanitem (',' chanitem)*
    // chanitem := name ('[' (expr | expr '..' expr) ']')*
    fn chan_list(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let mut out = Vec::new();
        loop {
            out.extend(self.chan_item()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn chan_item(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let name = self.ident()?;
        if self.peek() != Some(&Tok::LBrack) {
            return Ok(vec![ChanRef::simple(&name)]);
        }
        self.bump();
        let lo = self.expr()?;
        if self.peek() == Some(&Tok::DotDot) {
            // A family like col[0..3], expanded when bounds are constant.
            self.bump();
            let hi = self.expr()?;
            self.expect(&Tok::RBrack)?;
            let (l, h) = match (constant_int(&lo), constant_int(&hi)) {
                (Some(l), Some(h)) => (l, h),
                _ => return Err(self.err("channel-family bounds in `chan` lists must be constant")),
            };
            Ok((l..=h)
                .map(|i| ChanRef::indexed(&name, Expr::int(i)))
                .collect())
        } else {
            self.expect(&Tok::RBrack)?;
            Ok(vec![ChanRef::indexed(&name, lo)])
        }
    }

    // set := 'NAT' | Uname | '{' elems? '}' | expr '..' expr
    fn set_expr(&mut self) -> Result<SetExpr, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "NAT" => {
                self.bump();
                Ok(SetExpr::Nat)
            }
            Some(Tok::LBrace) => {
                self.bump();
                if self.peek() == Some(&Tok::RBrace) {
                    self.bump();
                    return Ok(SetExpr::Enum(Vec::new()));
                }
                let first = self.expr()?;
                if self.peek() == Some(&Tok::DotDot) {
                    self.bump();
                    let hi = self.expr()?;
                    self.expect(&Tok::RBrace)?;
                    return Ok(SetExpr::Range(Box::new(first), Box::new(hi)));
                }
                let mut elems = vec![first];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    elems.push(self.expr()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(SetExpr::Enum(elems))
            }
            Some(Tok::Ident(s)) if starts_upper(s) && self.peek2() != Some(&Tok::DotDot) => {
                // A named abstract set such as `M`.
                let n = s.clone();
                self.bump();
                Ok(SetExpr::Named(n))
            }
            _ => {
                let lo = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.expr()?;
                Ok(SetExpr::Range(Box::new(lo), Box::new(hi)))
            }
        }
    }

    // ------------------------------------------------------ expressions --

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "or") {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.cmp_expr()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "and") {
            self.bump();
            let right = self.cmp_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.bump();
                let right = self.add_expr()?;
                Ok(Expr::Bin(op, Box::new(left), Box::new(right)))
            }
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Neg, Box::new(e)))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Not, Box::new(e)))
            }
            _ => self.atom_expr(),
        }
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::int(n)),
            Some(Tok::Ident(s)) if s == "true" => Ok(Expr::Const(Value::Bool(true))),
            Some(Tok::Ident(s)) if s == "false" => Ok(Expr::Const(Value::Bool(false))),
            Some(Tok::Ident(s)) => {
                if self.peek() == Some(&Tok::LBrack) {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBrack)?;
                    Ok(Expr::ArrayRef(s, Box::new(idx)))
                } else if starts_upper(&s) && s != "NAT" {
                    Ok(Expr::sym(&s))
                } else {
                    Ok(Expr::var(&s))
                }
            }
            Some(Tok::LParen) => {
                let first = self.expr()?;
                if self.peek() == Some(&Tok::Comma) {
                    let mut es = vec![first];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        es.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Tuple(es))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Some(t) => Err(self.err(format!("expected an expression, found {t}"))),
            None => Err(self.err("expected an expression, found end of input")),
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "STOP" | "chan" | "NAT" | "and" | "or" | "not" | "true" | "false"
    )
}

fn constant_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Value::Int(n)) => Some(*n),
        Expr::Un(UnOp::Neg, inner) => constant_int(inner).map(|n| -n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_copier() {
        let p = parse_process("input?x:NAT -> wire!x -> copier").unwrap();
        match p {
            Process::Input { var, set, then, .. } => {
                assert_eq!(var, "x");
                assert_eq!(set, SetExpr::Nat);
                assert!(matches!(*then, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        // wire?x:NAT -> output!x -> copier parses as wire?x -> (output!x -> copier).
        let p = parse_process("wire?x:NAT -> output!x -> copier").unwrap();
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn arrow_binds_tighter_than_bar() {
        // a!1 -> STOP | b!2 -> STOP  ==  (a!1 -> STOP) | (b!2 -> STOP)
        let p = parse_process("a!1 -> STOP | b!2 -> STOP").unwrap();
        assert!(matches!(p, Process::Choice(_, _)));
    }

    #[test]
    fn bar_binds_tighter_than_barbar() {
        let p = parse_process("a!1 -> STOP | b!1 -> STOP || c!1 -> STOP").unwrap();
        match p {
            Process::Parallel { left, right, .. } => {
                assert!(matches!(*left, Process::Choice(_, _)));
                assert!(matches!(*right, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_extends_over_parallel() {
        let p = parse_process("chan wire; copier || recopier").unwrap();
        match p {
            Process::Hide { channels, body } => {
                assert_eq!(channels.len(), 1);
                assert!(matches!(*body, Process::Parallel { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_family_expansion() {
        let p = parse_process("chan col[0..3]; network").unwrap();
        match p {
            Process::Hide { channels, .. } => {
                assert_eq!(channels.len(), 4);
                assert_eq!(channels[0].to_string(), "col[0]");
                assert_eq!(channels[3].to_string(), "col[3]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_constant_family_bounds_rejected() {
        assert!(parse_process("chan col[0..n]; network").is_err());
    }

    #[test]
    fn subscripted_call_and_channels() {
        let p = parse_process("row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]")
            .unwrap();
        assert_eq!(p.size(), 4);
        // Round-trip through printing re-parses (see printer tests).
        let text = p.to_string();
        assert!(text.contains("col[(i - 1)]"), "{text}");
    }

    #[test]
    fn uppercase_atoms_and_named_sets() {
        let p = parse_process("wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]").unwrap();
        match &p {
            Process::Choice(a, _) => match a.as_ref() {
                Process::Input { set, .. } => {
                    assert_eq!(set, &SetExpr::Enum(vec![Expr::sym("ACK")]));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Named set in input position:
        let q = parse_process("input?y:M -> q[y]").unwrap();
        match q {
            Process::Input { set, .. } => assert_eq!(set, SetExpr::Named("M".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_expressions() {
        assert_eq!(parse_set_expr("NAT").unwrap(), SetExpr::Nat);
        assert_eq!(
            parse_set_expr("0..3").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{0..3}").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{ACK, NACK}").unwrap(),
            SetExpr::Enum(vec![Expr::sym("ACK"), Expr::sym("NACK")])
        );
        assert_eq!(parse_set_expr("M").unwrap(), SetExpr::Named("M".into()));
        assert_eq!(parse_set_expr("{}").unwrap(), SetExpr::Enum(vec![]));
    }

    #[test]
    fn expr_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(9));
        let e = parse_expr("-2 + 1").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(-1));
        let e = parse_expr("1 < 2 and not false").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn definitions_with_arrays_and_comments() {
        let defs = parse_definitions(
            "-- multiplier network of §1.3(5)
             mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]
             zeroes = col[0]!0 -> zeroes // boundary
             last = col[3]?y:NAT -> output!y -> last",
        )
        .unwrap();
        assert_eq!(defs.len(), 3);
        let m = defs.get("mult").unwrap();
        assert_eq!(m.arity(), 1);
        assert_eq!(m.param().unwrap().0, "i");
    }

    #[test]
    fn keywords_cannot_be_defined() {
        assert!(parse_definitions("STOP = STOP").is_err());
        assert!(parse_definitions("chan = STOP").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_process("input?x NAT -> STOP").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.column() > 1);
        assert!(err.message().contains("expected"));
    }

    #[test]
    fn error_spans_carry_byte_offsets() {
        // Column 9 = byte 8 is where the offending `NAT` token starts.
        let err = parse_process("input?x NAT -> STOP").unwrap_err();
        assert_eq!(err.span().offset, 8);
        assert_eq!(err.span().len, 3);
        assert_eq!(err.column(), 9);
        // Errors on a later line still track bytes from the file start.
        let err = parse_definitions("p = c!0 -> STOP\nq = = STOP").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 5);
        assert_eq!(err.span().offset, 20);
    }

    #[test]
    fn end_of_input_errors_point_past_last_token() {
        let err = parse_process("a!1 ->").unwrap_err();
        assert_eq!(err.line(), 1);
        assert_eq!(err.span().offset, 6);
        assert_eq!(err.span().len, 0);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_process("STOP STOP").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn tuples_parse() {
        let e = parse_expr("(1, ACK)").unwrap();
        assert_eq!(e, Expr::Tuple(vec![Expr::int(1), Expr::sym("ACK")]));
    }

    #[test]
    fn empty_input_yields_empty_definitions() {
        assert!(parse_definitions("").unwrap().is_empty());
        assert!(parse_definitions("-- only a comment").unwrap().is_empty());
    }

    #[test]
    fn explicit_parens_override_choice_grouping() {
        let p = parse_process("a!1 -> (b!2 -> STOP | c!3 -> STOP)").unwrap();
        match p {
            Process::Output { then, .. } => assert!(matches!(*then, Process::Choice(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_parallel_alphabets_parse() {
        let p = parse_process("copier ||{input, wire | wire, output} recopier").unwrap();
        match p {
            Process::Parallel {
                left_alpha,
                right_alpha,
                ..
            } => {
                let la = left_alpha.expect("left alphabet");
                let ra = right_alpha.expect("right alphabet");
                assert_eq!(la.len(), 2);
                assert_eq!(la[0].to_string(), "input");
                assert_eq!(ra[1].to_string(), "output");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Families expand in alphabet position too.
        let p = parse_process("zeroes ||{col[0..1] | col[1]} last").unwrap();
        match p {
            Process::Parallel { left_alpha, .. } => {
                assert_eq!(left_alpha.unwrap().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_tree_mirrors_process_shape() {
        let (p, spans) = parse_process_spanned("a!1 -> STOP || b?x:NAT -> STOP").unwrap();
        assert!(matches!(p, Process::Parallel { .. }));
        // Root is the `||` operator.
        assert_eq!(spans.span.column, 13);
        assert_eq!(spans.children.len(), 2);
        // Left child is the `a` output prefix at column 1, with STOP below.
        assert_eq!(spans.children[0].span.column, 1);
        assert_eq!(spans.children[0].children[0].span.column, 8);
        // Right child is the `b` input prefix at column 16.
        assert_eq!(spans.children[1].span.column, 16);
        // Byte offsets line up with the source text.
        assert_eq!(spans.span.offset, 12);
        assert_eq!(spans.span.len, 2);
    }

    #[test]
    fn source_map_records_definition_spans() {
        let (defs, map) = parse_definitions_spanned(
            "copier = input?x:NAT -> wire!x -> copier\nrecopier = wire?y:NAT -> output!y -> recopier",
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(map.len(), 2);
        let c = map.get("copier").unwrap();
        assert_eq!((c.name.line, c.name.column), (1, 1));
        let r = map.get("recopier").unwrap();
        assert_eq!((r.name.line, r.name.column), (2, 1));
        assert_eq!(r.name.offset, 41);
        // Body root of copier is the input prefix; its child the output.
        assert_eq!(c.body.span.column, 10);
        assert_eq!(c.body.children[0].span.column, 25);
    }
}
