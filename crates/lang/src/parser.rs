//! Parser for the paper's concrete syntax.
//!
//! The grammar follows §1.2 with the paper's stated conventions:
//!
//! * `->` is right-associative and binds tighter than `|`;
//! * `|` binds tighter than `||`;
//! * `chan L; P` extends to the end of the enclosing group;
//! * identifiers starting with an upper-case letter are symbolic atoms
//!   (`ACK`, `NACK`) in expression position and named abstract sets (`M`)
//!   in set position; lower-case identifiers are variables;
//! * `--` and `//` start line comments.
//!
//! ```text
//! definitions := definition*
//! definition  := name ('[' var ':' set ']')? '=' process
//! process     := 'chan' chanlist ';' process | par
//! par         := choice ('||' choice)*
//! choice      := prefix ('|' prefix)*
//! prefix      := 'STOP'
//!              | chanref '!' expr '->' prefix
//!              | chanref '?' var ':' set '->' prefix
//!              | name ('[' expr ']')*
//!              | '(' process ')'
//! set         := 'NAT' | Uname | expr '..' expr | '{' elems? '}'
//! elems       := expr '..' expr | expr (',' expr)*
//! ```

use csp_trace::Value;

use crate::{BinOp, ChanRef, Definition, Definitions, Expr, ParseError, Process, SetExpr, UnOp};

/// Parses a list of process equations.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on malformed input.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_definitions;
///
/// let defs = parse_definitions(
///     "-- the protocol of §1.3
///      sender = input?y:M -> q[y]
///      q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
///      receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
///                              | wire!NACK -> receiver)
///      protocol = chan wire; (sender || receiver)",
/// ).unwrap();
/// assert_eq!(defs.len(), 4);
/// ```
pub fn parse_definitions(src: &str) -> Result<Definitions, ParseError> {
    let mut p = Parser::new(src)?;
    let mut defs = Definitions::new();
    while !p.at_end() {
        defs.define(p.definition()?);
    }
    Ok(defs)
}

/// Parses a single process expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_process(src: &str) -> Result<Process, ParseError> {
    let mut p = Parser::new(src)?;
    let proc = p.process()?;
    p.expect_end()?;
    Ok(proc)
}

/// Parses a single value expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a set expression such as `NAT`, `{ACK, NACK}`, `0..3`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_set_expr(src: &str) -> Result<SetExpr, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.set_expr()?;
    p.expect_end()?;
    Ok(s)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Arrow,  // ->
    Query,  // ?
    Bang,   // !
    Colon,  // :
    Semi,   // ;
    Comma,  // ,
    Bar,    // |
    BarBar, // ||
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Eq,   // =
    EqEq, // ==
    Ne,   // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    DotDot, // ..
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "`{s}`"),
            Tok::Int(n) => return write!(f, "`{n}`"),
            Tok::Arrow => "`->`",
            Tok::Query => "`?`",
            Tok::Bang => "`!`",
            Tok::Colon => "`:`",
            Tok::Semi => "`;`",
            Tok::Comma => "`,`",
            Tok::Bar => "`|`",
            Tok::BarBar => "`||`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrack => "`[`",
            Tok::RBrack => "`]`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::Eq => "`=`",
            Tok::EqEq => "`==`",
            Tok::Ne => "`!=`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Slash => "`/`",
            Tok::Percent => "`%`",
            Tok::DotDot => "`..`",
        };
        write!(f, "{s}")
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                column,
            });
            column += $len;
        }};
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        push!(Tok::Arrow, 0);
                        column += 2;
                    }
                    Some('-') => {
                        // line comment
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                column = 1;
                                break;
                            }
                        }
                    }
                    _ => {
                        push!(Tok::Minus, 1);
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            column = 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash, 1);
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    push!(Tok::BarBar, 2);
                } else {
                    push!(Tok::Bar, 1);
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::EqEq, 2);
                } else {
                    push!(Tok::Eq, 1);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Ne, 2);
                } else {
                    push!(Tok::Bang, 1);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Le, 2);
                } else {
                    push!(Tok::Lt, 1);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Ge, 2);
                } else {
                    push!(Tok::Gt, 1);
                }
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    push!(Tok::DotDot, 2);
                } else {
                    return Err(ParseError::new(
                        "stray `.` (did you mean `..`?)",
                        line,
                        column,
                    ));
                }
            }
            '?' => {
                chars.next();
                push!(Tok::Query, 1);
            }
            ':' => {
                chars.next();
                push!(Tok::Colon, 1);
            }
            ';' => {
                chars.next();
                push!(Tok::Semi, 1);
            }
            ',' => {
                chars.next();
                push!(Tok::Comma, 1);
            }
            '(' => {
                chars.next();
                push!(Tok::LParen, 1);
            }
            ')' => {
                chars.next();
                push!(Tok::RParen, 1);
            }
            '[' => {
                chars.next();
                push!(Tok::LBrack, 1);
            }
            ']' => {
                chars.next();
                push!(Tok::RBrack, 1);
            }
            '{' => {
                chars.next();
                push!(Tok::LBrace, 1);
            }
            '}' => {
                chars.next();
                push!(Tok::RBrace, 1);
            }
            '+' => {
                chars.next();
                push!(Tok::Plus, 1);
            }
            '*' => {
                chars.next();
                push!(Tok::Star, 1);
            }
            '%' => {
                chars.next();
                push!(Tok::Percent, 1);
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let len = n.len();
                let val: i64 = n
                    .parse()
                    .map_err(|_| ParseError::new("integer literal too large", line, column))?;
                push!(Tok::Int(val), len);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let len = s.len();
                push!(Tok::Ident(s), len);
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    line,
                    column,
                ));
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.column))
            .unwrap_or((1, 1))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::new(msg, l, c)
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {tok}, found {t}"))),
            None => Err(self.err(format!("expected {tok}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing {}",
                self.peek().expect("non-empty")
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    // definition := name ('[' var ':' set ']')? '=' process
    fn definition(&mut self) -> Result<Definition, ParseError> {
        let name = self.ident()?;
        if is_keyword(&name) {
            return Err(self.err(format!("`{name}` is reserved and cannot be defined")));
        }
        if self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let param = self.ident()?;
            self.expect(&Tok::Colon)?;
            let set = self.set_expr()?;
            self.expect(&Tok::RBrack)?;
            self.expect(&Tok::Eq)?;
            let body = self.process()?;
            Ok(Definition::array(&name, &param, set, body))
        } else {
            self.expect(&Tok::Eq)?;
            let body = self.process()?;
            Ok(Definition::plain(&name, body))
        }
    }

    // process := 'chan' chanlist ';' process | par
    fn process(&mut self) -> Result<Process, ParseError> {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == "chan" {
                self.bump();
                let channels = self.chan_list()?;
                self.expect(&Tok::Semi)?;
                let body = self.process()?;
                return Ok(Process::Hide {
                    channels,
                    body: Box::new(body),
                });
            }
        }
        self.parallel()
    }

    fn parallel(&mut self) -> Result<Process, ParseError> {
        let mut left = self.choice()?;
        while self.peek() == Some(&Tok::BarBar) {
            self.bump();
            let right = self.choice()?;
            left = left.par(right);
        }
        Ok(left)
    }

    fn choice(&mut self) -> Result<Process, ParseError> {
        let mut left = self.prefix()?;
        while self.peek() == Some(&Tok::Bar) {
            self.bump();
            let right = self.prefix()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn prefix(&mut self) -> Result<Process, ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let p = self.process()?;
                self.expect(&Tok::RParen)?;
                Ok(p)
            }
            Some(Tok::Ident(s)) if s == "STOP" => {
                self.bump();
                Ok(Process::Stop)
            }
            Some(Tok::Ident(s)) if s == "chan" => self.process(),
            Some(Tok::Ident(_)) => self.prefix_from_name(),
            Some(t) => Err(self.err(format!("expected a process, found {t}"))),
            None => Err(self.err("expected a process, found end of input")),
        }
    }

    /// Something starting with a (possibly subscripted) name: an output
    /// `c[..]!e -> P`, an input `c[..]?x:M -> P`, or a call `p[..]`.
    fn prefix_from_name(&mut self) -> Result<Process, ParseError> {
        let name = self.ident()?;
        let mut subs: Vec<Expr> = Vec::new();
        while self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RBrack)?;
            subs.push(e);
        }
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                let msg = self.expr()?;
                self.expect(&Tok::Arrow)?;
                let then = self.prefix()?;
                Ok(Process::Output {
                    chan: ChanRef::with_indices(&name, subs),
                    msg,
                    then: Box::new(then),
                })
            }
            Some(Tok::Query) => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Colon)?;
                let set = self.set_expr()?;
                self.expect(&Tok::Arrow)?;
                let then = self.prefix()?;
                Ok(Process::Input {
                    chan: ChanRef::with_indices(&name, subs),
                    var,
                    set,
                    then: Box::new(then),
                })
            }
            _ => Ok(Process::Call { name, args: subs }),
        }
    }

    // chanlist := chanitem (',' chanitem)*
    // chanitem := name ('[' (expr | expr '..' expr) ']')*
    fn chan_list(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let mut out = Vec::new();
        loop {
            out.extend(self.chan_item()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn chan_item(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let name = self.ident()?;
        if self.peek() != Some(&Tok::LBrack) {
            return Ok(vec![ChanRef::simple(&name)]);
        }
        self.bump();
        let lo = self.expr()?;
        if self.peek() == Some(&Tok::DotDot) {
            // A family like col[0..3], expanded when bounds are constant.
            self.bump();
            let hi = self.expr()?;
            self.expect(&Tok::RBrack)?;
            let (l, h) = match (constant_int(&lo), constant_int(&hi)) {
                (Some(l), Some(h)) => (l, h),
                _ => return Err(self.err("channel-family bounds in `chan` lists must be constant")),
            };
            Ok((l..=h)
                .map(|i| ChanRef::indexed(&name, Expr::int(i)))
                .collect())
        } else {
            self.expect(&Tok::RBrack)?;
            Ok(vec![ChanRef::indexed(&name, lo)])
        }
    }

    // set := 'NAT' | Uname | '{' elems? '}' | expr '..' expr
    fn set_expr(&mut self) -> Result<SetExpr, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "NAT" => {
                self.bump();
                Ok(SetExpr::Nat)
            }
            Some(Tok::LBrace) => {
                self.bump();
                if self.peek() == Some(&Tok::RBrace) {
                    self.bump();
                    return Ok(SetExpr::Enum(Vec::new()));
                }
                let first = self.expr()?;
                if self.peek() == Some(&Tok::DotDot) {
                    self.bump();
                    let hi = self.expr()?;
                    self.expect(&Tok::RBrace)?;
                    return Ok(SetExpr::Range(Box::new(first), Box::new(hi)));
                }
                let mut elems = vec![first];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    elems.push(self.expr()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(SetExpr::Enum(elems))
            }
            Some(Tok::Ident(s)) if starts_upper(s) && self.peek2() != Some(&Tok::DotDot) => {
                // A named abstract set such as `M`.
                let n = s.clone();
                self.bump();
                Ok(SetExpr::Named(n))
            }
            _ => {
                let lo = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.expr()?;
                Ok(SetExpr::Range(Box::new(lo), Box::new(hi)))
            }
        }
    }

    // ------------------------------------------------------ expressions --

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "or") {
            self.bump();
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.cmp_expr()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "and") {
            self.bump();
            let right = self.cmp_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.bump();
                let right = self.add_expr()?;
                Ok(Expr::Bin(op, Box::new(left), Box::new(right)))
            }
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Neg, Box::new(e)))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Not, Box::new(e)))
            }
            _ => self.atom_expr(),
        }
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::int(n)),
            Some(Tok::Ident(s)) if s == "true" => Ok(Expr::Const(Value::Bool(true))),
            Some(Tok::Ident(s)) if s == "false" => Ok(Expr::Const(Value::Bool(false))),
            Some(Tok::Ident(s)) => {
                if self.peek() == Some(&Tok::LBrack) {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBrack)?;
                    Ok(Expr::ArrayRef(s, Box::new(idx)))
                } else if starts_upper(&s) && s != "NAT" {
                    Ok(Expr::sym(&s))
                } else {
                    Ok(Expr::var(&s))
                }
            }
            Some(Tok::LParen) => {
                let first = self.expr()?;
                if self.peek() == Some(&Tok::Comma) {
                    let mut es = vec![first];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        es.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Tuple(es))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Some(t) => Err(self.err(format!("expected an expression, found {t}"))),
            None => Err(self.err("expected an expression, found end of input")),
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "STOP" | "chan" | "NAT" | "and" | "or" | "not" | "true" | "false"
    )
}

fn constant_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Value::Int(n)) => Some(*n),
        Expr::Un(UnOp::Neg, inner) => constant_int(inner).map(|n| -n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_copier() {
        let p = parse_process("input?x:NAT -> wire!x -> copier").unwrap();
        match p {
            Process::Input { var, set, then, .. } => {
                assert_eq!(var, "x");
                assert_eq!(set, SetExpr::Nat);
                assert!(matches!(*then, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        // wire?x:NAT -> output!x -> copier parses as wire?x -> (output!x -> copier).
        let p = parse_process("wire?x:NAT -> output!x -> copier").unwrap();
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn arrow_binds_tighter_than_bar() {
        // a!1 -> STOP | b!2 -> STOP  ==  (a!1 -> STOP) | (b!2 -> STOP)
        let p = parse_process("a!1 -> STOP | b!2 -> STOP").unwrap();
        assert!(matches!(p, Process::Choice(_, _)));
    }

    #[test]
    fn bar_binds_tighter_than_barbar() {
        let p = parse_process("a!1 -> STOP | b!1 -> STOP || c!1 -> STOP").unwrap();
        match p {
            Process::Parallel { left, right, .. } => {
                assert!(matches!(*left, Process::Choice(_, _)));
                assert!(matches!(*right, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_extends_over_parallel() {
        let p = parse_process("chan wire; copier || recopier").unwrap();
        match p {
            Process::Hide { channels, body } => {
                assert_eq!(channels.len(), 1);
                assert!(matches!(*body, Process::Parallel { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_family_expansion() {
        let p = parse_process("chan col[0..3]; network").unwrap();
        match p {
            Process::Hide { channels, .. } => {
                assert_eq!(channels.len(), 4);
                assert_eq!(channels[0].to_string(), "col[0]");
                assert_eq!(channels[3].to_string(), "col[3]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_constant_family_bounds_rejected() {
        assert!(parse_process("chan col[0..n]; network").is_err());
    }

    #[test]
    fn subscripted_call_and_channels() {
        let p = parse_process("row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]")
            .unwrap();
        assert_eq!(p.size(), 4);
        // Round-trip through printing re-parses (see printer tests).
        let text = p.to_string();
        assert!(text.contains("col[(i - 1)]"), "{text}");
    }

    #[test]
    fn uppercase_atoms_and_named_sets() {
        let p = parse_process("wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]").unwrap();
        match &p {
            Process::Choice(a, _) => match a.as_ref() {
                Process::Input { set, .. } => {
                    assert_eq!(set, &SetExpr::Enum(vec![Expr::sym("ACK")]));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Named set in input position:
        let q = parse_process("input?y:M -> q[y]").unwrap();
        match q {
            Process::Input { set, .. } => assert_eq!(set, SetExpr::Named("M".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_expressions() {
        assert_eq!(parse_set_expr("NAT").unwrap(), SetExpr::Nat);
        assert_eq!(
            parse_set_expr("0..3").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{0..3}").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{ACK, NACK}").unwrap(),
            SetExpr::Enum(vec![Expr::sym("ACK"), Expr::sym("NACK")])
        );
        assert_eq!(parse_set_expr("M").unwrap(), SetExpr::Named("M".into()));
        assert_eq!(parse_set_expr("{}").unwrap(), SetExpr::Enum(vec![]));
    }

    #[test]
    fn expr_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(9));
        let e = parse_expr("-2 + 1").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(-1));
        let e = parse_expr("1 < 2 and not false").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn definitions_with_arrays_and_comments() {
        let defs = parse_definitions(
            "-- multiplier network of §1.3(5)
             mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]
             zeroes = col[0]!0 -> zeroes // boundary
             last = col[3]?y:NAT -> output!y -> last",
        )
        .unwrap();
        assert_eq!(defs.len(), 3);
        let m = defs.get("mult").unwrap();
        assert_eq!(m.arity(), 1);
        assert_eq!(m.param().unwrap().0, "i");
    }

    #[test]
    fn keywords_cannot_be_defined() {
        assert!(parse_definitions("STOP = STOP").is_err());
        assert!(parse_definitions("chan = STOP").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_process("input?x NAT -> STOP").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.column() > 1);
        assert!(err.message().contains("expected"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_process("STOP STOP").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn tuples_parse() {
        let e = parse_expr("(1, ACK)").unwrap();
        assert_eq!(e, Expr::Tuple(vec![Expr::int(1), Expr::sym("ACK")]));
    }

    #[test]
    fn empty_input_yields_empty_definitions() {
        assert!(parse_definitions("").unwrap().is_empty());
        assert!(parse_definitions("-- only a comment").unwrap().is_empty());
    }

    #[test]
    fn explicit_parens_override_choice_grouping() {
        let p = parse_process("a!1 -> (b!2 -> STOP | c!3 -> STOP)").unwrap();
        match p {
            Process::Output { then, .. } => assert!(matches!(*then, Process::Choice(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
