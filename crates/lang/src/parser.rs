//! Parser for the paper's concrete syntax.
//!
//! The grammar follows §1.2 with the paper's stated conventions:
//!
//! * `->` is right-associative and binds tighter than `|`;
//! * `|` binds tighter than `||`;
//! * `chan L; P` extends to the end of the enclosing group;
//! * identifiers starting with an upper-case letter are symbolic atoms
//!   (`ACK`, `NACK`) in expression position and named abstract sets (`M`)
//!   in set position; lower-case identifiers are variables;
//! * `--` and `//` start line comments.
//!
//! ```text
//! definitions := definition*
//! definition  := name ('[' var ':' set ']')? '=' process
//! process     := 'chan' chanlist ';' process | par
//! par         := choice (parop choice)*
//! parop       := '||' ('{' chanlist '|' chanlist '}')?
//! choice      := prefix ('|' prefix)*
//! prefix      := 'STOP'
//!              | chanref '!' expr '->' prefix
//!              | chanref '?' var ':' set '->' prefix
//!              | name ('[' expr ']')*
//!              | '(' process ')'
//! set         := 'NAT' | Uname | expr '..' expr | '{' elems? '}'
//! elems       := expr '..' expr | expr (',' expr)*
//! ```
//!
//! The `parop` alphabets realise the paper's `P ‖_{X,Y} Q`: writing
//! `copier ||{input,wire | wire,output} recopier` declares the operand
//! alphabets explicitly instead of inferring them from the operand text
//! (§1.2(7): "when the content of the sets X and Y are clear from the
//! context, they are omitted").
//!
//! Every token carries a [`Span`]; the `_spanned` entry points return a
//! [`SpanTree`]/[`SourceMap`] mirroring the produced syntax so later
//! analyses can report byte-accurate locations.
//!
//! # Implementation: table-driven Pratt parsing with error recovery
//!
//! Both the value-expression grammar and the process-operator grammar are
//! parsed by a single precedence-climbing (Pratt) loop each, driven by a
//! binding-power table ([`infix_expr_op`], [`proc_op_bp`]) instead of one
//! recursive function per precedence level. Comparison operators are
//! non-associative: `1 < 2 < 3` is rejected, exactly as in the layered
//! grammar this parser replaced.
//!
//! The strict entry points ([`parse_definitions`], [`parse_process`], …)
//! fail on the first error. The recovering entry point [`parse_module`]
//! instead records every spanned [`ParseError`], resynchronises at the
//! next definition boundary (a non-keyword identifier at the start of a
//! line followed by `=`, or `name[…] =`), and plugs a
//! [`Process::Error`] hole into the failed definition so every *other*
//! definition still parses and can be analysed.

use std::sync::Arc;

use csp_trace::Value;

use crate::{
    BinOp, ChanRef, DefSpans, Definition, Definitions, Expr, ParseError, Process, SetExpr,
    SourceMap, Span, SpanTree, UnOp,
};

/// Parses a list of process equations.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on malformed input.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_definitions;
///
/// let defs = parse_definitions(
///     "-- the protocol of §1.3
///      sender = input?y:M -> q[y]
///      q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
///      receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
///                              | wire!NACK -> receiver)
///      protocol = chan wire; (sender || receiver)",
/// ).unwrap();
/// assert_eq!(defs.len(), 4);
/// ```
pub fn parse_definitions(src: &str) -> Result<Definitions, ParseError> {
    parse_definitions_spanned(src).map(|(defs, _)| defs)
}

/// Parses a list of process equations, also returning a [`SourceMap`]
/// with the span of each defined name and a [`SpanTree`] over each body.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending token's span on malformed
/// input.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_definitions_spanned;
///
/// let (defs, map) = parse_definitions_spanned(
///     "copier = input?x:NAT -> wire!x -> copier",
/// ).unwrap();
/// assert_eq!(defs.len(), 1);
/// let spans = map.get("copier").unwrap();
/// assert_eq!(spans.name.line, 1);
/// assert_eq!(spans.name.column, 1);
/// assert_eq!(spans.body.span.column, 10); // the `input` prefix
/// ```
pub fn parse_definitions_spanned(src: &str) -> Result<(Definitions, SourceMap), ParseError> {
    let module = parse_module(src);
    match module.errors.into_iter().next() {
        Some(e) => Err(e),
        None => Ok((module.defs, module.map)),
    }
}

/// The result of a recovering parse of a whole module: everything that
/// *did* parse, plus every error encountered on the way.
///
/// Definitions whose body failed to parse are still present, with a
/// [`Process::Error`] hole as their body, so later definitions that call
/// them resolve normally instead of cascading into spurious
/// undefined-name findings.
///
/// # Examples
///
/// ```
/// use csp_lang::parse_module;
///
/// // The first definition is broken; the second still parses.
/// let m = parse_module("p = c!0 -> ->\nq = d!1 -> STOP");
/// assert_eq!(m.errors.len(), 1);
/// assert_eq!(m.defs.len(), 2);
/// assert!(m.map.get("q").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedModule {
    /// Every definition that parsed, including error-hole placeholders.
    pub defs: Definitions,
    /// Spans for every entry of `defs`.
    pub map: SourceMap,
    /// All parse (and lex) errors, in source order.
    pub errors: Vec<ParseError>,
    /// The full source extent of each parsed definition, in source
    /// order: from the first byte of its name to the last byte of its
    /// body. Slicing the source with an extent yields the definition's
    /// text, which incremental analyses hash for change detection.
    pub extents: Vec<(String, Span)>,
}

/// Parses a whole module with error recovery; never fails.
///
/// On a parse error the offending [`ParseError`] is recorded, the parser
/// skips ahead to the next definition boundary (`name =` or `name[…] =`
/// at the start of a line), and — when the failed definition's header was
/// already parsed — a [`Process::Error`] hole is installed as its body.
pub fn parse_module(src: &str) -> ParsedModule {
    let (toks, lex_errors) = lex(src);
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let mut module = ParsedModule {
        errors: lex_errors,
        ..ParsedModule::default()
    };
    while !p.at_end() {
        let start = p.here();
        let start_pos = p.pos;
        match p.definition_header() {
            Err(e) => {
                module.errors.push(e);
                p.resync_to_boundary(start_pos);
            }
            Ok((name, name_span, param)) => {
                let (body, body_spans) = match p.process() {
                    Ok(ok) => ok,
                    Err(e) => {
                        let hole = e.span();
                        module.errors.push(e);
                        p.resync_to_boundary(start_pos);
                        (Process::Error(hole), SpanTree::leaf(hole))
                    }
                };
                let def = match param {
                    Some((param, set)) => Definition::array(&name, &param, set, body),
                    None => Definition::plain(&name, body),
                };
                let end = p.prev_token_end();
                module.extents.push((
                    name.clone(),
                    Span::new(
                        start.offset,
                        end.saturating_sub(start.offset),
                        start.line,
                        start.column,
                    ),
                ));
                module.map.insert(
                    &name,
                    DefSpans {
                        name: name_span,
                        body: body_spans,
                    },
                );
                module.defs.define(def);
            }
        }
    }
    module
}

impl ParsedModule {
    /// Incrementally re-parses an edited module, reusing this (previous)
    /// parse for everything outside the edit.
    ///
    /// `self` must be the result of parsing `old_src`; the return value,
    /// when `Some`, is byte-for-byte equal to `parse_module(new_src)` —
    /// the equivalence the `parser_recovery` property tests check — but
    /// obtained by parsing only the definitions the edit touched.
    ///
    /// The stitch exploits the fact that definition-boundary lines are
    /// hard delimiters of an error-free parse: an expression that runs
    /// across a boundary line always fails at that line's `=`, so a
    /// definition that parsed *without* errors cannot have consumed any
    /// token beyond its own chunk. The edit is therefore localised to
    /// the chunks (boundary-to-boundary regions) it overlaps; those are
    /// re-parsed as a fragment, and the unedited prefix and suffix are
    /// spliced in with their spans shifted by the edit's byte/line delta.
    ///
    /// Returns `Err(self)` — meaning "fall back to a full parse", with
    /// the previous parse handed back untouched — whenever the
    /// equivalence is not provable on the cheap: errors or error holes
    /// in the reused regions (a broken definition *can* consume across a
    /// boundary), duplicate definition names, or an edit spanning
    /// essentially the whole file.
    ///
    /// Consumes `self` so the reused definitions, span trees, and
    /// extents are *moved* into the result; the only per-revision work
    /// proportional to the reused text is the diff itself.
    #[allow(clippy::result_large_err)] // Err is the module handed back.
    pub fn reparse(self, old_src: &str, new_src: &str) -> Result<ParsedModule, ParsedModule> {
        use std::collections::BTreeSet;

        if old_src == new_src {
            return Ok(self);
        }
        let old = old_src.as_bytes();
        let new = new_src.as_bytes();

        // Longest common prefix and suffix, then aligned outward to line
        // starts (always char boundaries) so columns survive the splice.
        let max = old.len().min(new.len());
        let mut common = 0;
        while common < max && old[common] == new[common] {
            common += 1;
        }
        let window_start = old_src[..common].rfind('\n').map_or(0, |i| i + 1);
        let mut s = 0;
        while s < max - common && old[old.len() - 1 - s] == new[new.len() - 1 - s] {
            s += 1;
        }
        let old_tail = old.len() - s;
        let old_resume = old_src[old_tail..]
            .find('\n')
            .map_or(old.len(), |i| old_tail + i + 1);

        // Chunk boundaries: the line starts of the definition extents
        // (ascending, because extents are recorded in source order and a
        // line holds at most one definition header).
        let chunk_starts: Vec<usize> = self
            .extents
            .iter()
            .map(|(_, e)| old_src[..e.offset].rfind('\n').map_or(0, |i| i + 1))
            .collect();
        let reparse_start = chunk_starts
            .iter()
            .copied()
            .filter(|&c| c <= window_start)
            .max()
            .unwrap_or(0);
        let old_stitch = chunk_starts
            .iter()
            .copied()
            .filter(|&c| c >= old_resume)
            .min()
            .unwrap_or(old.len());
        if reparse_start == 0 && old_stitch >= old.len() {
            return Err(self); // nothing reusable; a full parse is no slower.
        }

        // Every recorded error must lie inside the re-parsed window (an
        // end-of-file error sits at `old.len()` when the window reaches
        // the end). Errors in a reused region would have to be spliced,
        // and a broken definition just before the window could have
        // consumed tokens across the boundary — both mean full parse.
        let err_hi = if old_stitch >= old.len() {
            old.len() + 1
        } else {
            old_stitch
        };
        if self
            .errors
            .iter()
            .any(|e| e.span().offset < reparse_start || e.span().offset >= err_hi)
        {
            return Err(self);
        }

        // Classify extents into reused prefix/suffix and re-parsed
        // middle; each class is a contiguous range of the (ascending)
        // extent list.
        if self.defs.len() != self.extents.len() {
            return Err(self); // redefinitions collapsed entries.
        }
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for (name, _) in &self.extents {
            if !names.insert(name.as_str()) {
                return Err(self); // duplicate names make reuse ambiguous.
            }
        }
        drop(names);
        let prefix_end = chunk_starts.partition_point(|&c| c < reparse_start);
        let middle_end = chunk_starts.partition_point(|&c| c < old_stitch);
        if self.extents[..prefix_end]
            .iter()
            .any(|(_, ext)| ext.end() > reparse_start)
        {
            return Err(self); // an extent straddling the boundary.
        }
        // A reused definition with an error hole had its error attributed
        // past its own chunk; only hole-free parses are provably local.
        let reused_broken = self
            .defs
            .iter()
            .enumerate()
            .any(|(i, def)| (i < prefix_end || i >= middle_end) && def.body().has_error_hole());
        if reused_broken {
            return Err(self);
        }

        let delta = new.len() as isize - old.len() as isize;
        let new_stitch = match usize::try_from(old_stitch as isize + delta) {
            Ok(n) if n <= new.len() && n >= reparse_start => n,
            _ => return Err(self),
        };
        let mut frag = parse_module(&new_src[reparse_start..new_stitch]);
        if !frag.errors.is_empty() {
            // The fragment's last definition may have been cut off at the
            // stitch; its in-context error would differ. Full parse.
            return Err(self);
        }

        let nl = |bytes: &[u8]| bytes.iter().filter(|&&b| b == b'\n').count() as isize;
        let frag_bytes = reparse_start as isize;
        let frag_lines = nl(&new[..reparse_start]);
        let suffix_lines = nl(&new[..new_stitch]) - nl(&old[..old_stitch]);

        // All guards passed: deconstruct and splice by moves.
        let ParsedModule {
            defs,
            mut map,
            errors: _,
            extents,
        } = self;
        let mut order = defs.into_vec();
        let suffix_defs = order.split_off(middle_end);
        order.truncate(prefix_end);
        let prefix_defs = order;
        let mut ext = extents;
        let suffix_ext = ext.split_off(middle_end);
        let middle_ext = ext.split_off(prefix_end);
        let prefix_ext = ext;
        for (name, _) in &middle_ext {
            map.remove(name);
        }

        let mut out = ParsedModule::default();
        for d in prefix_defs {
            out.defs.define(d);
        }
        for (name, e) in prefix_ext {
            if let Some(ds) = map.remove(&name) {
                out.map.insert(&name, ds);
            }
            out.extents.push((name, e));
        }
        frag.map.shift_mut(frag_bytes, frag_lines);
        for (name, e) in frag.extents {
            out.extents.push((name, e.shifted(frag_bytes, frag_lines)));
        }
        out.defs.extend_with(frag.defs);
        out.map.extend_with(frag.map);
        for d in suffix_defs {
            out.defs.define(d);
        }
        for (name, e) in suffix_ext {
            if let Some(mut ds) = map.remove(&name) {
                ds.shift_mut(delta, suffix_lines);
                out.map.insert(&name, ds);
            }
            out.extents.push((name, e.shifted(delta, suffix_lines)));
        }
        Ok(out)
    }
}

/// Parses a single process expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_process(src: &str) -> Result<Process, ParseError> {
    parse_process_spanned(src).map(|(p, _)| p)
}

/// Parses a single process expression together with its [`SpanTree`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_process_spanned(src: &str) -> Result<(Process, SpanTree), ParseError> {
    let mut p = Parser::new(src)?;
    let (proc, spans) = p.process()?;
    p.expect_end()?;
    Ok((proc, spans))
}

/// Parses a single value expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a set expression such as `NAT`, `{ACK, NACK}`, `0..3`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_set_expr(src: &str) -> Result<SetExpr, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.set_expr()?;
    p.expect_end()?;
    Ok(s)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Arrow,  // ->
    Query,  // ?
    Bang,   // !
    Colon,  // :
    Semi,   // ;
    Comma,  // ,
    Bar,    // |
    BarBar, // ||
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Eq,   // =
    EqEq, // ==
    Ne,   // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    DotDot, // ..
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "`{s}`"),
            Tok::Int(n) => return write!(f, "`{n}`"),
            Tok::Arrow => "`->`",
            Tok::Query => "`?`",
            Tok::Bang => "`!`",
            Tok::Colon => "`:`",
            Tok::Semi => "`;`",
            Tok::Comma => "`,`",
            Tok::Bar => "`|`",
            Tok::BarBar => "`||`",
            Tok::LParen => "`(`",
            Tok::RParen => "`)`",
            Tok::LBrack => "`[`",
            Tok::RBrack => "`]`",
            Tok::LBrace => "`{`",
            Tok::RBrace => "`}`",
            Tok::Eq => "`=`",
            Tok::EqEq => "`==`",
            Tok::Ne => "`!=`",
            Tok::Lt => "`<`",
            Tok::Le => "`<=`",
            Tok::Gt => "`>`",
            Tok::Ge => "`>=`",
            Tok::Plus => "`+`",
            Tok::Minus => "`-`",
            Tok::Star => "`*`",
            Tok::Slash => "`/`",
            Tok::Percent => "`%`",
            Tok::DotDot => "`..`",
        };
        write!(f, "{s}")
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    span: Span,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src_len: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.char_indices().peekable(),
            src_len: src.len(),
            line: 1,
            column: 1,
        }
    }

    /// The current character without consuming it.
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Byte offset of the next character (source length at end).
    fn offset(&mut self) -> usize {
        self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src_len)
    }

    /// Consumes one character, maintaining line/column.
    fn advance(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

/// Tokenises `src`, accumulating lexical errors instead of aborting: a
/// bad character is recorded and skipped so the stream (and recovery)
/// continues. Strict callers fail on `errors.first()`, which is exactly
/// the error the abort-on-first lexer used to produce.
fn lex(src: &str) -> (Vec<Spanned>, Vec<ParseError>) {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    let mut errors = Vec::new();

    while let Some(c) = lx.peek() {
        let start = lx.offset();
        let (line, column) = (lx.line, lx.column);
        let tok = match c {
            c if c.is_whitespace() => {
                lx.advance();
                continue;
            }
            '-' => {
                lx.advance();
                match lx.peek() {
                    Some('>') => {
                        lx.advance();
                        Tok::Arrow
                    }
                    Some('-') => {
                        // line comment
                        while let Some(c) = lx.advance() {
                            if c == '\n' {
                                break;
                            }
                        }
                        continue;
                    }
                    _ => Tok::Minus,
                }
            }
            '/' => {
                lx.advance();
                if lx.peek() == Some('/') {
                    while let Some(c) = lx.advance() {
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                Tok::Slash
            }
            '|' => {
                lx.advance();
                if lx.peek() == Some('|') {
                    lx.advance();
                    Tok::BarBar
                } else {
                    Tok::Bar
                }
            }
            '=' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::EqEq
                } else {
                    Tok::Eq
                }
            }
            '!' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            '<' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                lx.advance();
                if lx.peek() == Some('=') {
                    lx.advance();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '.' => {
                lx.advance();
                if lx.peek() == Some('.') {
                    lx.advance();
                    Tok::DotDot
                } else {
                    errors.push(ParseError::at(
                        "stray `.` (did you mean `..`?)",
                        Span::new(start, 1, line, column),
                    ));
                    continue;
                }
            }
            '?' => {
                lx.advance();
                Tok::Query
            }
            ':' => {
                lx.advance();
                Tok::Colon
            }
            ';' => {
                lx.advance();
                Tok::Semi
            }
            ',' => {
                lx.advance();
                Tok::Comma
            }
            '(' => {
                lx.advance();
                Tok::LParen
            }
            ')' => {
                lx.advance();
                Tok::RParen
            }
            '[' => {
                lx.advance();
                Tok::LBrack
            }
            ']' => {
                lx.advance();
                Tok::RBrack
            }
            '{' => {
                lx.advance();
                Tok::LBrace
            }
            '}' => {
                lx.advance();
                Tok::RBrace
            }
            '+' => {
                lx.advance();
                Tok::Plus
            }
            '*' => {
                lx.advance();
                Tok::Star
            }
            '%' => {
                lx.advance();
                Tok::Percent
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(d) = lx.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        lx.advance();
                    } else {
                        break;
                    }
                }
                match n.parse::<i64>() {
                    Ok(val) => Tok::Int(val),
                    Err(_) => {
                        errors.push(ParseError::at(
                            "integer literal too large",
                            Span::new(start, n.len(), line, column),
                        ));
                        continue;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(d) = lx.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        lx.advance();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => {
                lx.advance();
                errors.push(ParseError::at(
                    format!("unexpected character `{other}`"),
                    Span::new(start, other.len_utf8(), line, column),
                ));
                continue;
            }
        };
        let end = lx.offset();
        out.push(Spanned {
            tok,
            span: Span::new(start, end - start, line, column),
        });
    }
    (out, errors)
}

// ------------------------------------------------------- operator tables --

/// Binding powers for the two process operators, `(left, right)`; larger
/// binds tighter. Left-associative, so `right = left + 1`.
const BP_PARALLEL: (u8, u8) = (1, 2); // ||
const BP_CHOICE: (u8, u8) = (3, 4); // |

/// Binding powers for infix value operators. Comparisons share one
/// non-associative level (guarded in the Pratt loop).
const BP_OR: (u8, u8) = (1, 2);
const BP_AND: (u8, u8) = (3, 4);
const BP_CMP: (u8, u8) = (5, 6);
const BP_ADD: (u8, u8) = (7, 8);
const BP_MUL: (u8, u8) = (9, 10);
/// Prefix `-`/`not` bind tighter than any infix operator.
const BP_UNARY: u8 = 11;

/// The infix value-operator table: token → (operator, left bp, right bp).
fn infix_expr_op(tok: &Tok) -> Option<(BinOp, u8, u8)> {
    let (op, (l, r)) = match tok {
        Tok::Ident(s) if s == "or" => (BinOp::Or, BP_OR),
        Tok::Ident(s) if s == "and" => (BinOp::And, BP_AND),
        Tok::EqEq => (BinOp::Eq, BP_CMP),
        Tok::Ne => (BinOp::Ne, BP_CMP),
        Tok::Lt => (BinOp::Lt, BP_CMP),
        Tok::Le => (BinOp::Le, BP_CMP),
        Tok::Gt => (BinOp::Gt, BP_CMP),
        Tok::Ge => (BinOp::Ge, BP_CMP),
        Tok::Plus => (BinOp::Add, BP_ADD),
        Tok::Minus => (BinOp::Sub, BP_ADD),
        Tok::Star => (BinOp::Mul, BP_MUL),
        Tok::Slash => (BinOp::Div, BP_MUL),
        Tok::Percent => (BinOp::Mod, BP_MUL),
        _ => return None,
    };
    Some((op, l, r))
}

/// The process-operator table: token → (is `||`, left bp, right bp).
fn proc_op_bp(tok: &Tok) -> Option<(bool, u8, u8)> {
    match tok {
        Tok::BarBar => Some((true, BP_PARALLEL.0, BP_PARALLEL.1)),
        Tok::Bar => Some((false, BP_CHOICE.0, BP_CHOICE.1)),
        _ => None,
    }
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let (toks, errors) = lex(src);
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        Ok(Parser {
            toks,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    /// The span of the current token; past the end, a zero-length span
    /// just after the last token.
    fn here(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(s) => s.span,
            None => match self.toks.last() {
                Some(s) => Span::new(s.span.end(), 0, s.span.line, s.span.column + s.span.len),
                None => Span::new(self.src_len, 0, 1, 1),
            },
        }
    }

    /// One past the end offset of the last consumed token (0 if none).
    fn prev_token_end(&self) -> usize {
        self.toks[..self.pos].last().map_or(0, |s| s.span.end())
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(msg, self.here())
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {tok}, found {t}"))),
            None => Err(self.err(format!("expected {tok}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing {}",
                self.peek().expect("non-empty")
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    // ----------------------------------------------------- definitions --

    /// The header of a definition: `name` or `name[var:set]`, up to and
    /// including the `=`. Split from the body so the recovering driver
    /// can install an error-hole body when only the body is broken.
    #[allow(clippy::type_complexity)]
    fn definition_header(
        &mut self,
    ) -> Result<(String, Span, Option<(String, SetExpr)>), ParseError> {
        let name_span = self.here();
        let name = self.ident()?;
        if is_keyword(&name) {
            return Err(ParseError::at(
                format!("`{name}` is reserved and cannot be defined"),
                name_span,
            ));
        }
        let param = if self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let param = self.ident()?;
            self.expect(&Tok::Colon)?;
            let set = self.set_expr()?;
            self.expect(&Tok::RBrack)?;
            Some((param, set))
        } else {
            None
        };
        self.expect(&Tok::Eq)?;
        Ok((name, name_span, param))
    }

    /// True when the current token can start a definition: a non-keyword
    /// identifier that is the first token on its line, followed by `=`
    /// (or by a `[…]` parameter group and then `=`).
    fn at_def_boundary(&self) -> bool {
        let Some(cur) = self.toks.get(self.pos) else {
            return false;
        };
        let Tok::Ident(name) = &cur.tok else {
            return false;
        };
        if is_keyword(name) {
            return false;
        }
        let first_on_line = match self.pos.checked_sub(1).and_then(|i| self.toks.get(i)) {
            Some(prev) => prev.span.line < cur.span.line,
            None => true,
        };
        if !first_on_line {
            return false;
        }
        match self.toks.get(self.pos + 1).map(|s| &s.tok) {
            Some(Tok::Eq) => true,
            Some(Tok::LBrack) => {
                // `q[x:M] = …` — find the matching `]`, then require `=`.
                let mut depth = 0usize;
                let mut j = self.pos + 1;
                while let Some(s) = self.toks.get(j) {
                    match s.tok {
                        Tok::LBrack => depth += 1,
                        Tok::RBrack => {
                            depth -= 1;
                            if depth == 0 {
                                return matches!(
                                    self.toks.get(j + 1).map(|s| &s.tok),
                                    Some(Tok::Eq)
                                );
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                false
            }
            _ => false,
        }
    }

    /// Skips to the next definition boundary (or the end of input).
    ///
    /// The scan restarts just past the broken definition's first token
    /// rather than at the error position: an expression may have
    /// consumed the next definition's name as an operand (`z!last` right
    /// before `last = …`) before failing, and the boundary must not be
    /// lost with it. Restarting at `start_pos + 1` also guarantees the
    /// recovery loop always advances.
    fn resync_to_boundary(&mut self, start_pos: usize) {
        self.pos = (start_pos + 1).min(self.toks.len());
        while !self.at_end() && !self.at_def_boundary() {
            self.pos += 1;
        }
    }

    // ------------------------------------------------------- processes --

    // process := 'chan' chanlist ';' process | par
    fn process(&mut self) -> Result<(Process, SpanTree), ParseError> {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == "chan" {
                let kw_span = self.here();
                self.bump();
                let channels = self.chan_list()?;
                self.expect(&Tok::Semi)?;
                let (body, body_spans) = self.process()?;
                return Ok((
                    Process::Hide {
                        channels,
                        body: Arc::new(body),
                    },
                    SpanTree::node(kw_span, vec![body_spans]),
                ));
            }
        }
        self.proc_bp(0)
    }

    /// The Pratt loop over the process operators `|` and `||`. Both are
    /// left-associative; `|` binds tighter (see the table above), so the
    /// single loop replaces the old `parallel`/`choice` pair.
    fn proc_bp(&mut self, min_bp: u8) -> Result<(Process, SpanTree), ParseError> {
        let (mut left, mut lspans) = self.prefix()?;
        while let Some((is_par, l_bp, r_bp)) = self.peek().and_then(proc_op_bp) {
            if l_bp < min_bp {
                break;
            }
            let op_span = self.here();
            self.bump();
            if is_par {
                // Optional explicit alphabets: `||{a,b | c,d}` (§1.2(7)'s
                // `P ‖_{X,Y} Q` written out).
                let (left_alpha, right_alpha) = if self.peek() == Some(&Tok::LBrace) {
                    self.bump();
                    let la = self.chan_list()?;
                    self.expect(&Tok::Bar)?;
                    let ra = self.chan_list()?;
                    self.expect(&Tok::RBrace)?;
                    (Some(la), Some(ra))
                } else {
                    (None, None)
                };
                let (right, rspans) = self.proc_bp(r_bp)?;
                left = Process::Parallel {
                    left: Arc::new(left),
                    right: Arc::new(right),
                    left_alpha,
                    right_alpha,
                };
                lspans = SpanTree::node(op_span, vec![lspans, rspans]);
            } else {
                let (right, rspans) = self.proc_bp(r_bp)?;
                left = left.or(right);
                lspans = SpanTree::node(op_span, vec![lspans, rspans]);
            }
        }
        Ok((left, lspans))
    }

    fn prefix(&mut self) -> Result<(Process, SpanTree), ParseError> {
        // A name that opens a new definition (`name =` at line start)
        // cannot also be a call continuation — refusing it here keeps a
        // dangling `->` at the end of one definition from swallowing the
        // next definition's header.
        if self.at_def_boundary() {
            let t = self.peek().expect("boundary token exists");
            return Err(self.err(format!("expected a process, found start of definition {t}")));
        }
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let p = self.process()?;
                self.expect(&Tok::RParen)?;
                Ok(p)
            }
            Some(Tok::Ident(s)) if s == "STOP" => {
                let span = self.here();
                self.bump();
                Ok((Process::Stop, SpanTree::leaf(span)))
            }
            Some(Tok::Ident(s)) if s == "chan" => self.process(),
            Some(Tok::Ident(_)) => self.prefix_from_name(),
            Some(t) => Err(self.err(format!("expected a process, found {t}"))),
            None => Err(self.err("expected a process, found end of input")),
        }
    }

    /// Something starting with a (possibly subscripted) name: an output
    /// `c[..]!e -> P`, an input `c[..]?x:M -> P`, or a call `p[..]`.
    fn prefix_from_name(&mut self) -> Result<(Process, SpanTree), ParseError> {
        let name_span = self.here();
        let name = self.ident()?;
        let mut subs: Vec<Expr> = Vec::new();
        while self.peek() == Some(&Tok::LBrack) {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RBrack)?;
            subs.push(e);
        }
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                let msg = self.expr()?;
                self.expect(&Tok::Arrow)?;
                let (then, then_spans) = self.prefix()?;
                Ok((
                    Process::Output {
                        chan: ChanRef::with_indices(&name, subs),
                        msg,
                        then: Arc::new(then),
                    },
                    SpanTree::node(name_span, vec![then_spans]),
                ))
            }
            Some(Tok::Query) => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Colon)?;
                let set = self.set_expr()?;
                self.expect(&Tok::Arrow)?;
                let (then, then_spans) = self.prefix()?;
                Ok((
                    Process::Input {
                        chan: ChanRef::with_indices(&name, subs),
                        var,
                        set,
                        then: Arc::new(then),
                    },
                    SpanTree::node(name_span, vec![then_spans]),
                ))
            }
            _ => Ok((
                Process::Call { name, args: subs },
                SpanTree::leaf(name_span),
            )),
        }
    }

    // chanlist := chanitem (',' chanitem)*
    // chanitem := name ('[' (expr | expr '..' expr) ']')*
    fn chan_list(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let mut out = Vec::new();
        loop {
            out.extend(self.chan_item()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn chan_item(&mut self) -> Result<Vec<ChanRef>, ParseError> {
        let name = self.ident()?;
        if self.peek() != Some(&Tok::LBrack) {
            return Ok(vec![ChanRef::simple(&name)]);
        }
        self.bump();
        let lo = self.expr()?;
        if self.peek() == Some(&Tok::DotDot) {
            // A family like col[0..3], expanded when bounds are constant.
            self.bump();
            let hi = self.expr()?;
            self.expect(&Tok::RBrack)?;
            let (l, h) = match (constant_int(&lo), constant_int(&hi)) {
                (Some(l), Some(h)) => (l, h),
                _ => return Err(self.err("channel-family bounds in `chan` lists must be constant")),
            };
            Ok((l..=h)
                .map(|i| ChanRef::indexed(&name, Expr::int(i)))
                .collect())
        } else {
            self.expect(&Tok::RBrack)?;
            Ok(vec![ChanRef::indexed(&name, lo)])
        }
    }

    // set := 'NAT' | Uname | '{' elems? '}' | expr '..' expr
    fn set_expr(&mut self) -> Result<SetExpr, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "NAT" => {
                self.bump();
                Ok(SetExpr::Nat)
            }
            Some(Tok::LBrace) => {
                self.bump();
                if self.peek() == Some(&Tok::RBrace) {
                    self.bump();
                    return Ok(SetExpr::Enum(Vec::new()));
                }
                let first = self.expr()?;
                if self.peek() == Some(&Tok::DotDot) {
                    self.bump();
                    let hi = self.expr()?;
                    self.expect(&Tok::RBrace)?;
                    return Ok(SetExpr::Range(Box::new(first), Box::new(hi)));
                }
                let mut elems = vec![first];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    elems.push(self.expr()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(SetExpr::Enum(elems))
            }
            Some(Tok::Ident(s)) if starts_upper(s) && self.peek2() != Some(&Tok::DotDot) => {
                // A named abstract set such as `M`.
                let n = s.clone();
                self.bump();
                Ok(SetExpr::Named(n))
            }
            _ => {
                let lo = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.expr()?;
                Ok(SetExpr::Range(Box::new(lo), Box::new(hi)))
            }
        }
    }

    // ------------------------------------------------------ expressions --

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_bp(0)
    }

    /// The Pratt loop over the infix value operators of
    /// [`infix_expr_op`]. Comparisons are non-associative: after one
    /// comparison at this level, a second one breaks the loop and is left
    /// for the caller to reject — `1 < 2 < 3` is an error, as it was
    /// under the layered grammar.
    fn expr_bp(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                Expr::Un(UnOp::Neg, Box::new(self.expr_bp(BP_UNARY)?))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                Expr::Un(UnOp::Not, Box::new(self.expr_bp(BP_UNARY)?))
            }
            _ => self.atom_expr()?,
        };
        let mut seen_cmp = false;
        while let Some((op, l_bp, r_bp)) = self.peek().and_then(infix_expr_op) {
            if l_bp < min_bp {
                break;
            }
            if l_bp == BP_CMP.0 {
                if seen_cmp {
                    break;
                }
                seen_cmp = true;
            }
            self.bump();
            let rhs = self.expr_bp(r_bp)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Expr::int(n)),
            Some(Tok::Ident(s)) if s == "true" => Ok(Expr::Const(Value::Bool(true))),
            Some(Tok::Ident(s)) if s == "false" => Ok(Expr::Const(Value::Bool(false))),
            Some(Tok::Ident(s)) => {
                if self.peek() == Some(&Tok::LBrack) {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBrack)?;
                    Ok(Expr::ArrayRef(s, Box::new(idx)))
                } else if starts_upper(&s) && s != "NAT" {
                    Ok(Expr::sym(&s))
                } else {
                    Ok(Expr::var(&s))
                }
            }
            Some(Tok::LParen) => {
                let first = self.expr()?;
                if self.peek() == Some(&Tok::Comma) {
                    let mut es = vec![first];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        es.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Tuple(es))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.err(format!("expected an expression, found {t}")))
            }
            None => Err(self.err("expected an expression, found end of input")),
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "STOP" | "chan" | "NAT" | "and" | "or" | "not" | "true" | "false"
    )
}

fn constant_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Value::Int(n)) => Some(*n),
        Expr::Un(UnOp::Neg, inner) => constant_int(inner).map(|n| -n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_copier() {
        let p = parse_process("input?x:NAT -> wire!x -> copier").unwrap();
        match p {
            Process::Input { var, set, then, .. } => {
                assert_eq!(var, "x");
                assert_eq!(set, SetExpr::Nat);
                assert!(matches!(*then, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        // wire?x:NAT -> output!x -> copier parses as wire?x -> (output!x -> copier).
        let p = parse_process("wire?x:NAT -> output!x -> copier").unwrap();
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn arrow_binds_tighter_than_bar() {
        // a!1 -> STOP | b!2 -> STOP  ==  (a!1 -> STOP) | (b!2 -> STOP)
        let p = parse_process("a!1 -> STOP | b!2 -> STOP").unwrap();
        assert!(matches!(p, Process::Choice(_, _)));
    }

    #[test]
    fn bar_binds_tighter_than_barbar() {
        let p = parse_process("a!1 -> STOP | b!1 -> STOP || c!1 -> STOP").unwrap();
        match p {
            Process::Parallel { left, right, .. } => {
                assert!(matches!(*left, Process::Choice(_, _)));
                assert!(matches!(*right, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compositions_are_left_associative() {
        let p = parse_process("a!1 -> STOP || b!1 -> STOP || c!1 -> STOP").unwrap();
        match p {
            Process::Parallel { left, right, .. } => {
                assert!(matches!(*left, Process::Parallel { .. }));
                assert!(matches!(*right, Process::Output { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse_process("a!1 -> STOP | b!1 -> STOP | c!1 -> STOP").unwrap();
        match p {
            Process::Choice(left, _) => assert!(matches!(*left, Process::Choice(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_extends_over_parallel() {
        let p = parse_process("chan wire; copier || recopier").unwrap();
        match p {
            Process::Hide { channels, body } => {
                assert_eq!(channels.len(), 1);
                assert!(matches!(*body, Process::Parallel { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chan_family_expansion() {
        let p = parse_process("chan col[0..3]; network").unwrap();
        match p {
            Process::Hide { channels, .. } => {
                assert_eq!(channels.len(), 4);
                assert_eq!(channels[0].to_string(), "col[0]");
                assert_eq!(channels[3].to_string(), "col[3]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_constant_family_bounds_rejected() {
        assert!(parse_process("chan col[0..n]; network").is_err());
    }

    #[test]
    fn subscripted_call_and_channels() {
        let p = parse_process("row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]")
            .unwrap();
        assert_eq!(p.size(), 4);
        // Round-trip through printing re-parses (see printer tests).
        let text = p.to_string();
        assert!(text.contains("col[(i - 1)]"), "{text}");
    }

    #[test]
    fn uppercase_atoms_and_named_sets() {
        let p = parse_process("wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x]").unwrap();
        match &p {
            Process::Choice(a, _) => match a.as_ref() {
                Process::Input { set, .. } => {
                    assert_eq!(set, &SetExpr::Enum(vec![Expr::sym("ACK")]));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Named set in input position:
        let q = parse_process("input?y:M -> q[y]").unwrap();
        match q {
            Process::Input { set, .. } => assert_eq!(set, SetExpr::Named("M".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_expressions() {
        assert_eq!(parse_set_expr("NAT").unwrap(), SetExpr::Nat);
        assert_eq!(
            parse_set_expr("0..3").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{0..3}").unwrap(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::int(3)))
        );
        assert_eq!(
            parse_set_expr("{ACK, NACK}").unwrap(),
            SetExpr::Enum(vec![Expr::sym("ACK"), Expr::sym("NACK")])
        );
        assert_eq!(parse_set_expr("M").unwrap(), SetExpr::Named("M".into()));
        assert_eq!(parse_set_expr("{}").unwrap(), SetExpr::Enum(vec![]));
    }

    #[test]
    fn expr_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(9));
        let e = parse_expr("-2 + 1").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Int(-1));
        let e = parse_expr("1 < 2 and not false").unwrap();
        assert_eq!(e.eval(&crate::Env::new()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons_do_not_chain() {
        assert!(parse_expr("1 < 2 < 3").is_err());
        assert!(parse_expr("1 == 2 == 3").is_err());
        // But comparisons on both sides of a logical operator are fine.
        assert!(parse_expr("1 < 2 and 2 < 3").is_ok());
    }

    #[test]
    fn definitions_with_arrays_and_comments() {
        let defs = parse_definitions(
            "-- multiplier network of §1.3(5)
             mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x+y) -> mult[i]
             zeroes = col[0]!0 -> zeroes // boundary
             last = col[3]?y:NAT -> output!y -> last",
        )
        .unwrap();
        assert_eq!(defs.len(), 3);
        let m = defs.get("mult").unwrap();
        assert_eq!(m.arity(), 1);
        assert_eq!(m.param().unwrap().0, "i");
    }

    #[test]
    fn keywords_cannot_be_defined() {
        assert!(parse_definitions("STOP = STOP").is_err());
        assert!(parse_definitions("chan = STOP").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_process("input?x NAT -> STOP").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.column() > 1);
        assert!(err.message().contains("expected"));
    }

    #[test]
    fn error_spans_carry_byte_offsets() {
        // Column 9 = byte 8 is where the offending `NAT` token starts.
        let err = parse_process("input?x NAT -> STOP").unwrap_err();
        assert_eq!(err.span().offset, 8);
        assert_eq!(err.span().len, 3);
        assert_eq!(err.column(), 9);
        // Errors on a later line still track bytes from the file start.
        let err = parse_definitions("p = c!0 -> STOP\nq = = STOP").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 5);
        assert_eq!(err.span().offset, 20);
    }

    #[test]
    fn end_of_input_errors_point_past_last_token() {
        let err = parse_process("a!1 ->").unwrap_err();
        assert_eq!(err.line(), 1);
        assert_eq!(err.span().offset, 6);
        assert_eq!(err.span().len, 0);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_process("STOP STOP").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn tuples_parse() {
        let e = parse_expr("(1, ACK)").unwrap();
        assert_eq!(e, Expr::Tuple(vec![Expr::int(1), Expr::sym("ACK")]));
    }

    #[test]
    fn empty_input_yields_empty_definitions() {
        assert!(parse_definitions("").unwrap().is_empty());
        assert!(parse_definitions("-- only a comment").unwrap().is_empty());
    }

    #[test]
    fn explicit_parens_override_choice_grouping() {
        let p = parse_process("a!1 -> (b!2 -> STOP | c!3 -> STOP)").unwrap();
        match p {
            Process::Output { then, .. } => assert!(matches!(*then, Process::Choice(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_parallel_alphabets_parse() {
        let p = parse_process("copier ||{input, wire | wire, output} recopier").unwrap();
        match p {
            Process::Parallel {
                left_alpha,
                right_alpha,
                ..
            } => {
                let la = left_alpha.expect("left alphabet");
                let ra = right_alpha.expect("right alphabet");
                assert_eq!(la.len(), 2);
                assert_eq!(la[0].to_string(), "input");
                assert_eq!(ra[1].to_string(), "output");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Families expand in alphabet position too.
        let p = parse_process("zeroes ||{col[0..1] | col[1]} last").unwrap();
        match p {
            Process::Parallel { left_alpha, .. } => {
                assert_eq!(left_alpha.unwrap().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_tree_mirrors_process_shape() {
        let (p, spans) = parse_process_spanned("a!1 -> STOP || b?x:NAT -> STOP").unwrap();
        assert!(matches!(p, Process::Parallel { .. }));
        // Root is the `||` operator.
        assert_eq!(spans.span.column, 13);
        assert_eq!(spans.children.len(), 2);
        // Left child is the `a` output prefix at column 1, with STOP below.
        assert_eq!(spans.children[0].span.column, 1);
        assert_eq!(spans.children[0].children[0].span.column, 8);
        // Right child is the `b` input prefix at column 16.
        assert_eq!(spans.children[1].span.column, 16);
        // Byte offsets line up with the source text.
        assert_eq!(spans.span.offset, 12);
        assert_eq!(spans.span.len, 2);
    }

    #[test]
    fn source_map_records_definition_spans() {
        let (defs, map) = parse_definitions_spanned(
            "copier = input?x:NAT -> wire!x -> copier\nrecopier = wire?y:NAT -> output!y -> recopier",
        )
        .unwrap();
        assert_eq!(defs.len(), 2);
        assert_eq!(map.len(), 2);
        let c = map.get("copier").unwrap();
        assert_eq!((c.name.line, c.name.column), (1, 1));
        let r = map.get("recopier").unwrap();
        assert_eq!((r.name.line, r.name.column), (2, 1));
        assert_eq!(r.name.offset, 41);
        // Body root of copier is the input prefix; its child the output.
        assert_eq!(c.body.span.column, 10);
        assert_eq!(c.body.children[0].span.column, 25);
    }

    // ------------------------------------------------------- recovery --

    #[test]
    fn recovery_preserves_later_definitions() {
        let m = parse_module(
            "broken = c!0 -> ->\n\
             good = d!1 -> STOP\n\
             caller = e!2 -> broken",
        );
        assert_eq!(m.errors.len(), 1);
        assert_eq!(m.defs.len(), 3);
        // The broken definition is present as an error hole…
        assert!(matches!(
            m.defs.get("broken").unwrap().body(),
            Process::Error(_)
        ));
        // …so `caller` resolves it, and `good` parsed normally.
        assert!(matches!(
            m.defs.get("good").unwrap().body(),
            Process::Output { .. }
        ));
        assert!(m.map.get("caller").is_some());
    }

    #[test]
    fn recovery_error_matches_strict_error() {
        let src = "p = c!0 -> STOP\nq = = STOP\nr = a!1 -> STOP";
        let strict = parse_definitions(src).unwrap_err();
        let m = parse_module(src);
        assert_eq!(m.errors[0], strict);
        // `r` survives even though `q` is broken.
        assert!(m.defs.get("r").is_some());
        assert!(matches!(m.defs.get("q").unwrap().body(), Process::Error(_)));
    }

    #[test]
    fn recovery_collects_multiple_errors() {
        let m = parse_module(
            "a = !\n\
             b = c!0 -> STOP\n\
             c = ? ?\n\
             d = e!1 -> STOP",
        );
        assert_eq!(m.errors.len(), 2);
        assert!(m.errors[0].span().offset < m.errors[1].span().offset);
        assert_eq!(m.defs.len(), 4);
        assert!(m.defs.get("b").is_some() && m.defs.get("d").is_some());
    }

    #[test]
    fn recovery_without_header_skips_to_next_boundary() {
        // The first line has no parseable header at all.
        let m = parse_module("= = =\ngood = c!0 -> STOP");
        assert_eq!(m.errors.len(), 1);
        assert_eq!(m.defs.len(), 1);
        assert!(m.defs.get("good").is_some());
    }

    #[test]
    fn recovery_handles_array_definitions_as_boundaries() {
        let m = parse_module("bad = ->\nq[x:M] = wire!x -> q[x]");
        assert_eq!(m.errors.len(), 1);
        let q = m.defs.get("q").unwrap();
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn recovery_survives_lex_errors() {
        let m = parse_module("p = c!0 -> STOP\nq = d#1 -> STOP\nr = e!2 -> STOP");
        assert!(!m.errors.is_empty());
        assert!(m.errors.iter().any(|e| e.message().contains('#')));
        assert!(m.defs.get("p").is_some());
        assert!(m.defs.get("r").is_some());
    }

    #[test]
    fn module_extents_slice_to_definition_text() {
        let src = "copier = input?x:NAT -> wire!x -> copier\nrecopier = wire?y:NAT -> output!y -> recopier";
        let m = parse_module(src);
        assert_eq!(m.extents.len(), 2);
        let (name, extent) = &m.extents[0];
        assert_eq!(name, "copier");
        assert_eq!(
            &src[extent.offset..extent.end()],
            "copier = input?x:NAT -> wire!x -> copier"
        );
        let (name, extent) = &m.extents[1];
        assert_eq!(name, "recopier");
        assert!(src[extent.offset..extent.end()].starts_with("recopier ="));
    }

    #[test]
    fn module_on_valid_corpus_matches_strict_parse() {
        let src = "-- the protocol of §1.3
             sender = input?y:M -> q[y]
             q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
             receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                                     | wire!NACK -> receiver)
             protocol = chan wire; (sender || receiver)";
        let (defs, map) = parse_definitions_spanned(src).unwrap();
        let m = parse_module(src);
        assert!(m.errors.is_empty());
        assert_eq!(m.defs, defs);
        assert_eq!(m.map, map);
    }

    #[test]
    fn error_hole_spans_lie_within_input() {
        let src = "p = c!0 ->\nq = d!1 -> STOP";
        let m = parse_module(src);
        for e in &m.errors {
            assert!(e.span().end() <= src.len());
        }
        for (_, extent) in &m.extents {
            assert!(extent.end() <= src.len());
        }
    }
}
