//! Evaluation environments.
//!
//! §3.2: the semantic functions are parameterised by an *environment*
//! mapping free variables to values. [`Env`] is the value-variable part of
//! the paper's ρ; channel histories (`ch(s)`) and process meanings are
//! layered on top by the `csp-assert` and `csp-semantics` crates
//! respectively.

use std::collections::BTreeMap;
use std::fmt;

use csp_trace::Value;

/// A finite map from variable names to [`Value`]s.
///
/// Environments are small (the paper's programs bind a handful of
/// variables), so cloning on extension (`ρ[v/x]`) is cheap and keeps the
/// API purely functional, matching the semantic equations.
///
/// # Examples
///
/// ```
/// use csp_lang::Env;
/// use csp_trace::Value;
///
/// let rho = Env::new().bind("x", Value::nat(3));
/// assert_eq!(rho.lookup("x"), Some(&Value::nat(3)));
/// assert_eq!(rho.lookup("y"), None);
/// // ρ[v/x] shadows:
/// let rho2 = rho.bind("x", Value::nat(4));
/// assert_eq!(rho2.lookup("x"), Some(&Value::nat(4)));
/// assert_eq!(rho.lookup("x"), Some(&Value::nat(3)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Env {
    bindings: BTreeMap<String, Value>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// `ρ[v/x]` — the environment identical to `self` except that `x`
    /// maps to `v`.
    pub fn bind(&self, x: &str, v: Value) -> Env {
        let mut bindings = self.bindings.clone();
        bindings.insert(x.to_string(), v);
        Env { bindings }
    }

    /// In-place binding, for builders and loops.
    pub fn bind_mut(&mut self, x: &str, v: Value) {
        self.bindings.insert(x.to_string(), v);
    }

    /// The value of variable `x`, if bound.
    pub fn lookup(&self, x: &str) -> Option<&Value> {
        self.bindings.get(x)
    }

    /// True if `x` is bound.
    pub fn contains(&self, x: &str) -> bool {
        self.bindings.contains_key(x)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Env {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Env {
            bindings: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_persistent() {
        let e0 = Env::new();
        let e1 = e0.bind("x", Value::nat(1));
        let e2 = e1.bind("y", Value::nat(2));
        assert!(e0.is_empty());
        assert_eq!(e1.len(), 1);
        assert_eq!(e2.len(), 2);
        assert_eq!(e2.lookup("x"), Some(&Value::nat(1)));
    }

    #[test]
    fn shadowing_takes_latest() {
        let e = Env::new().bind("x", Value::nat(1)).bind("x", Value::nat(9));
        assert_eq!(e.lookup("x"), Some(&Value::nat(9)));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn display_and_iteration_sorted() {
        let e = Env::new().bind("b", Value::nat(2)).bind("a", Value::nat(1));
        assert_eq!(e.to_string(), "{a = 1, b = 2}");
        let names: Vec<&str> = e.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn from_iterator() {
        let e: Env = vec![("x".to_string(), Value::nat(1))].into_iter().collect();
        assert!(e.contains("x"));
    }
}
