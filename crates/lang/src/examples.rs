//! The paper's example systems as parsed definition lists.
//!
//! Every example of §1.3 is provided both as source text (so the examples
//! double as parser fixtures) and as a ready-made [`Definitions`] value.

use csp_trace::Value;

use crate::{parse_definitions, Definitions, Env};

/// §1.3(1): the copier/recopier pipeline, plus the hidden-wire network of
/// §1.2(8).
pub const PIPELINE_SRC: &str = "\
-- §1.3(1): endless copying from input to wire, wire to output
copier = input?x:NAT -> wire!x -> copier
recopier = wire?y:NAT -> output!y -> recopier
pipeline = chan wire; (copier || recopier)
";

/// §1.3(2)–(4): the ACK/NACK retransmission protocol.
pub const PROTOCOL_SRC: &str = "\
-- §1.3(2): sender inputs a value and hands it to q[y]
sender = input?y:M -> q[y]
-- §1.3(3): q[x] retransmits x until acknowledged
q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])
-- §1.3(4): receiver acknowledges or asks for retransmission
receiver = wire?z:M -> (wire!ACK -> output!z -> receiver
                        | wire!NACK -> receiver)
-- the protocol conceals the shared wire
protocol = chan wire; (sender || receiver)
";

/// §1.3(5): the multiplier array computing scalar products
/// `output_i = Σ_j v[j] × row[j]_i`.
///
/// The fixed vector `v` is host-supplied: bind its cells with
/// [`multiplier_env`].
pub const MULTIPLIER_SRC: &str = "\
-- §1.3(5): matrix-vector multiplier network
mult[i:1..3] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]
zeroes = col[0]!0 -> zeroes
last = col[3]?y:NAT -> output!y -> last
network = zeroes || mult[1] || mult[2] || mult[3] || last
multiplier = chan col[0..3]; network
";

/// A bounded FIFO buffer of capacity `n`, built (as the paper suggests by
/// example) as a chain of one-place copiers with hidden internal links.
/// Not in the paper verbatim; used by examples and benchmarks as a
/// further workload whose invariant `out ≤ in` is provable by the same
/// rules as the pipeline.
pub const BUFFER2_SRC: &str = "\
-- two-place buffer: cell0 and cell1 joined by a hidden link
cell0 = in?x:NAT -> link!x -> cell0
cell1 = link?y:NAT -> out!y -> cell1
buffer2 = chan link; (cell0 || cell1)
";

fn parse_fixture(name: &str, src: &str) -> Definitions {
    parse_definitions(src)
        .unwrap_or_else(|e| panic!("built-in example `{name}` failed to parse: {e}"))
}

/// The parsed pipeline definitions (`copier`, `recopier`, `pipeline`).
pub fn pipeline() -> Definitions {
    parse_fixture("pipeline", PIPELINE_SRC)
}

/// The parsed protocol definitions (`sender`, `q`, `receiver`,
/// `protocol`).
pub fn protocol() -> Definitions {
    parse_fixture("protocol", PROTOCOL_SRC)
}

/// The parsed multiplier definitions (`mult`, `zeroes`, `last`,
/// `network`, `multiplier`).
pub fn multiplier() -> Definitions {
    parse_fixture("multiplier", MULTIPLIER_SRC)
}

/// The parsed two-place buffer definitions (`cell0`, `cell1`, `buffer2`).
pub fn buffer2() -> Definitions {
    parse_fixture("buffer2", BUFFER2_SRC)
}

/// An environment binding the multiplier's fixed vector: `v[1] = v1`,
/// `v[2] = v2`, `v[3] = v3`.
///
/// # Examples
///
/// ```
/// use csp_lang::examples::multiplier_env;
/// use csp_trace::Value;
///
/// let env = multiplier_env(&[2, 3, 5]);
/// assert_eq!(env.lookup("v[1]"), Some(&Value::Int(2)));
/// assert_eq!(env.lookup("v[3]"), Some(&Value::Int(5)));
/// ```
pub fn multiplier_env(v: &[i64]) -> Env {
    let mut env = Env::new();
    for (i, &x) in v.iter().enumerate() {
        env.bind_mut(&format!("v[{}]", i + 1), Value::Int(x));
    }
    env
}

/// A generalised multiplier network of width `n` (the paper fixes
/// `n = 3`); used by the scaling benchmarks (experiment F2).
pub fn multiplier_src(n: usize) -> String {
    format!(
        "mult[i:1..{n}] = row[i]?x:NAT -> col[i-1]?y:NAT -> col[i]!(v[i]*x + y) -> mult[i]\n\
         zeroes = col[0]!0 -> zeroes\n\
         last = col[{n}]?y:NAT -> output!y -> last\n\
         network = zeroes || {mults} || last\n\
         multiplier = chan col[0..{n}]; network\n",
        mults = (1..=n)
            .map(|i| format!("mult[{i}]"))
            .collect::<Vec<_>>()
            .join(" || "),
    )
}

/// A generalised copier pipeline of `n` stages with hidden internal
/// links; `n = 2` is the paper's pipeline up to channel renaming.
pub fn pipeline_src(n: usize) -> String {
    assert!(n >= 1, "pipeline needs at least one stage");
    let mut out = String::new();
    for i in 0..n {
        let inp = if i == 0 {
            "input".to_string()
        } else {
            format!("link[{i}]")
        };
        let outp = if i == n - 1 {
            "output".to_string()
        } else {
            format!("link[{}]", i + 1)
        };
        out.push_str(&format!("stage{i} = {inp}?x:NAT -> {outp}!x -> stage{i}\n"));
    }
    let stages = (0..n)
        .map(|i| format!("stage{i}"))
        .collect::<Vec<_>>()
        .join(" || ");
    if n > 1 {
        out.push_str(&format!("chain = chan link[1..{}]; ({stages})\n", n - 1));
    } else {
        out.push_str(&format!("chain = {stages}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn all_fixtures_parse_and_validate() {
        assert!(validate(&pipeline(), &[]).is_empty());
        assert!(validate(&protocol(), &[]).is_empty());
        assert!(validate(&multiplier(), &["v"]).is_empty());
        assert!(validate(&buffer2(), &[]).is_empty());
    }

    #[test]
    fn pipeline_names() {
        let d = pipeline();
        assert!(d.get("copier").is_some());
        assert!(d.get("recopier").is_some());
        assert!(d.get("pipeline").is_some());
    }

    #[test]
    fn protocol_has_array_definition() {
        let d = protocol();
        assert_eq!(d.get("q").unwrap().arity(), 1);
        assert_eq!(d.get("sender").unwrap().arity(), 0);
    }

    #[test]
    fn generalised_multiplier_parses_for_small_widths() {
        for n in 1..=5 {
            let src = multiplier_src(n);
            let defs =
                parse_definitions(&src).unwrap_or_else(|e| panic!("width {n} failed: {e}\n{src}"));
            assert!(validate(&defs, &["v"]).is_empty(), "width {n}");
        }
    }

    #[test]
    fn generalised_pipeline_parses() {
        for n in 1..=4 {
            let src = pipeline_src(n);
            let defs =
                parse_definitions(&src).unwrap_or_else(|e| panic!("stages {n} failed: {e}\n{src}"));
            assert!(validate(&defs, &[]).is_empty(), "stages {n}");
            assert!(defs.get("chain").is_some());
        }
    }

    #[test]
    fn multiplier_env_binds_cells() {
        let env = multiplier_env(&[1, 2, 3]);
        assert_eq!(env.len(), 3);
        assert_eq!(env.lookup("v[2]"), Some(&Value::Int(2)));
    }
}
