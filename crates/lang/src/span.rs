//! Source locations for parsed syntax.
//!
//! The lexer stamps every token with a [`Span`] (byte offset + length and
//! 1-based line:column). The spanned parse entry points
//! ([`parse_definitions_spanned`](crate::parse_definitions_spanned),
//! [`parse_process_spanned`](crate::parse_process_spanned)) thread those
//! spans through parsing into a [`SpanTree`] that mirrors the shape of the
//! produced [`Process`](crate::Process) tree, so downstream tools (the
//! `csp-analysis` linter in particular) can report diagnostics at real
//! source locations without the AST itself carrying spans.

use std::collections::BTreeMap;
use std::fmt;

/// A region of source text: byte offset + length, plus the 1-based
/// line and column of its first character.
///
/// The default span (`offset == len == line == column == 0`) means
/// "location unknown" and is used for programmatically built syntax.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub column: usize,
}

impl Span {
    /// A span covering `len` bytes starting at `offset`/`line:column`.
    pub fn new(offset: usize, len: usize, line: usize, column: usize) -> Self {
        Span {
            offset,
            len,
            line,
            column,
        }
    }

    /// A zero-length span at a line:column position (no byte information).
    pub fn point(line: usize, column: usize) -> Self {
        Span {
            offset: 0,
            len: 0,
            line,
            column,
        }
    }

    /// True for the default "location unknown" span.
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }

    /// One past the last byte covered.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// This span relocated by a byte and line delta, with the column
    /// preserved — valid precisely when the span's line kept its content
    /// and only its position in the file moved, which is the situation
    /// incremental reparsing ([`ParsedModule::reparse`](crate::ParsedModule::reparse))
    /// establishes for the unedited suffix of a module. Unknown spans
    /// stay unknown.
    pub fn shifted(&self, bytes: isize, lines: isize) -> Span {
        if self.is_unknown() {
            return *self;
        }
        Span {
            offset: self.offset.saturating_add_signed(bytes),
            len: self.len,
            line: self.line.saturating_add_signed(lines),
            column: self.column,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "?:?")
        } else {
            write!(f, "{}:{}", self.line, self.column)
        }
    }
}

/// A tree of spans mirroring the shape of a [`Process`](crate::Process)
/// tree: one node per process node, children in the same order as the
/// process's sub-processes (`then` for prefixes; left, right for choice
/// and parallel; the body for hiding).
///
/// Kept separate from the AST so the (widely pattern-matched, `Eq`/`Hash`)
/// [`Process`](crate::Process) type stays span-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// The span of this node's head token (the channel of a prefix, the
    /// operator of a composition, the `chan` keyword of a hiding).
    pub span: Span,
    /// Spans of the sub-processes, in the process's child order.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// A childless node.
    pub fn leaf(span: Span) -> Self {
        SpanTree {
            span,
            children: Vec::new(),
        }
    }

    /// A node with the given children.
    pub fn node(span: Span, children: Vec<SpanTree>) -> Self {
        SpanTree { span, children }
    }

    /// The `i`-th child, if present.
    pub fn child(&self, i: usize) -> Option<&SpanTree> {
        self.children.get(i)
    }

    /// Relocates the whole tree by a byte and line delta in place
    /// (see [`Span::shifted`]).
    pub fn shift_mut(&mut self, bytes: isize, lines: isize) {
        self.span = self.span.shifted(bytes, lines);
        for c in &mut self.children {
            c.shift_mut(bytes, lines);
        }
    }
}

/// The spans recorded for one definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefSpans {
    /// The span of the defined name on the left of `=`.
    pub name: Span,
    /// The span tree of the body.
    pub body: SpanTree,
}

impl DefSpans {
    /// Relocates all of a definition's spans by a byte and line delta in
    /// place (see [`Span::shifted`]).
    pub fn shift_mut(&mut self, bytes: isize, lines: isize) {
        self.name = self.name.shifted(bytes, lines);
        self.body.shift_mut(bytes, lines);
    }
}

/// Spans for a whole definition list, keyed by defined name.
///
/// Redefinition replaces the previous entry, matching
/// [`Definitions::define`](crate::Definitions::define).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    map: BTreeMap<String, DefSpans>,
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) the spans for `name`.
    pub fn insert(&mut self, name: &str, spans: DefSpans) {
        self.map.insert(name.to_string(), spans);
    }

    /// The spans for `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<&DefSpans> {
        self.map.get(name)
    }

    /// Number of definitions with recorded spans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merges another map into this one (the other wins on clashes),
    /// matching [`Definitions::extend_with`](crate::Definitions::extend_with).
    pub fn extend_with(&mut self, other: SourceMap) {
        self.map.extend(other.map);
    }

    /// Removes and returns the spans for `name`.
    pub fn remove(&mut self, name: &str) -> Option<DefSpans> {
        self.map.remove(name)
    }

    /// Iterates over the recorded `(name, spans)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DefSpans)> {
        self.map.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Relocates every recorded span by a byte and line delta in place
    /// (see [`Span::shifted`]).
    pub fn shift_mut(&mut self, bytes: isize, lines: isize) {
        for d in self.map.values_mut() {
            d.shift_mut(bytes, lines);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_and_unknown() {
        assert_eq!(Span::new(10, 4, 2, 7).to_string(), "2:7");
        assert_eq!(Span::default().to_string(), "?:?");
        assert!(Span::default().is_unknown());
        assert!(!Span::point(1, 1).is_unknown());
        assert_eq!(Span::new(10, 4, 2, 7).end(), 14);
    }

    #[test]
    fn source_map_replaces_on_reinsert() {
        let mut m = SourceMap::new();
        let d = |line| DefSpans {
            name: Span::point(line, 1),
            body: SpanTree::leaf(Span::point(line, 5)),
        };
        m.insert("p", d(1));
        m.insert("p", d(9));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("p").unwrap().name.line, 9);
        assert!(m.get("q").is_none());
    }
}
