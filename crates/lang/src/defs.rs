//! Process and process-array equations (§1.1(7)–(9)).
//!
//! A [`Definition`] is one equation `p = P` or `q[i:M] = Q`; a
//! [`Definitions`] list declares a family of processes, possibly by mutual
//! recursion. "Process names will be used only for recursive definition or
//! for abbreviation, and never to specify the source or destination of a
//! communication."

use std::collections::BTreeMap;
use std::fmt;

use crate::{Env, EvalError, Process, SetExpr};
use csp_trace::Value;

/// A single process (or process-array) equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Definition {
    name: String,
    /// `Some((i, M))` for an array equation `q[i:M] = Q`; `None` for a
    /// plain equation `p = P`.
    param: Option<(String, SetExpr)>,
    body: Process,
}

impl Definition {
    /// A plain equation `name = body`.
    pub fn plain(name: &str, body: Process) -> Self {
        Definition {
            name: name.to_string(),
            param: None,
            body,
        }
    }

    /// An array equation `name[param:set] = body` (§1.1(8)).
    pub fn array(name: &str, param: &str, set: SetExpr, body: Process) -> Self {
        Definition {
            name: name.to_string(),
            param: Some((param.to_string(), set)),
            body,
        }
    }

    /// The defined name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The array parameter `(variable, range-set)`, if this is an array
    /// equation.
    pub fn param(&self) -> Option<(&str, &SetExpr)> {
        self.param.as_ref().map(|(v, s)| (v.as_str(), s))
    }

    /// The defining process expression.
    pub fn body(&self) -> &Process {
        &self.body
    }

    /// Number of subscripts a call to this definition must supply.
    pub fn arity(&self) -> usize {
        usize::from(self.param.is_some())
    }
}

impl fmt::Display for Definition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            None => write!(f, "{} = {}", self.name, self.body),
            Some((v, s)) => write!(f, "{}[{v}:{s}] = {}", self.name, self.body),
        }
    }
}

/// An ordered list of equations declaring a set of processes and process
/// arrays, possibly by mutual recursion (§1.1(9)).
///
/// # Examples
///
/// ```
/// use csp_lang::{parse_definitions, Env};
/// use csp_trace::Value;
///
/// let defs = parse_definitions(
///     "sender = input?y:M -> q[y]
///      q[x:M] = wire!x -> (wire?y:{ACK} -> sender | wire?y:{NACK} -> q[x])",
/// ).unwrap();
/// // Instantiate the array element q[3]:
/// let body = defs.instantiate("q", &[Value::nat(3)], &Env::new()).unwrap();
/// assert!(body.to_string().starts_with("wire!3"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Definitions {
    // Insertion order preserved for display; index for lookup.
    order: Vec<Definition>,
    index: BTreeMap<String, usize>,
}

impl Definitions {
    /// An empty definition list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an equation. A later equation for the same name replaces the
    /// earlier one (and the replacement is returned), which supports
    /// interactive redefinition in the workbench.
    pub fn define(&mut self, def: Definition) -> Option<Definition> {
        match self.index.get(def.name()) {
            Some(&i) => Some(std::mem::replace(&mut self.order[i], def)),
            None => {
                self.index.insert(def.name().to_string(), self.order.len());
                self.order.push(def);
                None
            }
        }
    }

    /// The equation for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Definition> {
        self.index.get(name).map(|&i| &self.order[i])
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if there are no equations.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over the equations in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Definition> {
        self.order.iter()
    }

    /// The names defined, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(Definition::name)
    }

    /// Merges another definition list into this one (later list wins on
    /// name clashes).
    pub fn extend_with(&mut self, other: Definitions) {
        for d in other.order {
            self.define(d);
        }
    }

    /// Consumes the list, yielding the equations in declaration order —
    /// the zero-copy deconstruction incremental reparsing splices with.
    pub fn into_vec(self) -> Vec<Definition> {
        self.order
    }

    /// Resolves a call `name(args…)` to the defining body with the array
    /// parameter bound: for `q[i:M] = Q` and a call `q[e]` with `e`
    /// evaluating to `v ∈ M`, returns `Q` to be interpreted in an
    /// environment where `i = v` — §1.2(3)'s substitution, realised by
    /// environment extension. Also returns that extended environment.
    ///
    /// # Errors
    ///
    /// * [`EvalError::UndefinedProcess`] for unknown names,
    /// * [`EvalError::ArityMismatch`] for wrong subscript counts,
    /// * [`EvalError::NotInSet`] when the subscript value is outside `M`
    ///   (decidable sets only; membership in a `Named` abstract set is
    ///   assumed, as the paper does in symbolic proofs).
    pub fn resolve_call(
        &self,
        name: &str,
        args: &[Value],
        env: &Env,
    ) -> Result<(&Process, Env), EvalError> {
        let def = self
            .get(name)
            .ok_or_else(|| EvalError::UndefinedProcess(name.to_string()))?;
        if args.len() != def.arity() {
            return Err(EvalError::ArityMismatch {
                name: name.to_string(),
                got: args.len(),
                expected: def.arity(),
            });
        }
        let mut scope = env.clone();
        if let Some((param, set)) = def.param() {
            let v = args[0].clone();
            let m = set.eval(env)?;
            if m.contains(&v) == Some(false) {
                return Err(EvalError::NotInSet {
                    value: v.to_string(),
                    set: m.to_string(),
                });
            }
            scope.bind_mut(param, v);
        }
        Ok((def.body(), scope))
    }

    /// Like [`resolve_call`](Self::resolve_call) but returns a clone of the
    /// body for callers that need ownership.
    pub fn instantiate(&self, name: &str, args: &[Value], env: &Env) -> Result<Process, EvalError> {
        let (body, scope) = self.resolve_call(name, args, env)?;
        crate::subst::close_process(body, &scope)
    }
}

impl FromIterator<Definition> for Definitions {
    fn from_iter<I: IntoIterator<Item = Definition>>(iter: I) -> Self {
        let mut defs = Definitions::new();
        for d in iter {
            defs.define(d);
        }
        defs
    }
}

impl fmt::Display for Definitions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.order {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn copier_def() -> Definition {
        Definition::plain(
            "copier",
            Process::input(
                "input",
                "x",
                SetExpr::Nat,
                Process::output("wire", Expr::var("x"), Process::call("copier")),
            ),
        )
    }

    #[test]
    fn define_and_get() {
        let mut defs = Definitions::new();
        assert!(defs.define(copier_def()).is_none());
        assert_eq!(defs.len(), 1);
        assert_eq!(defs.get("copier").unwrap().name(), "copier");
        assert!(defs.get("nonesuch").is_none());
    }

    #[test]
    fn redefinition_replaces_and_returns_old() {
        let mut defs = Definitions::new();
        defs.define(copier_def());
        let old = defs.define(Definition::plain("copier", Process::Stop));
        assert!(old.is_some());
        assert_eq!(defs.len(), 1);
        assert_eq!(defs.get("copier").unwrap().body(), &Process::Stop);
    }

    #[test]
    fn resolve_plain_call() {
        let mut defs = Definitions::new();
        defs.define(copier_def());
        let (body, env) = defs
            .resolve_call("copier", &[], &Env::new())
            .expect("resolves");
        assert!(matches!(body, Process::Input { .. }));
        assert!(env.is_empty());
    }

    #[test]
    fn resolve_array_call_binds_parameter() {
        let mut defs = Definitions::new();
        defs.define(Definition::array(
            "q",
            "x",
            SetExpr::range(0, 3),
            Process::output("wire", Expr::var("x"), Process::call("sender")),
        ));
        let (_, env) = defs
            .resolve_call("q", &[Value::Int(2)], &Env::new())
            .unwrap();
        assert_eq!(env.lookup("x"), Some(&Value::Int(2)));
    }

    #[test]
    fn subscript_outside_range_is_rejected() {
        // §1.2(3): "provided that this is in M".
        let mut defs = Definitions::new();
        defs.define(Definition::array(
            "q",
            "x",
            SetExpr::range(0, 3),
            Process::Stop,
        ));
        let err = defs
            .resolve_call("q", &[Value::Int(7)], &Env::new())
            .unwrap_err();
        assert!(matches!(err, EvalError::NotInSet { .. }));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut defs = Definitions::new();
        defs.define(copier_def());
        let err = defs
            .resolve_call("copier", &[Value::Int(1)], &Env::new())
            .unwrap_err();
        assert!(matches!(err, EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn undefined_process_reported() {
        let defs = Definitions::new();
        assert!(matches!(
            defs.resolve_call("ghost", &[], &Env::new()),
            Err(EvalError::UndefinedProcess(_))
        ));
    }

    #[test]
    fn named_abstract_set_membership_is_assumed() {
        let mut defs = Definitions::new();
        defs.define(Definition::array(
            "q",
            "x",
            SetExpr::Named("M".into()),
            Process::Stop,
        ));
        // Membership in abstract M is not decidable, so the call is allowed.
        assert!(defs
            .resolve_call("q", &[Value::nat(9)], &Env::new())
            .is_ok());
    }

    #[test]
    fn display_lists_equations_in_order() {
        let mut defs = Definitions::new();
        defs.define(copier_def());
        defs.define(Definition::plain("stopper", Process::Stop));
        let s = defs.to_string();
        let copier_pos = s.find("copier =").unwrap();
        let stop_pos = s.find("stopper =").unwrap();
        assert!(copier_pos < stop_pos);
    }
}
