//! Value expressions.
//!
//! §1.1(3): expressions are "built from variables, constants, and
//! operators, each of which defines a value in terms of its constituent
//! variables, e.g. `(3x + y)`. Note: expressions are not allowed to
//! contain process names or channel names." The richer comparison and
//! boolean operators are included because the assertion language of §2
//! builds its atomic formulae from the same expression grammar.

use std::fmt;

use csp_trace::Value;

use crate::{Env, EvalError};

/// Binary operators on values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Integer addition `+`.
    Add,
    /// Integer subtraction `-`.
    Sub,
    /// Integer multiplication `*`.
    Mul,
    /// Integer division `/` (truncating; errors on zero divisor).
    Div,
    /// Integer modulus `%` (errors on zero divisor).
    Mod,
    /// Equality `==` on any values.
    Eq,
    /// Disequality `!=` on any values.
    Ne,
    /// Less-than `<` on integers.
    Lt,
    /// At-most `<=` on integers.
    Le,
    /// Greater-than `>` on integers.
    Gt,
    /// At-least `>=` on integers.
    Ge,
    /// Boolean conjunction `&&`.
    And,
    /// Boolean disjunction `||` (written `or` in concrete syntax to avoid
    /// clashing with parallel composition).
    Or,
}

impl BinOp {
    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators on values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Integer negation `-`.
    Neg,
    /// Boolean negation `not`.
    Not,
}

/// A value expression.
///
/// # Examples
///
/// The paper's `3 × i + j`:
///
/// ```
/// use csp_lang::{Env, Expr};
/// use csp_trace::Value;
///
/// let e = Expr::mul(Expr::int(3), Expr::var("i")).add(Expr::var("j"));
/// let env = Env::new().bind("i", Value::nat(2)).bind("j", Value::nat(1));
/// assert_eq!(e.eval(&env).unwrap(), Value::Int(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// A variable reference.
    Var(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A tuple former `(e₁, …, eₙ)` for n ≥ 2.
    Tuple(Vec<Expr>),
    /// A named constant-array lookup `v[e]`, e.g. the fixed vector `v[1..3]`
    /// of the multiplier example (§1.3(5)). The array contents come from the
    /// environment as bindings `v[1]`, `v[2]`, … made by the host.
    ArrayRef(String, Box<Expr>),
}

impl Expr {
    /// An integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// A symbolic atom such as `ACK`.
    pub fn sym(name: &str) -> Expr {
        Expr::Const(Value::sym(name))
    }

    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder, not arithmetic on Expr values
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)] // associated fn, deliberate (C-OVERLOAD)
    /// `lhs * rhs` (associated function to avoid clashing with the
    /// `Mul` trait, which we deliberately do not implement — C-OVERLOAD).
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluates the expression in environment `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVariable`] for unbound variables,
    /// [`EvalError::TypeMismatch`] for ill-typed applications, and
    /// [`EvalError::DivisionByZero`] for zero divisors.
    pub fn eval(&self, env: &Env) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
            Expr::Bin(op, a, b) => eval_bin(*op, a.eval(env)?, b.eval(env)?),
            Expr::Un(op, a) => eval_un(*op, a.eval(env)?),
            Expr::Tuple(es) => {
                let vs = es.iter().map(|e| e.eval(env)).collect::<Result<_, _>>()?;
                Ok(Value::Tuple(vs))
            }
            Expr::ArrayRef(name, idx) => {
                let i = idx
                    .eval(env)?
                    .as_int()
                    .ok_or_else(|| EvalError::BadSubscript { name: name.clone() })?;
                let key = format!("{name}[{i}]");
                env.lookup(&key)
                    .cloned()
                    .ok_or(EvalError::UnboundVariable(key))
            }
        }
    }

    /// True if the expression contains no variables (and no array
    /// references, which read the environment).
    pub fn is_closed(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Var(_) | Expr::ArrayRef(..) => false,
            Expr::Bin(_, a, b) => a.is_closed() && b.is_closed(),
            Expr::Un(_, a) => a.is_closed(),
            Expr::Tuple(es) => es.iter().all(Expr::is_closed),
        }
    }
}

fn int2(context: &str, a: Value, b: Value) -> Result<(i64, i64), EvalError> {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EvalError::TypeMismatch {
            context: context.to_string(),
        }),
    }
}

fn bool2(context: &str, a: Value, b: Value) -> Result<(bool, bool), EvalError> {
    match (a.as_bool(), b.as_bool()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EvalError::TypeMismatch {
            context: context.to_string(),
        }),
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    Ok(match op {
        BinOp::Add => {
            let (x, y) = int2("+", a, b)?;
            Value::Int(x + y)
        }
        BinOp::Sub => {
            let (x, y) = int2("-", a, b)?;
            Value::Int(x - y)
        }
        BinOp::Mul => {
            let (x, y) = int2("*", a, b)?;
            Value::Int(x * y)
        }
        BinOp::Div => {
            let (x, y) = int2("/", a, b)?;
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(x / y)
        }
        BinOp::Mod => {
            let (x, y) = int2("%", a, b)?;
            if y == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(x.rem_euclid(y))
        }
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Ne => Value::Bool(a != b),
        BinOp::Lt => {
            let (x, y) = int2("<", a, b)?;
            Value::Bool(x < y)
        }
        BinOp::Le => {
            let (x, y) = int2("<=", a, b)?;
            Value::Bool(x <= y)
        }
        BinOp::Gt => {
            let (x, y) = int2(">", a, b)?;
            Value::Bool(x > y)
        }
        BinOp::Ge => {
            let (x, y) = int2(">=", a, b)?;
            Value::Bool(x >= y)
        }
        BinOp::And => {
            let (x, y) = bool2("and", a, b)?;
            Value::Bool(x && y)
        }
        BinOp::Or => {
            let (x, y) = bool2("or", a, b)?;
            Value::Bool(x || y)
        }
    })
}

fn eval_un(op: UnOp, a: Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Neg => a
            .as_int()
            .map(|x| Value::Int(-x))
            .ok_or(EvalError::TypeMismatch {
                context: "unary -".to_string(),
            }),
        UnOp::Not => a
            .as_bool()
            .map(|x| Value::Bool(!x))
            .ok_or(EvalError::TypeMismatch {
                context: "not".to_string(),
            }),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Un(UnOp::Neg, a) => write!(f, "(-{a})"),
            Expr::Un(UnOp::Not, a) => write!(f, "(not {a})"),
            Expr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::ArrayRef(name, idx) => write!(f, "{name}[{idx}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_precedence_free_ast() {
        let e = Expr::mul(Expr::int(3), Expr::var("x")).add(Expr::var("y"));
        let env = Env::new().bind("x", Value::Int(4)).bind("y", Value::Int(5));
        assert_eq!(e.eval(&env).unwrap(), Value::Int(17));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::var("zzz");
        assert_eq!(
            e.eval(&Env::new()),
            Err(EvalError::UnboundVariable("zzz".into()))
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let e = Expr::sym("ACK").add(Expr::int(1));
        assert!(matches!(
            e.eval(&Env::new()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn division_by_zero() {
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(e.eval(&Env::new()), Err(EvalError::DivisionByZero));
        let m = Expr::Bin(BinOp::Mod, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(m.eval(&Env::new()), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_booleans() {
        let env = Env::new();
        let lt = Expr::Bin(BinOp::Lt, Box::new(Expr::int(1)), Box::new(Expr::int(2)));
        assert_eq!(lt.eval(&env).unwrap(), Value::Bool(true));
        let eq = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::sym("ACK")),
            Box::new(Expr::sym("ACK")),
        );
        assert_eq!(eq.eval(&env).unwrap(), Value::Bool(true));
        let and = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Const(Value::Bool(true))),
            Box::new(Expr::Const(Value::Bool(false))),
        );
        assert_eq!(and.eval(&env).unwrap(), Value::Bool(false));
        let not = Expr::Un(UnOp::Not, Box::new(Expr::Const(Value::Bool(false))));
        assert_eq!(not.eval(&env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn modulus_is_euclidean() {
        let e = Expr::Bin(BinOp::Mod, Box::new(Expr::int(-1)), Box::new(Expr::int(3)));
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Int(2));
    }

    #[test]
    fn array_ref_reads_environment_cells() {
        // v[i] with v[1] = 10 bound by the host, as in the multiplier.
        let e = Expr::ArrayRef("v".into(), Box::new(Expr::var("i")));
        let env = Env::new()
            .bind("i", Value::Int(1))
            .bind("v[1]", Value::Int(10));
        assert_eq!(e.eval(&env).unwrap(), Value::Int(10));
        // Unbound cell errors:
        let env2 = Env::new().bind("i", Value::Int(2));
        assert!(matches!(e.eval(&env2), Err(EvalError::UnboundVariable(_))));
    }

    #[test]
    fn tuples_evaluate_componentwise() {
        let e = Expr::Tuple(vec![Expr::int(1), Expr::sym("a")]);
        assert_eq!(
            e.eval(&Env::new()).unwrap(),
            Value::Tuple(vec![Value::Int(1), Value::sym("a")])
        );
    }

    #[test]
    fn is_closed_detection() {
        assert!(Expr::int(1).add(Expr::int(2)).is_closed());
        assert!(!Expr::var("x").is_closed());
        assert!(!Expr::ArrayRef("v".into(), Box::new(Expr::int(1))).is_closed());
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::mul(Expr::int(3), Expr::var("i")).add(Expr::var("j"));
        assert_eq!(e.to_string(), "((3 * i) + j)");
    }
}
