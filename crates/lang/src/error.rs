//! Error types for parsing and evaluation.

use std::fmt;

use crate::Span;

/// An error produced while parsing the concrete syntax.
///
/// Carries the full [`Span`] of the offending token (byte offset +
/// length and 1-based line/column) so callers can point at — or
/// underline — the exact source region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    pub(crate) fn at(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source region of the offending token.
    pub fn span(&self) -> Span {
        self.span
    }

    /// 1-based line of the offending token.
    pub fn line(&self) -> usize {
        self.span.line
    }

    /// 1-based column of the offending token.
    pub fn column(&self) -> usize {
        self.span.column
    }

    /// The same error relocated by a byte and line delta (see
    /// [`Span::shifted`]), used when splicing a fragment parse back into
    /// whole-file coordinates.
    pub fn shifted(&self, bytes: isize, lines: isize) -> ParseError {
        ParseError {
            message: self.message.clone(),
            span: self.span.shifted(bytes, lines),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An error produced while evaluating an expression or set expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no value in the environment.
    UnboundVariable(String),
    /// An operator was applied to operands of the wrong kind, e.g. `ACK + 1`.
    TypeMismatch {
        /// What was being evaluated.
        context: String,
    },
    /// Division or modulus by zero.
    DivisionByZero,
    /// A set was required to be finite (for enumeration) but was `NAT`
    /// without a universe bound.
    UnboundedSet(String),
    /// A subscripted reference evaluated to a non-integer subscript.
    BadSubscript {
        /// The array name being subscripted.
        name: String,
    },
    /// A value fell outside the set it was required to belong to, e.g.
    /// calling `q[e]` where the value of `e` is not in `M` (§1.2(3)).
    NotInSet {
        /// Rendering of the offending value.
        value: String,
        /// Rendering of the set.
        set: String,
    },
    /// Reference to a process name with no defining equation.
    UndefinedProcess(String),
    /// A process name was called with the wrong number of subscripts.
    ArityMismatch {
        /// The process name.
        name: String,
        /// Number of subscripts at the call site.
        got: usize,
        /// Number of parameters in the definition.
        expected: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            EvalError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::UnboundedSet(s) => {
                write!(f, "set `{s}` is unbounded; supply a finite universe")
            }
            EvalError::BadSubscript { name } => {
                write!(f, "subscript of `{name}` is not an integer")
            }
            EvalError::NotInSet { value, set } => {
                write!(f, "value {value} is not in set {set}")
            }
            EvalError::UndefinedProcess(p) => write!(f, "undefined process name `{p}`"),
            EvalError::ArityMismatch {
                name,
                got,
                expected,
            } => write!(
                f,
                "process `{name}` applied to {got} subscript(s), definition has {expected}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Umbrella error for operations that may fail either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A parse failure.
    Parse(ParseError),
    /// An evaluation failure.
    Eval(EvalError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => e.fmt(f),
            LangError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Parse(e) => Some(e),
            LangError::Eval(e) => Some(e),
        }
    }
}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<EvalError> for LangError {
    fn from(e: EvalError) -> Self {
        LangError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_lowercase_and_concise() {
        let e = EvalError::UnboundVariable("x".into());
        assert_eq!(e.to_string(), "unbound variable `x`");
        let p = ParseError::at("expected `->`", Span::point(2, 7));
        assert_eq!(p.to_string(), "parse error at 2:7: expected `->`");
        let a = EvalError::ArityMismatch {
            name: "q".into(),
            got: 2,
            expected: 1,
        };
        assert!(a.to_string().contains("q"));
    }

    #[test]
    fn lang_error_wraps_both() {
        let e: LangError = ParseError::at("x", Span::point(1, 1)).into();
        assert!(matches!(e, LangError::Parse(_)));
        let e: LangError = EvalError::DivisionByZero.into();
        assert!(matches!(e, LangError::Eval(_)));
        // Error source chains are present.
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
