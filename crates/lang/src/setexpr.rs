//! Set expressions — the message sets `M` of input commands and array
//! bounds.
//!
//! §1.1(4): "Names and expressions denoting sets of values or types, e.g.
//! `NAT`, `{0..3}`, `{ACK, NACK}`." A [`SetExpr`] is the syntax; a
//! [`MsgSet`] is its value: either a finite set or the unbounded `NAT`.
//! Enumeration-based tools restrict `NAT` to a finite carrier supplied by
//! the caller (the *universe*, see `csp-semantics`); symbolic tools
//! (`csp-proof`) treat it as-is.

use std::collections::BTreeSet;
use std::fmt;

use csp_trace::Value;

use crate::{Env, EvalError, Expr};

/// The syntax of a set of message values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SetExpr {
    /// `NAT` — the natural numbers `{0, 1, 2, …}`.
    Nat,
    /// `e₁..e₂` — the inclusive integer range.
    Range(Box<Expr>, Box<Expr>),
    /// `{e₁, …, eₙ}` — a finite enumeration.
    Enum(Vec<Expr>),
    /// A named set bound in the host environment is not supported directly;
    /// the parser resolves names like `M` to this variant so definitions can
    /// be parameterised over an abstract message set. Symbolic tools treat
    /// distinct names as distinct opaque sets; enumeration resolves them via
    /// the universe's named-set table.
    Named(String),
}

impl SetExpr {
    /// A convenience constructor for `lo..hi` with constant bounds.
    pub fn range(lo: i64, hi: i64) -> SetExpr {
        SetExpr::Range(Box::new(Expr::int(lo)), Box::new(Expr::int(hi)))
    }

    /// A finite enumeration of constant values.
    pub fn enumeration<I: IntoIterator<Item = Value>>(vals: I) -> SetExpr {
        SetExpr::Enum(vals.into_iter().map(Expr::Const).collect())
    }

    /// Evaluates the set expression to a [`MsgSet`].
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation failures from range bounds and
    /// enumeration elements, and rejects non-integer range bounds.
    pub fn eval(&self, env: &Env) -> Result<MsgSet, EvalError> {
        match self {
            SetExpr::Nat => Ok(MsgSet::Nat),
            SetExpr::Range(lo, hi) => {
                let l = lo.eval(env)?.as_int().ok_or(EvalError::TypeMismatch {
                    context: "range lower bound".to_string(),
                })?;
                let h = hi.eval(env)?.as_int().ok_or(EvalError::TypeMismatch {
                    context: "range upper bound".to_string(),
                })?;
                Ok(MsgSet::Finite((l..=h).map(Value::Int).collect()))
            }
            SetExpr::Enum(es) => {
                let vs = es
                    .iter()
                    .map(|e| e.eval(env))
                    .collect::<Result<BTreeSet<_>, _>>()?;
                Ok(MsgSet::Finite(vs))
            }
            SetExpr::Named(n) => Ok(MsgSet::Named(n.clone())),
        }
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Nat => write!(f, "NAT"),
            SetExpr::Range(lo, hi) => write!(f, "{lo}..{hi}"),
            SetExpr::Enum(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            SetExpr::Named(n) => write!(f, "{n}"),
        }
    }
}

/// The value of a set expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgSet {
    /// The unbounded naturals.
    Nat,
    /// An explicit finite set.
    Finite(BTreeSet<Value>),
    /// A named abstract set, resolved by the enumeration universe.
    Named(String),
}

impl MsgSet {
    /// Membership, where decidable without a universe.
    ///
    /// `Named` sets return `None` (unknown without a universe); `Nat`
    /// and `Finite` return `Some`.
    pub fn contains(&self, v: &Value) -> Option<bool> {
        match self {
            MsgSet::Nat => Some(v.is_nat()),
            MsgSet::Finite(s) => Some(s.contains(v)),
            MsgSet::Named(_) => None,
        }
    }

    /// Enumerates the members, bounding `Nat` by `nat_bound` (inclusive
    /// upper limit) and resolving `Named` sets through `resolve`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundedSet`] if a named set cannot be
    /// resolved.
    pub fn enumerate(
        &self,
        nat_bound: u32,
        resolve: &dyn Fn(&str) -> Option<BTreeSet<Value>>,
    ) -> Result<Vec<Value>, EvalError> {
        match self {
            MsgSet::Nat => Ok((0..=nat_bound).map(Value::nat).collect()),
            MsgSet::Finite(s) => Ok(s.iter().cloned().collect()),
            MsgSet::Named(n) => resolve(n)
                .map(|s| s.into_iter().collect())
                .ok_or_else(|| EvalError::UnboundedSet(n.clone())),
        }
    }

    /// The size of the set if finite.
    pub fn finite_len(&self) -> Option<usize> {
        match self {
            MsgSet::Finite(s) => Some(s.len()),
            _ => None,
        }
    }
}

impl fmt::Display for MsgSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgSet::Nat => write!(f, "NAT"),
            MsgSet::Finite(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            MsgSet::Named(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_evaluates_inclusively() {
        // {0..3} denotes the finite range {0, 1, 2, 3} (§1.1(4)).
        let s = SetExpr::range(0, 3).eval(&Env::new()).unwrap();
        assert_eq!(s.finite_len(), Some(4));
        assert_eq!(s.contains(&Value::Int(0)), Some(true));
        assert_eq!(s.contains(&Value::Int(3)), Some(true));
        assert_eq!(s.contains(&Value::Int(4)), Some(false));
    }

    #[test]
    fn empty_range_is_empty_set() {
        let s = SetExpr::range(3, 0).eval(&Env::new()).unwrap();
        assert_eq!(s.finite_len(), Some(0));
    }

    #[test]
    fn enum_of_signals() {
        // {ACK, NACK} — the acknowledgement pair of §1.1(4).
        let s = SetExpr::enumeration([Value::sym("ACK"), Value::sym("NACK")])
            .eval(&Env::new())
            .unwrap();
        assert_eq!(s.contains(&Value::sym("ACK")), Some(true));
        assert_eq!(s.contains(&Value::sym("FIN")), Some(false));
        assert_eq!(s.finite_len(), Some(2));
    }

    #[test]
    fn nat_contains_naturals_only() {
        let s = SetExpr::Nat.eval(&Env::new()).unwrap();
        assert_eq!(s.contains(&Value::Int(0)), Some(true));
        assert_eq!(s.contains(&Value::Int(-1)), Some(false));
        assert_eq!(s.contains(&Value::sym("ACK")), Some(false));
    }

    #[test]
    fn nat_enumeration_uses_bound() {
        let s = MsgSet::Nat;
        let vs = s.enumerate(2, &|_| None).unwrap();
        assert_eq!(vs, vec![Value::nat(0), Value::nat(1), Value::nat(2)]);
    }

    #[test]
    fn named_set_resolution() {
        let s = MsgSet::Named("M".to_string());
        assert_eq!(s.contains(&Value::nat(1)), None);
        let table =
            |n: &str| (n == "M").then(|| [Value::nat(7)].into_iter().collect::<BTreeSet<_>>());
        assert_eq!(s.enumerate(0, &table).unwrap(), vec![Value::nat(7)]);
        assert!(matches!(
            s.enumerate(0, &|_| None),
            Err(EvalError::UnboundedSet(_))
        ));
    }

    #[test]
    fn range_bounds_use_environment() {
        let se = SetExpr::Range(
            Box::new(Expr::var("n")),
            Box::new(Expr::var("n").add(Expr::int(1))),
        );
        let env = Env::new().bind("n", Value::Int(5));
        let s = se.eval(&env).unwrap();
        assert_eq!(s.finite_len(), Some(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SetExpr::Nat.to_string(), "NAT");
        assert_eq!(SetExpr::range(0, 3).to_string(), "0..3");
        assert_eq!(
            SetExpr::enumeration([Value::sym("ACK")]).to_string(),
            "{ACK}"
        );
        assert_eq!(SetExpr::Named("M".into()).to_string(), "M");
    }
}
