//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` it actually uses: `StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`]/[`Rng::gen_bool`]
//! over integer ranges. The generator is SplitMix64 — deterministic,
//! seedable, and more than random enough for seeded schedulers and
//! property-test case generation. It is **not** the upstream `StdRng`
//! (ChaCha12) and must never be used for anything security-sensitive.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so that nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            StdRng {
                state: rng.state ^ seed.rotate_left(17),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
            let z = rng.gen_range(0..4usize);
            assert!(z < 4);
        }
    }

    #[test]
    fn gen_bool_is_calibrated_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
