//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of rayon it uses: [`join`], `.into_par_iter()` on
//! vectors and ranges, `.par_iter()` on slices, and the
//! [`ParIter::map`]/[`ParIter::for_each`]/[`ParIter::collect`] pipeline.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no global thread pool** — each parallel operation runs on fresh
//!   scoped threads (`std::thread::scope`); for the coarse, millisecond-
//!   scale tasks this workspace fans out, spawn cost is noise;
//! * **eager adaptors** — `map` runs its closure in parallel immediately
//!   and materialises the results (order-preserving), rather than
//!   building a lazy pipeline. Composed `map`s therefore each pay one
//!   fan-out; call sites here use a single `map` per pipeline;
//! * work is distributed dynamically (an atomic index over item slots),
//!   so unevenly sized tasks — fixpoint keys, proof scripts — balance
//!   across workers;
//! * `RAYON_NUM_THREADS` is honoured (`1` disables threading entirely,
//!   useful when bisecting nondeterminism).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel operation may use — upstream
/// rayon's `current_num_threads()`. Long-lived consumers (the `csp
/// serve` worker pool) use this as their default width so one knob,
/// `RAYON_NUM_THREADS`, sizes every thread pool in the workspace.
pub fn current_num_threads() -> usize {
    max_threads()
}

/// Number of worker threads a parallel operation may use.
fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the two closures, potentially in parallel, returning both
/// results. The first runs on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Applies `f` to every item on a dynamically balanced pool of scoped
/// threads, preserving input order in the output.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Item and result slots the workers claim via an atomic cursor. The
    // per-slot mutexes are uncontended (each slot is touched by exactly
    // one worker) and keep the implementation free of `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("slot claimed once");
                let result = f(item);
                *out[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

/// A materialised parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map(self.items, f);
    }

    /// Keeps the items satisfying `keep` (applied in parallel).
    pub fn filter<F>(self, keep: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = parallel_map(self.items, |t| if keep(&t) { Some(t) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Collects the (already materialised) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator over owned items —
/// `vec.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over borrowed items —
/// `slice.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;

    /// Borrows `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Everything a call site needs: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|n| n * n).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares
            .iter()
            .enumerate()
            .all(|(i, &s)| s == (i as u64).pow(2)));
    }

    #[test]
    fn par_iter_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn filter_runs_in_parallel_but_keeps_order() {
        let evens: Vec<usize> = (0usize..100)
            .into_par_iter()
            .filter(|n| n % 2 == 0)
            .collect();
        assert_eq!(evens.len(), 50);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn for_each_observes_every_item() {
        let seen = std::sync::atomic::AtomicUsize::new(0);
        (0usize..64).into_par_iter().for_each(|_| {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 64);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn uneven_tasks_balance() {
        // Tasks of wildly different cost still all complete and keep order.
        let out: Vec<u64> = (0u64..32)
            .into_par_iter()
            .map(|n| if n % 7 == 0 { (0..n * 1000).sum() } else { n })
            .collect();
        assert_eq!(out[1], 1);
        assert_eq!(out.len(), 32);
    }
}
