//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, `Just`, integer-range and tuple
//! strategies, `prop::collection::vec`, the [`proptest!`] macro with
//! `prop_assert*`/`prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated values
//!   via the ordinary assertion message;
//! * **deterministic seeding** — every test function runs the same case
//!   sequence on every invocation (seeded from the case index), so
//!   failures are always reproducible;
//! * `prop_recursive`'s `desired_size`/`expected_branch_size` hints are
//!   ignored; depth is honoured.

#![forbid(unsafe_code)]

use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values — the no-shrinking core of proptest's
/// `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: up to `depth` layers of `recurse`
    /// applied over this leaf strategy. The size hints of upstream
    /// proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut layered = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(layered).boxed();
            let leaf = leaf.clone();
            // Mix the leaf back in so shallow values stay reachable at
            // every depth (upstream does this probabilistically too).
            layered = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.gen_range(0..4u8) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        layered
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Uniform choice among type-erased alternatives — the target of
/// [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero alternatives");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        use rand::Rng;
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// The `prop` facade module re-exported by the prelude
/// (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies with a common value type.
///
/// Upstream weights (`n => strategy`) are not supported; all alternatives
/// are equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs fall outside the tested
/// fragment. Expands to `continue` on the case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(x in strategy, ...)` body runs
/// for `cases` seeded random assignments of its arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    // One generator per case, seeded by the case index:
                    // failures reproduce and a skipped case cannot
                    // perturb later ones. A `prop_assume!` in the body
                    // expands to `continue` on this loop.
                    let mut __rng = $crate::__case_rng(__case);
                    let __rng = &mut __rng;
                    $(let $arg = {
                        let __s = $strategy;
                        $crate::Strategy::generate(&__s, __rng)
                    };)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// The per-case generator used by the [`proptest!`] expansion. Not part
/// of the public API.
#[doc(hidden)]
pub fn __case_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x5EED_0000 + u64::from(case))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and the config header parse.
        #[test]
        fn addition_commutes(a in 0i64..100, b in 0i64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips_cases(n in 0i64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..3).prop_map(|n| n * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        use rand::SeedableRng;

        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::seed_from_u64(1);
        let mut seen_node = false;
        for _ in 0..64 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            seen_node |= t != Tree::Leaf;
        }
        assert!(seen_node, "recursion never produced an inner node");
    }
}
