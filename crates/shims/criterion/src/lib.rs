//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `Bencher::iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Each
//! benchmark runs a short warm-up followed by a fixed number of timed
//! samples and prints the median wall-clock time — honest numbers for
//! eyeballing regressions, without upstream's statistics, HTML reports,
//! or CLI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the shim accepts and ignores them.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim prints times only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (called repeatedly by the driver).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = Some(start.elapsed());
    }
}

fn run_one<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up.
    let mut b = Bencher::default();
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        times.push(b.elapsed.unwrap_or_default());
    }
    times.sort();
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!("{name}: median {median:?} (min {lo:?}, max {hi:?}, n={samples})");
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn the_full_surface_runs() {
        benches();
    }
}
