//! The substitutions used by the inference rules of §2.1.
//!
//! * `R_<>` (rule 4, emptiness): every channel name replaced by `<>`;
//! * `R^c_{e^c}` (rules 5/6, output/input): every occurrence of channel
//!   `c` replaced by `e^c` — semantically, lemma (c) of §3.4:
//!   `(ρ + ch(s))⟦R^c_{e^c}⟧ = (ρ + ch((c.e)^s))⟦R⟧`;
//! * `R^x_e` (rule 6 and ∀-elimination): every free occurrence of
//!   variable `x` replaced by expression `e` — lemma (a).

use csp_lang::{ChanRef, Expr, SetExpr};

use crate::{Assertion, STerm, Term};

/// `R_<>` — replaces every channel history by the empty sequence.
///
/// # Examples
///
/// ```
/// use csp_assert::{subst_empty, Assertion, STerm};
///
/// let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
/// assert_eq!(subst_empty(&r).to_string(), "<> <= <>");
/// ```
pub fn subst_empty(a: &Assertion) -> Assertion {
    map_sterms(a, &|s| match s {
        STerm::Hist(_) => Some(STerm::Empty),
        _ => None,
    })
}

/// `R^c_{e^c}` — replaces every occurrence of channel `c`'s history by
/// `e^c` (the history with `e` consed on front).
///
/// # Examples
///
/// ```
/// use csp_assert::{subst_chan_cons, Assertion, STerm, Term};
/// use csp_lang::ChanRef;
///
/// let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
/// let r2 = subst_chan_cons(&r, &ChanRef::simple("wire"), &Term::var("x"));
/// assert_eq!(r2.to_string(), "x^wire <= input");
/// ```
pub fn subst_chan_cons(a: &Assertion, c: &ChanRef, e: &Term) -> Assertion {
    map_sterms(a, &|s| match s {
        STerm::Hist(cr) if cr == c => Some(STerm::Cons(
            Box::new(e.clone()),
            Box::new(STerm::Hist(cr.clone())),
        )),
        _ => None,
    })
}

/// `R^x_e` — replaces every free occurrence of variable `x` by
/// expression `e`, respecting quantifier binders.
///
/// # Examples
///
/// ```
/// use csp_assert::{subst_var, Assertion, CmpOp, STerm, Term};
/// use csp_lang::Expr;
///
/// let r = Assertion::prefix(
///     STerm::chan("wire").app("f"),
///     STerm::chan("input").cons(Term::var("x")),
/// );
/// let r2 = subst_var(&r, "x", &Expr::int(3));
/// assert_eq!(r2.to_string(), "f(wire) <= 3^input");
/// ```
pub fn subst_var(a: &Assertion, x: &str, e: &Expr) -> Assertion {
    match a {
        Assertion::True | Assertion::False => a.clone(),
        Assertion::Prefix(s, t) => {
            Assertion::Prefix(subst_var_sterm(s, x, e), subst_var_sterm(t, x, e))
        }
        Assertion::SeqEq(s, t) => {
            Assertion::SeqEq(subst_var_sterm(s, x, e), subst_var_sterm(t, x, e))
        }
        Assertion::Cmp(op, s, t) => {
            Assertion::Cmp(*op, subst_var_term(s, x, e), subst_var_term(t, x, e))
        }
        Assertion::Not(inner) => Assertion::Not(Box::new(subst_var(inner, x, e))),
        Assertion::And(p, q) => {
            Assertion::And(Box::new(subst_var(p, x, e)), Box::new(subst_var(q, x, e)))
        }
        Assertion::Or(p, q) => {
            Assertion::Or(Box::new(subst_var(p, x, e)), Box::new(subst_var(q, x, e)))
        }
        Assertion::Implies(p, q) => {
            Assertion::Implies(Box::new(subst_var(p, x, e)), Box::new(subst_var(q, x, e)))
        }
        Assertion::ForallIn(y, m, body) => {
            let m2 = subst_var_set(m, x, e);
            if y == x {
                Assertion::ForallIn(y.clone(), m2, body.clone())
            } else {
                Assertion::ForallIn(y.clone(), m2, Box::new(subst_var(body, x, e)))
            }
        }
        Assertion::ExistsIn(y, m, body) => {
            let m2 = subst_var_set(m, x, e);
            if y == x {
                Assertion::ExistsIn(y.clone(), m2, body.clone())
            } else {
                Assertion::ExistsIn(y.clone(), m2, Box::new(subst_var(body, x, e)))
            }
        }
    }
}

fn subst_var_sterm(s: &STerm, x: &str, e: &Expr) -> STerm {
    match s {
        STerm::Hist(c) => STerm::Hist(ChanRef::with_indices(
            c.base(),
            c.indices().iter().map(|i| subst_in_expr(i, x, e)).collect(),
        )),
        STerm::Empty => STerm::Empty,
        STerm::Lit(ts) => STerm::Lit(ts.iter().map(|t| subst_var_term(t, x, e)).collect()),
        STerm::Cons(h, t) => STerm::Cons(
            Box::new(subst_var_term(h, x, e)),
            Box::new(subst_var_sterm(t, x, e)),
        ),
        STerm::Concat(a, b) => STerm::Concat(
            Box::new(subst_var_sterm(a, x, e)),
            Box::new(subst_var_sterm(b, x, e)),
        ),
        STerm::App(name, arg) => STerm::App(name.clone(), Box::new(subst_var_sterm(arg, x, e))),
    }
}

fn subst_var_term(t: &Term, x: &str, e: &Expr) -> Term {
    match t {
        Term::Expr(inner) => Term::Expr(subst_in_expr(inner, x, e)),
        Term::Length(s) => Term::Length(Box::new(subst_var_sterm(s, x, e))),
        Term::Index(s, i) => Term::Index(
            Box::new(subst_var_sterm(s, x, e)),
            Box::new(subst_var_term(i, x, e)),
        ),
        Term::Bin(op, a, b) => Term::Bin(
            *op,
            Box::new(subst_var_term(a, x, e)),
            Box::new(subst_var_term(b, x, e)),
        ),
        Term::Un(op, a) => Term::Un(*op, Box::new(subst_var_term(a, x, e))),
    }
}

fn subst_var_set(m: &SetExpr, x: &str, e: &Expr) -> SetExpr {
    match m {
        SetExpr::Nat | SetExpr::Named(_) => m.clone(),
        SetExpr::Range(lo, hi) => SetExpr::Range(
            Box::new(subst_in_expr(lo, x, e)),
            Box::new(subst_in_expr(hi, x, e)),
        ),
        SetExpr::Enum(es) => SetExpr::Enum(es.iter().map(|el| subst_in_expr(el, x, e)).collect()),
    }
}

/// Expression-level substitution of a variable by an arbitrary expression
/// (csp-lang's `subst_expr` only substitutes constants; the input rule
/// needs to substitute a *fresh variable*, which is also an expression).
fn subst_in_expr(target: &Expr, x: &str, e: &Expr) -> Expr {
    match target {
        Expr::Const(_) => target.clone(),
        Expr::Var(y) => {
            if y == x {
                e.clone()
            } else {
                target.clone()
            }
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_in_expr(a, x, e)),
            Box::new(subst_in_expr(b, x, e)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(subst_in_expr(a, x, e))),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(|t| subst_in_expr(t, x, e)).collect()),
        Expr::ArrayRef(name, idx) => {
            Expr::ArrayRef(name.clone(), Box::new(subst_in_expr(idx, x, e)))
        }
    }
}

/// Applies a rewrite to every sequence sub-term (bottom-up on formula
/// structure, top-down on sequence terms: if the rewrite matches, its
/// result is taken as-is and not descended into).
fn map_sterms(a: &Assertion, rw: &dyn Fn(&STerm) -> Option<STerm>) -> Assertion {
    match a {
        Assertion::True | Assertion::False => a.clone(),
        Assertion::Prefix(s, t) => Assertion::Prefix(rewrite_sterm(s, rw), rewrite_sterm(t, rw)),
        Assertion::SeqEq(s, t) => Assertion::SeqEq(rewrite_sterm(s, rw), rewrite_sterm(t, rw)),
        Assertion::Cmp(op, x, y) => Assertion::Cmp(*op, rewrite_term(x, rw), rewrite_term(y, rw)),
        Assertion::Not(inner) => Assertion::Not(Box::new(map_sterms(inner, rw))),
        Assertion::And(p, q) => {
            Assertion::And(Box::new(map_sterms(p, rw)), Box::new(map_sterms(q, rw)))
        }
        Assertion::Or(p, q) => {
            Assertion::Or(Box::new(map_sterms(p, rw)), Box::new(map_sterms(q, rw)))
        }
        Assertion::Implies(p, q) => {
            Assertion::Implies(Box::new(map_sterms(p, rw)), Box::new(map_sterms(q, rw)))
        }
        Assertion::ForallIn(x, m, body) => {
            Assertion::ForallIn(x.clone(), m.clone(), Box::new(map_sterms(body, rw)))
        }
        Assertion::ExistsIn(x, m, body) => {
            Assertion::ExistsIn(x.clone(), m.clone(), Box::new(map_sterms(body, rw)))
        }
    }
}

fn rewrite_sterm(s: &STerm, rw: &dyn Fn(&STerm) -> Option<STerm>) -> STerm {
    if let Some(replaced) = rw(s) {
        return replaced;
    }
    match s {
        STerm::Hist(_) | STerm::Empty => s.clone(),
        STerm::Lit(ts) => STerm::Lit(ts.iter().map(|t| rewrite_term(t, rw)).collect()),
        STerm::Cons(h, t) => STerm::Cons(
            Box::new(rewrite_term(h, rw)),
            Box::new(rewrite_sterm(t, rw)),
        ),
        STerm::Concat(a, b) => STerm::Concat(
            Box::new(rewrite_sterm(a, rw)),
            Box::new(rewrite_sterm(b, rw)),
        ),
        STerm::App(name, arg) => STerm::App(name.clone(), Box::new(rewrite_sterm(arg, rw))),
    }
}

fn rewrite_term(t: &Term, rw: &dyn Fn(&STerm) -> Option<STerm>) -> Term {
    match t {
        Term::Expr(_) => t.clone(),
        Term::Length(s) => Term::Length(Box::new(rewrite_sterm(s, rw))),
        Term::Index(s, i) => Term::Index(
            Box::new(rewrite_sterm(s, rw)),
            Box::new(rewrite_term(i, rw)),
        ),
        Term::Bin(op, a, b) => Term::Bin(
            *op,
            Box::new(rewrite_term(a, rw)),
            Box::new(rewrite_term(b, rw)),
        ),
        Term::Un(op, a) => Term::Un(*op, Box::new(rewrite_term(a, rw))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;

    #[test]
    fn empty_substitution_hits_every_channel() {
        // #input ≤ #wire + 1 becomes #<> ≤ #<> + 1.
        let r = Assertion::Cmp(
            CmpOp::Le,
            Term::length(STerm::chan("input")),
            Term::length(STerm::chan("wire")).add(Term::int(1)),
        );
        let r2 = subst_empty(&r);
        assert_eq!(r2.to_string(), "#<> <= (#<> + 1)");
    }

    #[test]
    fn chan_cons_only_hits_named_channel() {
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        let r2 = subst_chan_cons(&r, &ChanRef::simple("input"), &Term::var("v"));
        assert_eq!(r2.to_string(), "wire <= v^input");
    }

    #[test]
    fn chan_cons_under_function_application() {
        // f(wire) ≤ input with wire ↦ v^wire gives f(v^wire) ≤ input —
        // exactly the shape used in steps (8)–(9) of Table 1.
        let r = Assertion::prefix(STerm::chan("wire").app("f"), STerm::chan("input"));
        let r2 = subst_chan_cons(&r, &ChanRef::simple("wire"), &Term::var("v"));
        assert_eq!(r2.to_string(), "f(v^wire) <= input");
    }

    #[test]
    fn var_substitution_respects_binders() {
        // ∀x:{0..x}. x ≤ y with x ↦ 3: the bound x stays, the range and y
        // occurrences change per scoping (range is outside the binder).
        let r = Assertion::ForallIn(
            "x".into(),
            SetExpr::Range(Box::new(Expr::int(0)), Box::new(Expr::var("x"))),
            Box::new(Assertion::Cmp(CmpOp::Le, Term::var("x"), Term::var("y"))),
        );
        let r2 = subst_var(&r, "x", &Expr::int(3));
        assert_eq!(r2.to_string(), "forall x:0..3. (x <= y)");
        let r3 = subst_var(&r, "y", &Expr::int(9));
        assert_eq!(r3.to_string(), "forall x:0..x. (x <= 9)");
    }

    #[test]
    fn var_substitution_reaches_channel_subscripts() {
        let r = Assertion::prefix(
            STerm::chan_at("col", Expr::var("i")),
            STerm::chan_at("col", Expr::var("i").sub(Expr::int(1))),
        );
        let r2 = subst_var(&r, "i", &Expr::int(2));
        assert_eq!(r2.to_string(), "col[2] <= col[(2 - 1)]");
    }

    #[test]
    fn double_substitution_composes() {
        // (R^c_{v^c})^x_3 used when the input rule instantiates its fresh
        // variable.
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        let r2 = subst_chan_cons(&r, &ChanRef::simple("wire"), &Term::var("v"));
        let r3 = subst_var(&r2, "v", &Expr::int(3));
        assert_eq!(r3.to_string(), "3^wire <= input");
    }
}
