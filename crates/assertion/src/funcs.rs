//! Named sequence functions.
//!
//! §2.2 introduces `f : (M ∪ {ACK, NACK})* → M*`, "obtained from `s` by
//! cancelling all occurrences of ACK, and all consecutive pairs
//! ⟨x, NACK⟩", with the defining equations
//!
//! ```text
//! f(<>)            = <>
//! f(<x>)           = <x>
//! f(x^ACK^s)       = x^f(s)
//! f(x^NACK^s)      = f(s)
//! ```
//!
//! A [`FuncTable`] maps function names to implementations so assertions
//! like `f(wire) ≤ input` can be evaluated; the protocol cancellation
//! function is pre-registered as `"f"` in [`FuncTable::with_builtins`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use csp_trace::{Seq, Value};

/// A pure function from message sequences to message sequences.
pub type SeqFn = Arc<dyn Fn(&Seq<Value>) -> Seq<Value> + Send + Sync>;

/// A registry of named sequence functions usable in assertions.
///
/// # Examples
///
/// ```
/// use csp_assert::FuncTable;
/// use csp_trace::{Seq, Value};
///
/// let funcs = FuncTable::with_builtins();
/// let wire: Seq<Value> = [
///     Value::nat(1), Value::sym("NACK"),
///     Value::nat(1), Value::sym("ACK"),
/// ].into_iter().collect();
/// let f = funcs.get("f").unwrap();
/// assert_eq!(f(&wire).to_string(), "<1>");
/// ```
#[derive(Clone, Default)]
pub struct FuncTable {
    funcs: BTreeMap<String, SeqFn>,
}

impl FuncTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table with the paper's built-ins registered: the protocol
    /// cancellation function `f`.
    pub fn with_builtins() -> Self {
        let mut t = FuncTable::new();
        t.register("f", Arc::new(|s: &Seq<Value>| protocol_cancel(s)));
        t
    }

    /// Registers (or replaces) a function under `name`.
    pub fn register(&mut self, name: &str, f: SeqFn) {
        self.funcs.insert(name.to_string(), f);
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&SeqFn> {
        self.funcs.get(name)
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.funcs.keys().map(String::as_str)
    }
}

impl fmt::Debug for FuncTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FuncTable")
            .field("names", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// The paper's `f`: cancel every `ACK` and every consecutive pair
/// `⟨x, NACK⟩`; the surviving elements are the successfully delivered
/// messages in transmission order.
///
/// # Examples
///
/// ```
/// use csp_assert::protocol_cancel;
/// use csp_trace::{Seq, Value};
///
/// // f(<x, NACK, y, ACK>) = <y>  — the paper's worked example.
/// let s: Seq<Value> = [
///     Value::sym("x"), Value::sym("NACK"),
///     Value::sym("y"), Value::sym("ACK"),
/// ].into_iter().collect();
/// assert_eq!(protocol_cancel(&s).to_string(), "<y>");
/// ```
pub fn protocol_cancel(s: &Seq<Value>) -> Seq<Value> {
    let ack = Value::sym("ACK");
    let nack = Value::sym("NACK");
    let mut out = Vec::new();
    let mut it = s.iter().peekable();
    while let Some(x) = it.next() {
        if *x == ack || *x == nack {
            // A bare signal (no preceding message at this position):
            // cancelled. For ACK this is the paper's "cancel all
            // occurrences"; a bare NACK cannot arise from the protocol.
            continue;
        }
        match it.peek() {
            Some(&next) if *next == nack => {
                // Consecutive pair <x, NACK>: both cancelled.
                it.next();
            }
            Some(&next) if *next == ack => {
                // f(x^ACK^s) = x^f(s): the message was delivered.
                out.push(x.clone());
                it.next();
            }
            _ => {
                // f(<x>) = <x>: trailing unacknowledged message counts as
                // transmitted (the receiver saw it).
                out.push(x.clone());
            }
        }
    }
    Seq::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(names: &[&str]) -> Seq<Value> {
        names.iter().map(|n| Value::sym(n)).collect()
    }

    #[test]
    fn defining_equations_of_f() {
        // f(<>) = <>
        assert!(protocol_cancel(&Seq::empty()).is_empty());
        // f(<x>) = <x>
        assert_eq!(protocol_cancel(&seq(&["x"])), seq(&["x"]));
        // f(x^ACK^s) = x^f(s)
        assert_eq!(protocol_cancel(&seq(&["x", "ACK", "y"])), seq(&["x", "y"]));
        // f(x^NACK^s) = f(s)
        assert_eq!(protocol_cancel(&seq(&["x", "NACK", "y"])), seq(&["y"]));
    }

    #[test]
    fn paper_worked_example() {
        assert_eq!(
            protocol_cancel(&seq(&["x", "NACK", "y", "ACK"])),
            seq(&["y"])
        );
    }

    #[test]
    fn repeated_retransmission_collapses() {
        // x NACK x NACK x ACK → <x>
        assert_eq!(
            protocol_cancel(&seq(&["x", "NACK", "x", "NACK", "x", "ACK"])),
            seq(&["x"])
        );
    }

    #[test]
    fn bare_signals_are_cancelled() {
        assert!(protocol_cancel(&seq(&["ACK"])).is_empty());
        assert!(protocol_cancel(&seq(&["ACK", "ACK"])).is_empty());
    }

    #[test]
    fn numbers_as_messages() {
        let s: Seq<Value> = [
            Value::nat(3),
            Value::sym("ACK"),
            Value::nat(7),
            Value::sym("NACK"),
            Value::nat(7),
        ]
        .into_iter()
        .collect();
        let out = protocol_cancel(&s);
        assert_eq!(out.to_string(), "<3, 7>");
    }

    #[test]
    fn table_registration_and_lookup() {
        let mut t = FuncTable::new();
        assert!(!t.contains("rev"));
        t.register(
            "rev",
            Arc::new(|s: &Seq<Value>| s.iter().cloned().rev().collect()),
        );
        let rev = t.get("rev").unwrap();
        let s: Seq<Value> = [Value::nat(1), Value::nat(2)].into_iter().collect();
        assert_eq!(rev(&s).to_string(), "<2, 1>");
        assert_eq!(t.names().collect::<Vec<_>>(), vec!["rev"]);
    }

    #[test]
    fn builtins_include_f() {
        assert!(FuncTable::with_builtins().contains("f"));
    }

    #[test]
    fn f_prefix_monotonicity_on_protocol_shaped_traces() {
        // The sender proof relies on f being compatible with extension at
        // message boundaries: f(s) ≤ f(s ++ <x, ACK>).
        let s = seq(&["a", "NACK", "a", "ACK"]);
        let t = seq(&["a", "NACK", "a", "ACK", "b", "ACK"]);
        let fs = protocol_cancel(&s);
        let ft = protocol_cancel(&t);
        assert!(fs.is_prefix_of(&ft));
    }
}
