//! Evaluation of assertions in an environment extended by a channel
//! history — the `(ρ + ch(s))⟦R⟧` of §3.3.
//!
//! "`(ρ + ch(s))` is an environment in which channel names have the
//! values ascribed to them by `ch(s)`", and assertions are then evaluated
//! "according to the normal semantics of the predicate calculus".

use std::fmt;

use csp_lang::{BinOp, Env, EvalError, SetExpr, UnOp};
use csp_semantics::Universe;
use csp_trace::{History, Seq, Value};

use crate::{Assertion, CmpOp, FuncTable, STerm, Term};

/// Errors raised while evaluating an assertion.
#[derive(Debug)]
pub enum AssertError {
    /// An embedded expression failed to evaluate.
    Eval(EvalError),
    /// An assertion applied a sequence function that is not registered in
    /// the [`FuncTable`].
    UnknownFunction(String),
}

impl fmt::Display for AssertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssertError::Eval(e) => e.fmt(f),
            AssertError::UnknownFunction(n) => write!(f, "unknown sequence function `{n}`"),
        }
    }
}

impl std::error::Error for AssertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssertError::Eval(e) => Some(e),
            AssertError::UnknownFunction(_) => None,
        }
    }
}

impl From<EvalError> for AssertError {
    fn from(e: EvalError) -> Self {
        AssertError::Eval(e)
    }
}

/// Everything needed to evaluate an assertion at one moment in time:
/// the value environment ρ, the channel history `ch(s)`, the registered
/// sequence functions, and the universe bounding quantifiers.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// The value environment ρ (free value variables).
    pub env: &'a Env,
    /// The channel history `ch(s)` of the trace observed so far.
    pub history: &'a History,
    /// Named sequence functions such as the protocol's `f`.
    pub funcs: &'a FuncTable,
    /// Finite universe for bounded quantifiers and named sets.
    pub universe: &'a Universe,
}

impl<'a> EvalCtx<'a> {
    /// Creates an evaluation context.
    pub fn new(
        env: &'a Env,
        history: &'a History,
        funcs: &'a FuncTable,
        universe: &'a Universe,
    ) -> Self {
        EvalCtx {
            env,
            history,
            funcs,
            universe,
        }
    }

    /// Evaluates a sequence term to a concrete message sequence.
    ///
    /// # Errors
    ///
    /// Fails on unbound variables in channel subscripts or element
    /// expressions, or unknown sequence functions.
    pub fn sterm(&self, s: &STerm) -> Result<Seq<Value>, AssertError> {
        match s {
            STerm::Hist(c) => {
                let chan = c.resolve(self.env)?;
                Ok(self.history.on(&chan))
            }
            STerm::Empty => Ok(Seq::empty()),
            STerm::Lit(ts) => {
                let mut out = Vec::with_capacity(ts.len());
                for t in ts {
                    match self.term(t)? {
                        Some(v) => out.push(v),
                        None => {
                            return Err(AssertError::Eval(EvalError::TypeMismatch {
                                context: "sequence literal element".to_string(),
                            }))
                        }
                    }
                }
                Ok(Seq::from_vec(out))
            }
            STerm::Cons(x, rest) => {
                let v = self
                    .term(x)?
                    .ok_or(AssertError::Eval(EvalError::TypeMismatch {
                        context: "cons head".to_string(),
                    }))?;
                Ok(self.sterm(rest)?.cons(v))
            }
            STerm::Concat(a, b) => Ok(self.sterm(a)?.concat(&self.sterm(b)?)),
            STerm::App(name, arg) => {
                let f = self
                    .funcs
                    .get(name)
                    .ok_or_else(|| AssertError::UnknownFunction(name.clone()))?;
                Ok(f(&self.sterm(arg)?))
            }
        }
    }

    /// Evaluates a value term. `Ok(None)` means *undefined* — currently
    /// only out-of-range sequence indexing — which makes the enclosing
    /// comparison false (the paper always guards indexing with
    /// `1 ≤ i ≤ #s`).
    ///
    /// # Errors
    ///
    /// Fails on unbound variables, ill-typed operators, and unknown
    /// functions.
    pub fn term(&self, t: &Term) -> Result<Option<Value>, AssertError> {
        match t {
            Term::Expr(e) => Ok(Some(e.eval(self.env)?)),
            Term::Length(s) => Ok(Some(Value::Int(self.sterm(s)?.len() as i64))),
            Term::Index(s, i) => {
                let seq = self.sterm(s)?;
                let idx = match self.term(i)? {
                    Some(Value::Int(n)) if n >= 1 => n as usize,
                    Some(_) | None => return Ok(None),
                };
                Ok(seq.at(idx).cloned())
            }
            Term::Bin(op, a, b) => {
                let (va, vb) = match (self.term(a)?, self.term(b)?) {
                    (Some(va), Some(vb)) => (va, vb),
                    _ => return Ok(None),
                };
                // Reuse the expression evaluator's operator semantics by
                // building a tiny constant expression.
                let e = csp_lang::Expr::Bin(
                    *op,
                    Box::new(csp_lang::Expr::Const(va)),
                    Box::new(csp_lang::Expr::Const(vb)),
                );
                Ok(Some(e.eval(self.env)?))
            }
            Term::Un(op, a) => match self.term(a)? {
                None => Ok(None),
                Some(v) => {
                    let e = csp_lang::Expr::Un(*op, Box::new(csp_lang::Expr::Const(v)));
                    Ok(Some(e.eval(self.env)?))
                }
            },
        }
    }

    /// Evaluates an assertion to a truth value.
    ///
    /// Quantifiers over `NAT` are enumerated up to
    /// `max(universe bound, total messages in the history)`, which covers
    /// both value quantification and the paper's index quantification
    /// (`∀i:NAT. 1 ≤ i ≤ #output ⇒ …`), since no index can exceed the
    /// total message count.
    ///
    /// # Errors
    ///
    /// As for [`term`](Self::term) and [`sterm`](Self::sterm).
    pub fn assertion(&self, a: &Assertion) -> Result<bool, AssertError> {
        match a {
            Assertion::True => Ok(true),
            Assertion::False => Ok(false),
            Assertion::Prefix(s, t) => Ok(self.sterm(s)?.is_prefix_of(&self.sterm(t)?)),
            Assertion::SeqEq(s, t) => Ok(self.sterm(s)? == self.sterm(t)?),
            Assertion::Cmp(op, x, y) => {
                let (vx, vy) = match (self.term(x)?, self.term(y)?) {
                    (Some(vx), Some(vy)) => (vx, vy),
                    _ => return Ok(false), // undefined operand ⇒ atom false
                };
                Ok(match op {
                    CmpOp::Eq => vx == vy,
                    CmpOp::Ne => vx != vy,
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        let (a, b) = match (vx.as_int(), vy.as_int()) {
                            (Some(a), Some(b)) => (a, b),
                            _ => {
                                return Err(AssertError::Eval(EvalError::TypeMismatch {
                                    context: format!("comparison {}", op.symbol()),
                                }))
                            }
                        };
                        match op {
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                            _ => unreachable!(),
                        }
                    }
                })
            }
            Assertion::Not(inner) => Ok(!self.assertion(inner)?),
            Assertion::And(x, y) => Ok(self.assertion(x)? && self.assertion(y)?),
            Assertion::Or(x, y) => Ok(self.assertion(x)? || self.assertion(y)?),
            Assertion::Implies(x, y) => Ok(!self.assertion(x)? || self.assertion(y)?),
            Assertion::ForallIn(x, m, body) => {
                for v in self.quantifier_range(m)? {
                    let env = self.env.bind(x, v);
                    let ctx = EvalCtx { env: &env, ..*self };
                    if !ctx.assertion(body)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Assertion::ExistsIn(x, m, body) => {
                for v in self.quantifier_range(m)? {
                    let env = self.env.bind(x, v);
                    let ctx = EvalCtx { env: &env, ..*self };
                    if ctx.assertion(body)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    fn quantifier_range(&self, m: &SetExpr) -> Result<Vec<Value>, AssertError> {
        let set = m.eval(self.env)?;
        match &set {
            csp_lang::MsgSet::Nat => {
                let bound = (self.universe.nat_bound() as usize).max(self.history.total_messages());
                Ok((0..=bound as u32).map(Value::nat).collect())
            }
            _ => Ok(self.universe.enumerate(&set)?),
        }
    }
}

/// Suppress unused-import warnings for operator re-exports used only in
/// doc positions.
#[allow(dead_code)]
fn _ops(_: BinOp, _: UnOp) {}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_lang::Expr;
    use csp_trace::Trace;

    fn ctx_fixture(trace: &[(&'static str, u32)]) -> (Env, History, FuncTable, Universe) {
        let t = Trace::parse_like(trace.iter().map(|&(c, n)| (c, Value::nat(n))));
        (
            Env::new(),
            t.history(),
            FuncTable::with_builtins(),
            Universe::new(3),
        )
    }

    #[test]
    fn wire_le_input_on_copier_trace() {
        let (env, h, f, u) = ctx_fixture(&[("input", 3), ("wire", 3), ("input", 5)]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        assert!(ctx.assertion(&r).unwrap());
        // The converse fails:
        let r2 = Assertion::prefix(STerm::chan("input"), STerm::chan("wire"));
        assert!(!ctx.assertion(&r2).unwrap());
    }

    #[test]
    fn length_bound_assertion() {
        // copier sat #input ≤ #wire + 1
        let (env, h, f, u) = ctx_fixture(&[("input", 3), ("wire", 3), ("input", 5)]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let r = Assertion::Cmp(
            CmpOp::Le,
            Term::length(STerm::chan("input")),
            Term::length(STerm::chan("wire")).add(Term::int(1)),
        );
        assert!(ctx.assertion(&r).unwrap());
    }

    #[test]
    fn empty_history_satisfies_prefix_assertions() {
        let (env, h, f, u) = ctx_fixture(&[]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        assert!(ctx.assertion(&r).unwrap());
    }

    #[test]
    fn indexing_is_one_based_and_guarded() {
        let (env, h, f, u) = ctx_fixture(&[("out", 7)]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let idx1 = Assertion::Cmp(
            CmpOp::Eq,
            Term::Index(Box::new(STerm::chan("out")), Box::new(Term::int(1))),
            Term::int(7),
        );
        assert!(ctx.assertion(&idx1).unwrap());
        // Out of range ⇒ atom false, even negated-equality shape:
        let idx9 = Assertion::Cmp(
            CmpOp::Eq,
            Term::Index(Box::new(STerm::chan("out")), Box::new(Term::int(9))),
            Term::int(7),
        );
        assert!(!ctx.assertion(&idx9).unwrap());
        let idx0 = Assertion::Cmp(
            CmpOp::Ne,
            Term::Index(Box::new(STerm::chan("out")), Box::new(Term::int(0))),
            Term::int(7),
        );
        assert!(!ctx.assertion(&idx0).unwrap());
    }

    #[test]
    fn cons_and_literal_sequences() {
        let (env, h, f, u) = ctx_fixture(&[("c", 2), ("c", 3)]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        // 2^<3> == c
        let r = Assertion::SeqEq(
            STerm::Lit(vec![Term::int(3)]).cons(Term::int(2)),
            STerm::chan("c"),
        );
        assert!(ctx.assertion(&r).unwrap());
        // Concat form: <2> ++ <3> == c
        let r2 = Assertion::SeqEq(
            STerm::Concat(
                Box::new(STerm::Lit(vec![Term::int(2)])),
                Box::new(STerm::Lit(vec![Term::int(3)])),
            ),
            STerm::chan("c"),
        );
        assert!(ctx.assertion(&r2).unwrap());
    }

    #[test]
    fn protocol_f_assertion() {
        // Trace: wire carries 1, NACK, 1, ACK; input carried 1.
        let env = Env::new();
        let t = Trace::from_events([
            ("input", Value::nat(1)).into(),
            ("wire", Value::nat(1)).into(),
            ("wire", Value::sym("NACK")).into(),
            ("wire", Value::nat(1)).into(),
            ("wire", Value::sym("ACK")).into(),
        ]);
        let h = t.history();
        let f = FuncTable::with_builtins();
        let u = Universe::new(3);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let r = Assertion::prefix(STerm::chan("wire").app("f"), STerm::chan("input"));
        assert!(ctx.assertion(&r).unwrap());
    }

    #[test]
    fn unknown_function_errors() {
        let (env, h, f, u) = ctx_fixture(&[]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        let r = Assertion::SeqEq(STerm::chan("c").app("ghost"), STerm::Empty);
        assert!(matches!(
            ctx.assertion(&r),
            Err(AssertError::UnknownFunction(_))
        ));
    }

    #[test]
    fn forall_over_finite_set() {
        let (env, h, f, u) = ctx_fixture(&[]);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        // ∀x:{0..3}. x ≤ 3
        let r = Assertion::ForallIn(
            "x".into(),
            SetExpr::range(0, 3),
            Box::new(Assertion::Cmp(CmpOp::Le, Term::var("x"), Term::int(3))),
        );
        assert!(ctx.assertion(&r).unwrap());
        // ∃x:{0..3}. x == 2
        let e = Assertion::ExistsIn(
            "x".into(),
            SetExpr::range(0, 3),
            Box::new(Assertion::Cmp(CmpOp::Eq, Term::var("x"), Term::int(2))),
        );
        assert!(ctx.assertion(&e).unwrap());
    }

    #[test]
    fn nat_quantifier_covers_history_indices() {
        // History longer than the universe's nat bound: the quantifier
        // range must still reach every index.
        let (env, h, f, u) =
            ctx_fixture(&[("c", 1), ("c", 1), ("c", 1), ("c", 1), ("c", 1), ("c", 1)]);
        assert!(h.total_messages() > u.nat_bound() as usize);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        // ∀i:NAT. 1 ≤ i and i ≤ #c ⇒ c[i] == 1
        let guard = Assertion::Cmp(CmpOp::Le, Term::int(1), Term::var("i")).and(Assertion::Cmp(
            CmpOp::Le,
            Term::var("i"),
            Term::length(STerm::chan("c")),
        ));
        let body = Assertion::Cmp(
            CmpOp::Eq,
            Term::Index(Box::new(STerm::chan("c")), Box::new(Term::var("i"))),
            Term::int(1),
        );
        let r = Assertion::ForallIn("i".into(), SetExpr::Nat, Box::new(guard.implies(body)));
        assert!(ctx.assertion(&r).unwrap());
    }

    #[test]
    fn multiplier_invariant_shape() {
        // §2's multiplier claim on a hand-built history:
        // output_i = Σ_j v[j] × row[j]_i  with v = (2,3), one output.
        let env = Env::new()
            .bind("v[1]", Value::Int(2))
            .bind("v[2]", Value::Int(3));
        let t = Trace::from_events([
            csp_trace::Event::new(csp_trace::Channel::indexed("row", 1), Value::nat(1)),
            csp_trace::Event::new(csp_trace::Channel::indexed("row", 2), Value::nat(2)),
            csp_trace::Event::new(csp_trace::Channel::simple("output"), Value::nat(8)),
        ]);
        let h = t.history();
        let f = FuncTable::with_builtins();
        let u = Universe::new(3);
        let ctx = EvalCtx::new(&env, &h, &f, &u);
        // ∀i:NAT. 1 ≤ i ≤ #output ⇒
        //   output[i] == v[1]*row[1][i] + v[2]*row[2][i]
        let guard = Assertion::Cmp(CmpOp::Le, Term::int(1), Term::var("i")).and(Assertion::Cmp(
            CmpOp::Le,
            Term::var("i"),
            Term::length(STerm::chan("output")),
        ));
        let lhs = Term::Index(Box::new(STerm::chan("output")), Box::new(Term::var("i")));
        let prod = |j: i64| {
            Term::mul(
                Term::Expr(Expr::ArrayRef("v".into(), Box::new(Expr::int(j)))),
                Term::Index(
                    Box::new(STerm::chan_at("row", Expr::int(j))),
                    Box::new(Term::var("i")),
                ),
            )
        };
        let rhs = prod(1).add(prod(2));
        let body = Assertion::Cmp(CmpOp::Eq, lhs, rhs);
        let r = Assertion::ForallIn("i".into(), SetExpr::Nat, Box::new(guard.implies(body)));
        assert!(ctx.assertion(&r).unwrap());
    }
}
