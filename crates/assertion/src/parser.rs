//! Parser for the assertion language.
//!
//! Concrete syntax (examples from the paper):
//!
//! ```text
//! wire <= input                      -- prefix order on histories
//! output <= f(wire)                  -- named sequence function
//! #input <= #wire + 1                -- lengths and arithmetic
//! f(wire) <= x^input                 -- cons
//! forall i:NAT. 1 <= i and i <= #output => output[i] == v[1]*row[1][i]
//! ```
//!
//! Identifier classification: names listed in the supplied
//! [`ChannelInfo`] denote channel histories (sequence-valued); names
//! registered as sequence functions are applied with `name(seq)`; every
//! other lower-case identifier is a value variable, upper-case ones are
//! symbolic atoms (`ACK`); `name[e]` is a channel-array element when
//! `name` is declared an array channel, history indexing when `name` is a
//! plain channel, and a host constant array (`v[1]`) otherwise.
//!
//! Precedence, loosest to tightest: `forall`/`exists` (body extends to
//! the end), `=>` (right-assoc), `or`, `and`, `not`, comparisons, `^`
//! (cons, right-assoc) and `++`, `+ -`, `* / %`, postfix `[…]`, atoms.

use std::collections::BTreeSet;

use csp_lang::{BinOp, ChanRef, Expr, SetExpr, UnOp};

use crate::{Assertion, CmpOp, STerm, Term};

/// Which identifiers denote channels, and which of those are arrays.
#[derive(Debug, Clone, Default)]
pub struct ChannelInfo {
    plain: BTreeSet<String>,
    arrays: std::collections::BTreeMap<String, usize>,
    funcs: BTreeSet<String>,
}

impl ChannelInfo {
    /// No channels known — identifiers all parse as variables/atoms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares plain channel names.
    #[must_use]
    pub fn with_channels<'a, I: IntoIterator<Item = &'a str>>(mut self, names: I) -> Self {
        self.plain.extend(names.into_iter().map(String::from));
        self
    }

    /// Declares singly-subscripted channel-array names (like `row`,
    /// `col`).
    #[must_use]
    pub fn with_arrays<'a, I: IntoIterator<Item = &'a str>>(mut self, names: I) -> Self {
        self.arrays
            .extend(names.into_iter().map(|n| (n.to_string(), 1)));
        self
    }

    /// Declares a channel array with an explicit subscript count, e.g.
    /// `grab[p][f]` has arity 2. Brackets beyond the arity parse as
    /// history indexing (`grab[0][1][i]` is message `i` on `grab[0][1]`).
    #[must_use]
    pub fn with_array_of_arity(mut self, name: &str, arity: usize) -> Self {
        self.arrays.insert(name.to_string(), arity.max(1));
        self
    }

    /// Declares sequence-function names (like `f`).
    #[must_use]
    pub fn with_funcs<'a, I: IntoIterator<Item = &'a str>>(mut self, names: I) -> Self {
        self.funcs.extend(names.into_iter().map(String::from));
        self
    }

    fn is_plain(&self, n: &str) -> bool {
        self.plain.contains(n)
    }

    fn array_arity(&self, n: &str) -> Option<usize> {
        self.arrays.get(n).copied()
    }

    fn is_func(&self, n: &str) -> bool {
        self.funcs.contains(n)
    }
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertParseError {
    message: String,
    position: usize,
}

impl AssertParseError {
    /// What went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for AssertParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "assertion parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for AssertParseError {}

/// Parses an assertion.
///
/// # Errors
///
/// Returns [`AssertParseError`] on malformed input, type mismatches
/// (comparing a sequence with a value), or trailing tokens.
///
/// # Examples
///
/// ```
/// use csp_assert::{parse_assertion, ChannelInfo};
///
/// let info = ChannelInfo::new()
///     .with_channels(["wire", "input"])
///     .with_funcs(["f"]);
/// let r = parse_assertion("f(wire) <= x^input", &info).unwrap();
/// assert_eq!(r.to_string(), "f(wire) <= x^input");
/// ```
pub fn parse_assertion(src: &str, info: &ChannelInfo) -> Result<Assertion, AssertParseError> {
    let toks = tokenize(src)?;
    let mut p = AParser { toks, pos: 0, info };
    let a = p.assertion()?;
    if p.pos < p.toks.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(a)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum T {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

fn tokenize(src: &str) -> Result<Vec<T>, AssertParseError> {
    let mut out = Vec::new();
    let mut cs = src.chars().peekable();
    while let Some(&c) = cs.peek() {
        match c {
            c if c.is_whitespace() => {
                cs.next();
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | '^' | '#' | '.' => {
                cs.next();
                out.push(T::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    '{' => "{",
                    '}' => "}",
                    ',' => ",",
                    '^' => "^",
                    '#' => "#",
                    _ => ".",
                }));
                // Merge ".." for ranges.
                if c == '.' && cs.peek() == Some(&'.') {
                    cs.next();
                    out.pop();
                    out.push(T::Sym(".."));
                }
            }
            '+' => {
                cs.next();
                if cs.peek() == Some(&'+') {
                    cs.next();
                    out.push(T::Sym("++"));
                } else {
                    out.push(T::Sym("+"));
                }
            }
            '-' | '*' | '/' | '%' => {
                cs.next();
                out.push(T::Sym(match c {
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    _ => "%",
                }));
            }
            '<' => {
                cs.next();
                match cs.peek() {
                    Some('=') => {
                        cs.next();
                        out.push(T::Sym("<="));
                    }
                    Some('>') => {
                        cs.next();
                        out.push(T::Sym("<>"));
                    }
                    _ => out.push(T::Sym("<")),
                }
            }
            '>' => {
                cs.next();
                if cs.peek() == Some(&'=') {
                    cs.next();
                    out.push(T::Sym(">="));
                } else {
                    out.push(T::Sym(">"));
                }
            }
            '=' => {
                cs.next();
                match cs.peek() {
                    Some('=') => {
                        cs.next();
                        out.push(T::Sym("=="));
                    }
                    Some('>') => {
                        cs.next();
                        out.push(T::Sym("=>"));
                    }
                    _ => {
                        return Err(AssertParseError {
                            message: "stray `=` (use `==` or `=>`)".into(),
                            position: out.len(),
                        })
                    }
                }
            }
            '!' => {
                cs.next();
                if cs.peek() == Some(&'=') {
                    cs.next();
                    out.push(T::Sym("!="));
                } else {
                    return Err(AssertParseError {
                        message: "stray `!`".into(),
                        position: out.len(),
                    });
                }
            }
            ':' => {
                cs.next();
                out.push(T::Sym(":"));
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = cs.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        cs.next();
                    } else {
                        break;
                    }
                }
                out.push(T::Int(n.parse().map_err(|_| AssertParseError {
                    message: "integer too large".into(),
                    position: out.len(),
                })?));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = cs.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        cs.next();
                    } else {
                        break;
                    }
                }
                out.push(T::Ident(s));
            }
            other => {
                return Err(AssertParseError {
                    message: format!("unexpected character `{other}`"),
                    position: out.len(),
                })
            }
        }
    }
    Ok(out)
}

/// A parsed operand: sequence- or value-typed.
#[derive(Debug, Clone)]
enum Operand {
    Seq(STerm),
    Val(Term),
}

struct AParser<'a> {
    toks: Vec<T>,
    pos: usize,
    info: &'a ChannelInfo,
}

impl AParser<'_> {
    fn err(&self, msg: impl Into<String>) -> AssertParseError {
        AssertParseError {
            message: msg.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<&T> {
        self.toks.get(self.pos)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Some(T::Sym(t)) if *t == s)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(T::Ident(t)) if t == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), AssertParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String, AssertParseError> {
        match self.peek() {
            Some(T::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // assertion := quantified | implies
    fn assertion(&mut self) -> Result<Assertion, AssertParseError> {
        if self.eat_kw("forall") || self.peek_kw("exists") {
            let is_forall = !self.eat_kw("exists");
            let var = self.ident()?;
            self.expect_sym(":")?;
            let set = self.set_expr()?;
            self.expect_sym(".")?;
            let body = self.assertion()?;
            return Ok(if is_forall {
                Assertion::ForallIn(var, set, Box::new(body))
            } else {
                Assertion::ExistsIn(var, set, Box::new(body))
            });
        }
        self.implies()
    }

    fn implies(&mut self) -> Result<Assertion, AssertParseError> {
        let left = self.or()?;
        if self.eat_sym("=>") {
            let right = if self.peek_kw("forall") || self.peek_kw("exists") {
                self.assertion()?
            } else {
                self.implies()?
            };
            Ok(left.implies(right))
        } else {
            Ok(left)
        }
    }

    fn or(&mut self) -> Result<Assertion, AssertParseError> {
        let mut left = self.and()?;
        while self.eat_kw("or") {
            let right = self.and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Assertion, AssertParseError> {
        let mut left = self.unary()?;
        while self.eat_kw("and") {
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Assertion, AssertParseError> {
        if self.eat_kw("not") {
            return Ok(self.unary()?.negate());
        }
        if self.eat_kw("true") {
            return Ok(Assertion::True);
        }
        if self.eat_kw("false") {
            return Ok(Assertion::False);
        }
        // Parenthesised assertion vs parenthesised operand: try assertion
        // first by lookahead — if after the matching `(` we find an
        // operand followed by a comparison, it is an atom; simplest is to
        // backtrack.
        if self.peek_sym("(") {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.assertion() {
                if self.eat_sym(")") {
                    // Only accept if this really was a formula group: a
                    // following comparison operator means we mis-parsed an
                    // operand like `(x + 1) <= y` — backtrack.
                    if !self.peek_cmp() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        self.comparison()
    }

    fn peek_cmp(&self) -> bool {
        ["<=", "<", "==", "!=", ">=", ">"]
            .iter()
            .any(|s| self.peek_sym(s))
    }

    fn comparison(&mut self) -> Result<Assertion, AssertParseError> {
        let left = self.operand()?;
        let op = if self.eat_sym("<=") {
            "<="
        } else if self.eat_sym("==") {
            "=="
        } else if self.eat_sym("!=") {
            "!="
        } else if self.eat_sym(">=") {
            ">="
        } else if self.eat_sym("<") {
            "<"
        } else if self.eat_sym(">") {
            ">"
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        let right = self.operand()?;
        match (left, right) {
            (Operand::Seq(a), Operand::Seq(b)) => match op {
                "<=" => Ok(Assertion::Prefix(a, b)),
                "==" => Ok(Assertion::SeqEq(a, b)),
                "!=" => Ok(Assertion::SeqEq(a, b).negate()),
                _ => Err(self.err(format!("`{op}` is not defined on sequences"))),
            },
            (Operand::Val(a), Operand::Val(b)) => {
                let c = match op {
                    "<=" => CmpOp::Le,
                    "<" => CmpOp::Lt,
                    "==" => CmpOp::Eq,
                    "!=" => CmpOp::Ne,
                    ">=" => CmpOp::Ge,
                    ">" => CmpOp::Gt,
                    _ => unreachable!(),
                };
                Ok(Assertion::Cmp(c, a, b))
            }
            _ => Err(self.err("cannot compare a sequence with a value")),
        }
    }

    // operand := additive ('^' operand | '++' operand)?
    fn operand(&mut self) -> Result<Operand, AssertParseError> {
        let first = self.additive()?;
        if self.eat_sym("^") {
            let head = match first {
                Operand::Val(t) => t,
                Operand::Seq(_) => return Err(self.err("left of `^` must be a value")),
            };
            let tail = match self.operand()? {
                Operand::Seq(s) => s,
                Operand::Val(_) => return Err(self.err("right of `^` must be a sequence")),
            };
            return Ok(Operand::Seq(STerm::Cons(Box::new(head), Box::new(tail))));
        }
        if self.eat_sym("++") {
            let a = match first {
                Operand::Seq(s) => s,
                Operand::Val(_) => return Err(self.err("left of `++` must be a sequence")),
            };
            let b = match self.operand()? {
                Operand::Seq(s) => s,
                Operand::Val(_) => return Err(self.err("right of `++` must be a sequence")),
            };
            return Ok(Operand::Seq(STerm::Concat(Box::new(a), Box::new(b))));
        }
        Ok(first)
    }

    fn additive(&mut self) -> Result<Operand, AssertParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.peek_sym("+") {
                BinOp::Add
            } else if self.peek_sym("-") {
                BinOp::Sub
            } else {
                break;
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Operand::Val(Term::Bin(
                op,
                Box::new(self.val(left)?),
                Box::new(self.val(right)?),
            ));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Operand, AssertParseError> {
        let mut left = self.prefix_op()?;
        loop {
            let op = if self.peek_sym("*") {
                BinOp::Mul
            } else if self.peek_sym("/") {
                BinOp::Div
            } else if self.peek_sym("%") {
                BinOp::Mod
            } else {
                break;
            };
            self.pos += 1;
            let right = self.prefix_op()?;
            left = Operand::Val(Term::Bin(
                op,
                Box::new(self.val(left)?),
                Box::new(self.val(right)?),
            ));
        }
        Ok(left)
    }

    fn val(&self, o: Operand) -> Result<Term, AssertParseError> {
        match o {
            Operand::Val(t) => Ok(t),
            Operand::Seq(s) => {
                Err(self.err(format!("sequence `{s}` used where a value is required")))
            }
        }
    }

    fn prefix_op(&mut self) -> Result<Operand, AssertParseError> {
        if self.eat_sym("#") {
            let arg = self.prefix_op()?;
            let s = match arg {
                Operand::Seq(s) => s,
                Operand::Val(_) => return Err(self.err("`#` applies to a sequence")),
            };
            return Ok(Operand::Val(Term::Length(Box::new(s))));
        }
        if self.eat_sym("-") {
            let arg = self.prefix_op()?;
            return Ok(Operand::Val(Term::Un(UnOp::Neg, Box::new(self.val(arg)?))));
        }
        self.postfix()
    }

    // postfix := primary ('[' operand ']')*  — indexing of sequences.
    fn postfix(&mut self) -> Result<Operand, AssertParseError> {
        let mut base = self.primary()?;
        while self.peek_sym("[") {
            // Only sequence indexing reaches here; channel subscripts and
            // host arrays are consumed inside `primary`.
            match base {
                Operand::Seq(s) => {
                    self.pos += 1;
                    let idx = self.operand()?;
                    self.expect_sym("]")?;
                    base = Operand::Val(Term::Index(Box::new(s), Box::new(self.val(idx)?)));
                }
                Operand::Val(_) => break,
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Operand, AssertParseError> {
        match self.peek().cloned() {
            Some(T::Int(n)) => {
                self.pos += 1;
                Ok(Operand::Val(Term::int(n)))
            }
            Some(T::Sym("<>")) => {
                self.pos += 1;
                Ok(Operand::Seq(STerm::Empty))
            }
            Some(T::Sym("<")) => {
                // Sequence literal <e1, …, en>.
                self.pos += 1;
                let mut elems = Vec::new();
                if !self.peek_sym(">") {
                    loop {
                        let o = self.operand()?;
                        elems.push(self.val(o)?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym(">")?;
                Ok(Operand::Seq(STerm::Lit(elems)))
            }
            Some(T::Sym("(")) => {
                self.pos += 1;
                let inner = self.operand()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Some(T::Ident(name)) => {
                self.pos += 1;
                // Sequence function application.
                if self.info.is_func(&name) && self.peek_sym("(") {
                    self.pos += 1;
                    let arg = self.operand()?;
                    self.expect_sym(")")?;
                    let s = match arg {
                        Operand::Seq(s) => s,
                        Operand::Val(_) => {
                            return Err(self.err(format!("`{name}(…)` needs a sequence argument")))
                        }
                    };
                    return Ok(Operand::Seq(STerm::App(name, Box::new(s))));
                }
                // Channel-array element: row[i] is a channel (grab[p][f]
                // for arity 2), then maybe indexed further: row[1][i].
                if let Some(arity) = self.info.array_arity(&name) {
                    let mut subs = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        self.expect_sym("[")?;
                        let sub = self.operand()?;
                        self.expect_sym("]")?;
                        let sub = self.val(sub)?;
                        subs.push(term_to_expr(&sub).ok_or_else(|| {
                            self.err("channel subscripts must be plain expressions")
                        })?);
                    }
                    return Ok(Operand::Seq(STerm::Hist(ChanRef::with_indices(
                        &name, subs,
                    ))));
                }
                // Plain channel history.
                if self.info.is_plain(&name) {
                    return Ok(Operand::Seq(STerm::chan(&name)));
                }
                // Host constant array v[e].
                if self.peek_sym("[") {
                    self.pos += 1;
                    let idx = self.operand()?;
                    self.expect_sym("]")?;
                    let idx = self.val(idx)?;
                    let e = term_to_expr(&idx)
                        .ok_or_else(|| self.err("array subscripts must be plain expressions"))?;
                    return Ok(Operand::Val(Term::Expr(Expr::ArrayRef(name, Box::new(e)))));
                }
                // Atom or variable by capitalisation, as in csp-lang.
                if name.chars().next().is_some_and(char::is_uppercase) {
                    Ok(Operand::Val(Term::sym(&name)))
                } else {
                    Ok(Operand::Val(Term::var(&name)))
                }
            }
            _ => Err(self.err("expected an operand")),
        }
    }

    fn set_expr(&mut self) -> Result<SetExpr, AssertParseError> {
        if self.eat_kw("NAT") {
            return Ok(SetExpr::Nat);
        }
        if self.eat_sym("{") {
            if self.eat_sym("}") {
                return Ok(SetExpr::Enum(Vec::new()));
            }
            let first = self.operand()?;
            let first = self.val(first).and_then(|t| {
                term_to_expr(&t).ok_or_else(|| self.err("set elements must be plain expressions"))
            })?;
            if self.eat_sym("..") {
                let hi = self.operand()?;
                let hi = self.val(hi).and_then(|t| {
                    term_to_expr(&t)
                        .ok_or_else(|| self.err("range bound must be a plain expression"))
                })?;
                self.expect_sym("}")?;
                return Ok(SetExpr::Range(Box::new(first), Box::new(hi)));
            }
            let mut elems = vec![first];
            while self.eat_sym(",") {
                let o = self.operand()?;
                elems.push(self.val(o).and_then(|t| {
                    term_to_expr(&t)
                        .ok_or_else(|| self.err("set elements must be plain expressions"))
                })?);
            }
            self.expect_sym("}")?;
            return Ok(SetExpr::Enum(elems));
        }
        // Named set or bare range lo..hi.
        if let Some(T::Ident(n)) = self.peek().cloned() {
            if n.chars().next().is_some_and(char::is_uppercase) {
                self.pos += 1;
                return Ok(SetExpr::Named(n));
            }
        }
        let lo = self.operand()?;
        let lo = self.val(lo).and_then(|t| {
            term_to_expr(&t).ok_or_else(|| self.err("range bound must be a plain expression"))
        })?;
        self.expect_sym("..")?;
        let hi = self.operand()?;
        let hi = self.val(hi).and_then(|t| {
            term_to_expr(&t).ok_or_else(|| self.err("range bound must be a plain expression"))
        })?;
        Ok(SetExpr::Range(Box::new(lo), Box::new(hi)))
    }
}

/// Extracts a plain csp-lang expression from a term that contains no
/// sequence-dependent operators (used for subscripts and set bounds).
fn term_to_expr(t: &Term) -> Option<Expr> {
    match t {
        Term::Expr(e) => Some(e.clone()),
        Term::Bin(op, a, b) => Some(Expr::Bin(
            *op,
            Box::new(term_to_expr(a)?),
            Box::new(term_to_expr(b)?),
        )),
        Term::Un(op, a) => Some(Expr::Un(*op, Box::new(term_to_expr(a)?))),
        Term::Length(_) | Term::Index(_, _) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ChannelInfo {
        ChannelInfo::new()
            .with_channels(["wire", "input", "output"])
            .with_arrays(["row", "col"])
            .with_funcs(["f"])
    }

    #[track_caller]
    fn ok(src: &str) -> Assertion {
        parse_assertion(src, &info()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn paper_assertions_parse() {
        assert_eq!(ok("wire <= input").to_string(), "wire <= input");
        assert_eq!(ok("output <= f(wire)").to_string(), "output <= f(wire)");
        assert_eq!(
            ok("#input <= #wire + 1").to_string(),
            "#input <= (#wire + 1)"
        );
        assert_eq!(ok("f(wire) <= x^input").to_string(), "f(wire) <= x^input");
    }

    #[test]
    fn multiplier_invariant_parses() {
        let r = ok("forall i:NAT. 1 <= i and i <= #output => \
             output[i] == v[1]*row[1][i] + v[2]*row[2][i]");
        match &r {
            Assertion::ForallIn(x, m, _) => {
                assert_eq!(x, "i");
                assert_eq!(m, &SetExpr::Nat);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = r.to_string();
        assert!(s.contains("output[i]"), "{s}");
        assert!(s.contains("row[1][i]"), "{s}");
    }

    #[test]
    fn precedence_implication_binds_loosest() {
        let r = ok("1 <= 2 and 2 <= 3 => 1 <= 3");
        assert!(matches!(r, Assertion::Implies(_, _)));
    }

    #[test]
    fn sequence_literals_and_empty() {
        assert_eq!(ok("<> <= wire").to_string(), "<> <= wire");
        let r = ok("<3, 4> <= input");
        assert_eq!(r.to_string(), "<3, 4> <= input");
    }

    #[test]
    fn cons_chains_right() {
        let r = ok("x^y^wire <= input");
        assert_eq!(r.to_string(), "x^y^wire <= input");
    }

    #[test]
    fn concat_parses() {
        let r = ok("wire ++ <1> <= input");
        assert_eq!(r.to_string(), "(wire ++ <1>) <= input");
    }

    #[test]
    fn atoms_vs_variables() {
        let r = ok("x == ACK");
        match r {
            Assertion::Cmp(CmpOp::Eq, Term::Expr(Expr::Var(v)), Term::Expr(c)) => {
                assert_eq!(v, "x");
                assert_eq!(c, Expr::sym("ACK"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn type_errors_reported() {
        assert!(parse_assertion("wire <= 3", &info()).is_err());
        assert!(parse_assertion("#3 == 1", &info()).is_err());
        assert!(parse_assertion("wire < input", &info()).is_err());
        assert!(parse_assertion("1 ^ 2 <= wire", &info()).is_err());
    }

    #[test]
    fn parenthesised_formulas_and_operands() {
        let r = ok("(1 <= 2) and (2 <= 3)");
        assert!(matches!(r, Assertion::And(_, _)));
        let r2 = ok("(x + 1) <= y");
        assert!(matches!(r2, Assertion::Cmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn not_and_nested_quantifiers() {
        let r = ok("not (wire <= input)");
        assert!(matches!(r, Assertion::Not(_)));
        let q = ok("forall x:{0..3}. exists y:{0..3}. x <= y");
        assert!(matches!(q, Assertion::ForallIn(_, _, _)));
    }

    #[test]
    fn channel_array_subscripts() {
        let r = ok("col[0] <= col[i-1]");
        assert_eq!(r.to_string(), "col[0] <= col[(i - 1)]");
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_assertion("wire <= input input", &info()).is_err());
    }
}
