//! Deciding validity of *pure* premises.
//!
//! Several inference rules have premises that are ordinary predicates
//! about sequences rather than `sat` judgements — e.g. the emptiness
//! rule's `R_<>`, the consequence rule's `R ⇒ S`, and Table 1's steps
//! justified "(def f)". The paper discharges these by informal sequence
//! reasoning; this module provides the mechanical counterpart:
//!
//! 1. a **syntactic prover** for the handful of laws the paper's proofs
//!    actually use (prefix reflexivity, `<> ≤ s`, cons-monotonicity,
//!    conjunction/implication structure), and
//! 2. a **bounded validity checker** that exhaustively evaluates the
//!    formula over all channel histories up to a configured length and
//!    all variable values from the universe — refutation-complete within
//!    the bound, and the paper-honest analogue of "check it against the
//!    definition of f".
//!
//! Every decision records *how* it was reached so proof checking can
//! report which premises rest on the bounded oracle.

use csp_lang::Env;
use csp_semantics::Universe;
use csp_trace::{Channel, History, Seq, Value};

use crate::{Assertion, EvalCtx, FuncTable, STerm};

/// How thorough the bounded check is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecideConfig {
    /// Maximum per-channel history length enumerated.
    pub max_history_len: usize,
    /// Cap on the total number of evaluation cases; the check reports
    /// [`Decision::Unknown`] rather than exceed it.
    pub max_cases: usize,
}

impl Default for DecideConfig {
    fn default() -> Self {
        DecideConfig {
            max_history_len: 3,
            max_cases: 2_000_000,
        }
    }
}

/// The outcome of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Valid by a syntactic law; no enumeration needed.
    ValidSyntactic {
        /// The law that matched, e.g. `"prefix-reflexivity"`.
        law: &'static str,
    },
    /// Valid in every enumerated case.
    ValidBounded {
        /// Number of (history, valuation) cases checked.
        cases: usize,
    },
    /// A counterexample was found.
    Refuted {
        /// A history falsifying the formula.
        history: History,
        /// The variable valuation in force.
        env: Env,
    },
    /// The check could not complete (case-count cap exceeded, or an
    /// evaluation error such as an unregistered function).
    Unknown {
        /// Why the check gave up.
        reason: String,
    },
}

impl Decision {
    /// True for either form of validity.
    pub fn is_valid(&self) -> bool {
        matches!(
            self,
            Decision::ValidSyntactic { .. } | Decision::ValidBounded { .. }
        )
    }
}

/// Decides whether `a` holds for **all** channel histories and all values
/// of its free variables — the reading the paper gives pure premises
/// ("`T` has to be true for all possible sequences of values passing
/// along the channels", §3.3).
///
/// # Examples
///
/// ```
/// use csp_assert::{decide_valid, Assertion, DecideConfig, FuncTable, STerm};
/// use csp_semantics::Universe;
///
/// let uni = Universe::new(1);
/// let funcs = FuncTable::with_builtins();
/// // wire ≤ wire: valid syntactically.
/// let refl = Assertion::prefix(STerm::chan("wire"), STerm::chan("wire"));
/// assert!(decide_valid(&refl, &uni, &funcs, DecideConfig::default()).is_valid());
/// // wire ≤ input: refutable.
/// let wrong = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
/// let d = decide_valid(&wrong, &uni, &funcs, DecideConfig::default());
/// assert!(!d.is_valid());
/// ```
pub fn decide_valid(
    a: &Assertion,
    universe: &Universe,
    funcs: &FuncTable,
    config: DecideConfig,
) -> Decision {
    if let Some(law) = syntactic_valid(a) {
        return Decision::ValidSyntactic { law };
    }
    bounded_valid(a, universe, funcs, config)
}

/// The syntactic laws. Returns the law name on a match.
pub fn syntactic_valid(a: &Assertion) -> Option<&'static str> {
    match a {
        Assertion::True => Some("truth"),
        Assertion::Prefix(s, t) if s == t => Some("prefix-reflexivity"),
        Assertion::Prefix(STerm::Empty, _) => Some("empty-least"),
        Assertion::SeqEq(s, t) if s == t => Some("seq-eq-reflexivity"),
        Assertion::And(p, q) => {
            syntactic_valid(p)?;
            syntactic_valid(q)?;
            Some("conjunction")
        }
        Assertion::Implies(p, q) => {
            if syntactic_valid(q).is_some() {
                return Some("implication-of-valid");
            }
            // cons-monotonicity: (s ≤ t) ⇒ (x^s ≤ x^t).
            if let (Assertion::Prefix(s, t), Assertion::Prefix(s2, t2)) = (p.as_ref(), q.as_ref()) {
                if let (STerm::Cons(x1, s1), STerm::Cons(x2, t1)) = (s2, t2) {
                    if x1 == x2 && s1.as_ref() == s && t1.as_ref() == t {
                        return Some("cons-monotonicity");
                    }
                }
                // prefix-transitivity: (s ≤ t) ⇒ (r ≤ t) when r ≤ s is
                // itself one of the conjuncts — handled by the bounded
                // checker in general; only the degenerate r == s case is
                // syntactic:
                if s2 == s && t2 == t {
                    return Some("implication-reflexivity");
                }
            }
            None
        }
        // A universally quantified valid body is valid; report the body's
        // law so callers see the substantive step (e.g. the copier proof's
        // cons-monotonicity, which the checker wraps in its binders).
        Assertion::ForallIn(_, _, body) => syntactic_valid(body),
        _ => None,
    }
}

/// Exhaustive evaluation over bounded histories and valuations.
fn bounded_valid(
    a: &Assertion,
    universe: &Universe,
    funcs: &FuncTable,
    config: DecideConfig,
) -> Decision {
    // The channels mentioned. Channel subscripts must be closed here;
    // pure premises in the paper's proofs always use concrete channels.
    let mut channels: Vec<Channel> = Vec::new();
    for c in a.channels() {
        match c.resolve(&Env::new()) {
            Ok(ch) => {
                if !channels.contains(&ch) {
                    channels.push(ch);
                }
            }
            Err(e) => {
                return Decision::Unknown {
                    reason: format!("channel subscript not closed: {e}"),
                }
            }
        }
    }
    let vars = free_vars(a);

    // The value alphabet: the universe's naturals plus the signal atoms
    // any registered history could carry. We use the naturals and the two
    // protocol signals; richer alphabets can be injected via named sets in
    // the universe (resolved below if a set named "_alphabet" exists).
    let mut alphabet: Vec<Value> = (0..=universe.nat_bound()).map(Value::nat).collect();
    alphabet.push(Value::sym("ACK"));
    alphabet.push(Value::sym("NACK"));
    if let Some(extra) = universe.resolve_named("_alphabet") {
        for v in extra {
            if !alphabet.contains(v) {
                alphabet.push(v.clone());
            }
        }
    }

    // Enumerate sequences up to the length bound, adaptively shrinking
    // the bound when the full case count would exceed the cap — a
    // shallower exhaustive check beats giving up (callers see the bound
    // actually used through the reported case count).
    let mut history_len = config.max_history_len;
    let seqs = loop {
        let seqs = all_seqs(&alphabet, history_len);
        let cases = seqs
            .len()
            .checked_pow(channels.len() as u32)
            .and_then(|h| h.checked_mul(alphabet.len().checked_pow(vars.len() as u32)?));
        match cases {
            Some(n) if n <= config.max_cases => break seqs,
            _ if history_len > 1 => history_len -= 1,
            _ => {
                return Decision::Unknown {
                    reason: format!(
                        "case count exceeds cap even at history length 1 \
                         ({} channels, {} vars)",
                        channels.len(),
                        vars.len()
                    ),
                }
            }
        }
    };

    let mut checked = 0usize;
    let mut hist_choice = vec![0usize; channels.len()];
    loop {
        // Build the history for this choice vector.
        let mut history = History::empty();
        for (ci, c) in channels.iter().enumerate() {
            history.set(c.clone(), seqs[hist_choice[ci]].clone());
        }

        // Enumerate variable valuations.
        let mut var_choice = vec![0usize; vars.len()];
        loop {
            let mut env = Env::new();
            for (vi, v) in vars.iter().enumerate() {
                env.bind_mut(v, alphabet[var_choice[vi]].clone());
            }
            let ctx = EvalCtx::new(&env, &history, funcs, universe);
            match ctx.assertion(a) {
                Ok(true) => {}
                Ok(false) => {
                    return Decision::Refuted { history, env };
                }
                Err(e) => {
                    return Decision::Unknown {
                        reason: format!("evaluation failed: {e}"),
                    }
                }
            }
            checked += 1;
            if !bump(&mut var_choice, alphabet.len()) {
                break;
            }
        }
        if !bump(&mut hist_choice, seqs.len()) {
            break;
        }
    }
    Decision::ValidBounded { cases: checked }
}

/// All sequences over `alphabet` of length ≤ `max_len`, shortest first.
fn all_seqs(alphabet: &[Value], max_len: usize) -> Vec<Seq<Value>> {
    let mut out = vec![Seq::empty()];
    let mut frontier = vec![Seq::empty()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &frontier {
            for v in alphabet {
                let ext = s.snoc(v.clone());
                next.push(ext.clone());
                out.push(ext);
            }
        }
        frontier = next;
    }
    out
}

/// Odometer increment; returns false on wrap-around (i.e. done). An empty
/// choice vector runs exactly once.
fn bump(choice: &mut [usize], base: usize) -> bool {
    for slot in choice.iter_mut() {
        *slot += 1;
        if *slot < base {
            return true;
        }
        *slot = 0;
    }
    false
}

/// The free value variables of an assertion (quantifier-bound ones
/// excluded).
pub fn free_vars(a: &Assertion) -> Vec<String> {
    let mut out = Vec::new();
    collect_free(a, &mut Vec::new(), &mut out);
    out
}

fn collect_free(a: &Assertion, bound: &mut Vec<String>, out: &mut Vec<String>) {
    match a {
        Assertion::True | Assertion::False => {}
        Assertion::Prefix(s, t) | Assertion::SeqEq(s, t) => {
            sterm_vars(s, bound, out);
            sterm_vars(t, bound, out);
        }
        Assertion::Cmp(_, x, y) => {
            term_vars(x, bound, out);
            term_vars(y, bound, out);
        }
        Assertion::Not(inner) => collect_free(inner, bound, out),
        Assertion::And(p, q) | Assertion::Or(p, q) | Assertion::Implies(p, q) => {
            collect_free(p, bound, out);
            collect_free(q, bound, out);
        }
        Assertion::ForallIn(x, m, body) | Assertion::ExistsIn(x, m, body) => {
            set_vars(m, bound, out);
            bound.push(x.clone());
            collect_free(body, bound, out);
            bound.pop();
        }
    }
}

fn sterm_vars(s: &STerm, bound: &[String], out: &mut Vec<String>) {
    match s {
        STerm::Hist(c) => {
            for e in c.indices() {
                expr_vars(e, bound, out);
            }
        }
        STerm::Empty => {}
        STerm::Lit(ts) => {
            for t in ts {
                term_vars(t, bound, out);
            }
        }
        STerm::Cons(h, t) => {
            term_vars(h, bound, out);
            sterm_vars(t, bound, out);
        }
        STerm::Concat(a, b) => {
            sterm_vars(a, bound, out);
            sterm_vars(b, bound, out);
        }
        STerm::App(_, arg) => sterm_vars(arg, bound, out),
    }
}

fn term_vars(t: &crate::Term, bound: &[String], out: &mut Vec<String>) {
    match t {
        crate::Term::Expr(e) => expr_vars(e, bound, out),
        crate::Term::Length(s) => sterm_vars(s, bound, out),
        crate::Term::Index(s, i) => {
            sterm_vars(s, bound, out);
            term_vars(i, bound, out);
        }
        crate::Term::Bin(_, a, b) => {
            term_vars(a, bound, out);
            term_vars(b, bound, out);
        }
        crate::Term::Un(_, a) => term_vars(a, bound, out),
    }
}

fn set_vars(m: &csp_lang::SetExpr, bound: &[String], out: &mut Vec<String>) {
    match m {
        csp_lang::SetExpr::Nat | csp_lang::SetExpr::Named(_) => {}
        csp_lang::SetExpr::Range(lo, hi) => {
            expr_vars(lo, bound, out);
            expr_vars(hi, bound, out);
        }
        csp_lang::SetExpr::Enum(es) => {
            for e in es {
                expr_vars(e, bound, out);
            }
        }
    }
}

fn expr_vars(e: &csp_lang::Expr, bound: &[String], out: &mut Vec<String>) {
    for v in csp_lang::free_vars_expr(e) {
        if !bound.contains(&v) && !out.contains(&v) {
            out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Term};

    fn setup() -> (Universe, FuncTable) {
        (Universe::new(1), FuncTable::with_builtins())
    }

    #[test]
    fn reflexivity_is_syntactic() {
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("wire"));
        assert_eq!(
            decide_valid(&r, &u, &f, DecideConfig::default()),
            Decision::ValidSyntactic {
                law: "prefix-reflexivity"
            }
        );
    }

    #[test]
    fn empty_is_least_syntactically() {
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::Empty, STerm::chan("input"));
        assert!(matches!(
            decide_valid(&r, &u, &f, DecideConfig::default()),
            Decision::ValidSyntactic { law: "empty-least" }
        ));
    }

    #[test]
    fn cons_monotonicity_is_syntactic() {
        // (wire ≤ input) ⇒ (x^wire ≤ x^input) — the consequence example
        // of §2.1(2).
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input")).implies(
            Assertion::prefix(
                STerm::chan("wire").cons(Term::var("x")),
                STerm::chan("input").cons(Term::var("x")),
            ),
        );
        assert!(matches!(
            decide_valid(&r, &u, &f, DecideConfig::default()),
            Decision::ValidSyntactic {
                law: "cons-monotonicity"
            }
        ));
    }

    #[test]
    fn transitivity_is_bounded_checked() {
        // (a ≤ b and b ≤ c) ⇒ a ≤ c — used in the protocol proof
        // ("trans ≤").
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::chan("a"), STerm::chan("b"))
            .and(Assertion::prefix(STerm::chan("b"), STerm::chan("c")))
            .implies(Assertion::prefix(STerm::chan("a"), STerm::chan("c")));
        let cfg = DecideConfig {
            max_history_len: 2,
            ..DecideConfig::default()
        };
        match decide_valid(&r, &u, &f, cfg) {
            Decision::ValidBounded { cases } => assert!(cases > 0),
            other => panic!("expected bounded validity, got {other:?}"),
        }
    }

    #[test]
    fn invalid_formulas_are_refuted_with_witness() {
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        match decide_valid(&r, &u, &f, DecideConfig::default()) {
            Decision::Refuted { history, .. } => {
                // The witness really falsifies the formula.
                let env = Env::new();
                let ctx = EvalCtx::new(&env, &history, &f, &u);
                assert!(!ctx.assertion(&r).unwrap());
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn f_definition_facts_check_bounded() {
        // f(<>) ≤ <> — the R_<> premise of the sender proof.
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::Empty.app("f"), STerm::Empty);
        match decide_valid(&r, &u, &f, DecideConfig::default()) {
            Decision::ValidBounded { .. } => {}
            other => panic!("expected bounded validity, got {other:?}"),
        }
        // f(ACK^wire) == f(wire): cancellation law.
        let law = Assertion::SeqEq(
            STerm::chan("wire").cons(Term::sym("ACK")).app("f"),
            STerm::chan("wire").app("f"),
        );
        assert!(decide_valid(&law, &u, &f, DecideConfig::default()).is_valid());
    }

    #[test]
    fn free_variables_are_universally_quantified() {
        let (u, f) = setup();
        // x == x is valid for all x.
        let r = Assertion::Cmp(CmpOp::Eq, Term::var("x"), Term::var("x"));
        assert!(decide_valid(&r, &u, &f, DecideConfig::default()).is_valid());
        // x == 0 is refuted (x = 1 is a counterexample).
        let r2 = Assertion::Cmp(CmpOp::Eq, Term::var("x"), Term::int(0));
        assert!(!decide_valid(&r2, &u, &f, DecideConfig::default()).is_valid());
    }

    #[test]
    fn case_cap_reports_unknown() {
        let (u, f) = setup();
        let r = Assertion::prefix(STerm::chan("a"), STerm::chan("b"))
            .and(Assertion::prefix(STerm::chan("c"), STerm::chan("d")))
            .and(Assertion::prefix(STerm::chan("e"), STerm::chan("g")));
        let cfg = DecideConfig {
            max_history_len: 3,
            max_cases: 10,
        };
        assert!(matches!(
            decide_valid(&r, &u, &f, cfg),
            Decision::Unknown { .. }
        ));
    }

    #[test]
    fn free_vars_respects_quantifiers() {
        let r = Assertion::ForallIn(
            "i".into(),
            csp_lang::SetExpr::Nat,
            Box::new(Assertion::Cmp(CmpOp::Le, Term::var("i"), Term::var("n"))),
        );
        assert_eq!(free_vars(&r), vec!["n".to_string()]);
    }
}
