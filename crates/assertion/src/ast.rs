//! Abstract syntax of assertions.
//!
//! §2: "An assertion is a predicate with free channel names, each of which
//! stands for the sequence of values which have been communicated along
//! that channel up to some moment in time." The paper's assertion
//! vocabulary is:
//!
//! * channel histories (`wire`, `input`, `col[0]`),
//! * the sequence operators `x^s` (cons), `#s` (length), `s_i` (1-based
//!   indexing), prefix `s ≤ t`, and user functions like the protocol's
//!   cancellation function `f`,
//! * arithmetic and comparisons on message values,
//! * the connectives and bounded quantifiers `∀x:M. R`.

use std::fmt;

use csp_lang::{BinOp, ChanRef, Expr, SetExpr, UnOp};

/// A sequence-valued term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum STerm {
    /// The history of a channel — a free channel name of the assertion.
    Hist(ChanRef),
    /// The empty sequence `<>`.
    Empty,
    /// A literal sequence `<e₁, …, eₙ>`.
    Lit(Vec<Term>),
    /// `x^s` — cons.
    Cons(Box<Term>, Box<STerm>),
    /// Concatenation `s ++ t` (written `st` in the paper).
    Concat(Box<STerm>, Box<STerm>),
    /// Application of a named sequence function, e.g. `f(wire)` in §2.2.
    /// Functions are supplied by a [`FuncTable`](crate::FuncTable).
    App(String, Box<STerm>),
}

impl STerm {
    /// The history of an unsubscripted channel.
    pub fn chan(name: &str) -> STerm {
        STerm::Hist(ChanRef::simple(name))
    }

    /// The history of a singly-subscripted channel, e.g. `col[0]`.
    pub fn chan_at(name: &str, index: Expr) -> STerm {
        STerm::Hist(ChanRef::indexed(name, index))
    }

    /// `x^self`.
    pub fn cons(self, x: Term) -> STerm {
        STerm::Cons(Box::new(x), Box::new(self))
    }

    /// `name(self)`.
    pub fn app(self, name: &str) -> STerm {
        STerm::App(name.to_string(), Box::new(self))
    }

    /// All channel references appearing in the term.
    pub fn channels(&self) -> Vec<&ChanRef> {
        let mut out = Vec::new();
        self.collect_channels(&mut out);
        out
    }

    fn collect_channels<'a>(&'a self, out: &mut Vec<&'a ChanRef>) {
        match self {
            STerm::Hist(c) => out.push(c),
            STerm::Empty => {}
            STerm::Lit(ts) => {
                for t in ts {
                    t.collect_channels(out);
                }
            }
            STerm::Cons(t, s) => {
                t.collect_channels(out);
                s.collect_channels(out);
            }
            STerm::Concat(a, b) => {
                a.collect_channels(out);
                b.collect_channels(out);
            }
            STerm::App(_, s) => s.collect_channels(out),
        }
    }
}

/// A value-valued term: ordinary expressions extended with the
/// sequence-dependent operators `#s` and `s_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// An embedded value expression (constants, variables, arithmetic on
    /// them).
    Expr(Expr),
    /// `#s` — the length of a sequence.
    Length(Box<STerm>),
    /// `s_i` — the `i`th message (1-based). Indexing out of range makes
    /// the enclosing atomic formula false rather than erroring, matching
    /// the paper's guarded usage `1 ≤ i ≤ #s ⇒ …`.
    Index(Box<STerm>, Box<Term>),
    /// Arithmetic/comparison on terms (needed because `#s` may appear as
    /// an operand, e.g. `#input ≤ #wire + 1`).
    Bin(BinOp, Box<Term>, Box<Term>),
    /// Unary operator.
    Un(UnOp, Box<Term>),
}

impl Term {
    /// An integer literal.
    pub fn int(n: i64) -> Term {
        Term::Expr(Expr::int(n))
    }

    /// A variable.
    pub fn var(name: &str) -> Term {
        Term::Expr(Expr::var(name))
    }

    /// A symbolic atom such as `ACK`.
    pub fn sym(name: &str) -> Term {
        Term::Expr(Expr::sym(name))
    }

    /// `#s`.
    pub fn length(s: STerm) -> Term {
        Term::Length(Box::new(s))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder, not arithmetic on Term values
    pub fn add(self, rhs: Term) -> Term {
        Term::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)] // associated fn, deliberate (C-OVERLOAD)
    /// `lhs * rhs`.
    pub fn mul(lhs: Term, rhs: Term) -> Term {
        Term::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    fn collect_channels<'a>(&'a self, out: &mut Vec<&'a ChanRef>) {
        match self {
            Term::Expr(_) => {}
            Term::Length(s) => s.collect_channels(out),
            Term::Index(s, i) => {
                s.collect_channels(out);
                i.collect_channels(out);
            }
            Term::Bin(_, a, b) => {
                a.collect_channels(out);
                b.collect_channels(out);
            }
            Term::Un(_, a) => a.collect_channels(out),
        }
    }
}

/// Comparison operators between value terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// An assertion — the `R` of `P sat R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assertion {
    /// The always-true assertion.
    True,
    /// The always-false assertion.
    False,
    /// Prefix order on sequences: `s ≤ t ⇔ ∃u. s⌢u = t` (§2).
    Prefix(STerm, STerm),
    /// Sequence equality.
    SeqEq(STerm, STerm),
    /// Comparison of value terms.
    Cmp(CmpOp, Term, Term),
    /// Negation.
    Not(Box<Assertion>),
    /// Conjunction `R & S`.
    And(Box<Assertion>, Box<Assertion>),
    /// Disjunction.
    Or(Box<Assertion>, Box<Assertion>),
    /// Implication `R ⇒ S`.
    Implies(Box<Assertion>, Box<Assertion>),
    /// Bounded universal quantification `∀x:M. R` (§3.3 gives its
    /// semantics).
    ForallIn(String, SetExpr, Box<Assertion>),
    /// Bounded existential quantification.
    ExistsIn(String, SetExpr, Box<Assertion>),
}

impl Assertion {
    /// `s ≤ t` on two sequence terms.
    pub fn prefix(s: STerm, t: STerm) -> Assertion {
        Assertion::Prefix(s, t)
    }

    /// `self & other`.
    pub fn and(self, other: Assertion) -> Assertion {
        Assertion::And(Box::new(self), Box::new(other))
    }

    /// `self or other`.
    pub fn or(self, other: Assertion) -> Assertion {
        Assertion::Or(Box::new(self), Box::new(other))
    }

    /// `self ⇒ other`.
    pub fn implies(self, other: Assertion) -> Assertion {
        Assertion::Implies(Box::new(self), Box::new(other))
    }

    /// `not self`.
    pub fn negate(self) -> Assertion {
        Assertion::Not(Box::new(self))
    }

    /// All channel references mentioned anywhere in the assertion — the
    /// "free channel names" whose occurrence conditions the parallelism
    /// and hiding rules check.
    pub fn channels(&self) -> Vec<&ChanRef> {
        let mut out = Vec::new();
        self.collect_channels(&mut out);
        out
    }

    /// The base names of all mentioned channels, deduplicated.
    pub fn channel_bases(&self) -> std::collections::BTreeSet<String> {
        self.channels()
            .into_iter()
            .map(|c| c.base().to_string())
            .collect()
    }

    fn collect_channels<'a>(&'a self, out: &mut Vec<&'a ChanRef>) {
        match self {
            Assertion::True | Assertion::False => {}
            Assertion::Prefix(a, b) | Assertion::SeqEq(a, b) => {
                a.collect_channels(out);
                b.collect_channels(out);
            }
            Assertion::Cmp(_, a, b) => {
                a.collect_channels(out);
                b.collect_channels(out);
            }
            Assertion::Not(a) => a.collect_channels(out),
            Assertion::And(a, b) | Assertion::Or(a, b) | Assertion::Implies(a, b) => {
                a.collect_channels(out);
                b.collect_channels(out);
            }
            Assertion::ForallIn(_, _, a) | Assertion::ExistsIn(_, _, a) => a.collect_channels(out),
        }
    }
}

// ------------------------------------------------------------- display --

impl fmt::Display for STerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STerm::Hist(c) => write!(f, "{c}"),
            STerm::Empty => write!(f, "<>"),
            STerm::Lit(ts) => {
                write!(f, "<")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ">")
            }
            STerm::Cons(x, s) => write!(f, "{x}^{s}"),
            // `^` parses tighter on its left than `++`, so a cons operand
            // of a concatenation needs its own brackets to round-trip.
            STerm::Concat(a, b) => {
                write!(f, "(")?;
                match a.as_ref() {
                    STerm::Cons(_, _) => write!(f, "({a})")?,
                    _ => write!(f, "{a}")?,
                }
                write!(f, " ++ ")?;
                match b.as_ref() {
                    STerm::Cons(_, _) => write!(f, "({b})")?,
                    _ => write!(f, "{b}")?,
                }
                write!(f, ")")
            }
            STerm::App(name, s) => write!(f, "{name}({s})"),
        }
    }
}

/// Cons renders without brackets (`x^s`), so it must be wrapped when it
/// appears under an operator that binds tighter (`#`, indexing); the
/// other sequence forms carry their own delimiters.
fn needs_parens(s: &STerm) -> bool {
    matches!(s, STerm::Cons(_, _))
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Expr(e) => write!(f, "{e}"),
            Term::Length(s) if needs_parens(s) => write!(f, "#({s})"),
            Term::Length(s) => write!(f, "#{s}"),
            Term::Index(s, i) if needs_parens(s) => write!(f, "({s})[{i}]"),
            Term::Index(s, i) => write!(f, "{s}[{i}]"),
            Term::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Term::Un(UnOp::Neg, a) => write!(f, "(-{a})"),
            Term::Un(UnOp::Not, a) => write!(f, "(not {a})"),
        }
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assertion::True => write!(f, "true"),
            Assertion::False => write!(f, "false"),
            Assertion::Prefix(a, b) => write!(f, "{a} <= {b}"),
            Assertion::SeqEq(a, b) => write!(f, "{a} == {b}"),
            Assertion::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Assertion::Not(a) => write!(f, "not ({a})"),
            Assertion::And(a, b) => write!(f, "({a} and {b})"),
            Assertion::Or(a, b) => write!(f, "({a} or {b})"),
            Assertion::Implies(a, b) => write!(f, "({a} => {b})"),
            Assertion::ForallIn(x, m, a) => write!(f, "forall {x}:{m}. ({a})"),
            Assertion::ExistsIn(x, m, a) => write!(f, "exists {x}:{m}. ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_assertion_wire_le_input() {
        let r = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
        assert_eq!(r.to_string(), "wire <= input");
        let bases = r.channel_bases();
        assert!(bases.contains("wire") && bases.contains("input"));
    }

    #[test]
    fn paper_assertion_length_bound() {
        // copier sat (#input ≤ #wire + 1)
        let r = Assertion::Cmp(
            CmpOp::Le,
            Term::length(STerm::chan("input")),
            Term::length(STerm::chan("wire")).add(Term::int(1)),
        );
        assert_eq!(r.to_string(), "#input <= (#wire + 1)");
    }

    #[test]
    fn protocol_assertion_displays() {
        // f(wire) ≤ input
        let r = Assertion::prefix(STerm::chan("wire").app("f"), STerm::chan("input"));
        assert_eq!(r.to_string(), "f(wire) <= input");
        // f(wire) ≤ x^input
        let r2 = Assertion::prefix(
            STerm::chan("wire").app("f"),
            STerm::chan("input").cons(Term::var("x")),
        );
        assert_eq!(r2.to_string(), "f(wire) <= x^input");
    }

    #[test]
    fn channels_collects_through_all_layers() {
        let r = Assertion::ForallIn(
            "i".into(),
            SetExpr::Nat,
            Box::new(Assertion::Cmp(
                CmpOp::Eq,
                Term::Index(Box::new(STerm::chan("output")), Box::new(Term::var("i"))),
                Term::Index(
                    Box::new(STerm::chan_at("row", Expr::int(1))),
                    Box::new(Term::var("i")),
                ),
            )),
        );
        let bases = r.channel_bases();
        assert_eq!(bases.len(), 2);
        assert!(bases.contains("output") && bases.contains("row"));
    }

    #[test]
    fn builders_nest() {
        let r = Assertion::True
            .and(Assertion::False.or(Assertion::True))
            .implies(Assertion::True);
        assert_eq!(r.to_string(), "((true and (false or true)) => true)");
    }
}
