//! # csp-assert
//!
//! The assertion language of Zhou & Hoare (1981) §2: predicates whose
//! free channel names denote the sequences of values communicated so far.
//!
//! * [`Assertion`], [`Term`], [`STerm`] — the abstract syntax, covering
//!   everything the paper uses: the prefix order `s ≤ t`, cons `x^s`,
//!   length `#s`, 1-based indexing `s_i`, named sequence functions such
//!   as the protocol's `f`, connectives, and bounded quantifiers;
//! * [`parse_assertion`] — a parser for the concrete syntax
//!   (`"f(wire) <= x^input"`);
//! * [`EvalCtx`] — evaluation in `(ρ + ch(s))`, §3.3;
//! * [`subst_empty`], [`subst_chan_cons`], [`subst_var`] — the
//!   substitutions `R_<>`, `R^c_{e^c}`, `R^x_e` that the inference rules
//!   of §2.1 are built from;
//! * [`decide_valid`] — a validity oracle for pure premises, combining a
//!   syntactic prover for the laws the paper's proofs use with a bounded
//!   exhaustive checker;
//! * [`FuncTable`]/[`protocol_cancel`] — the paper's cancellation
//!   function `f` and a registry for user functions.
//!
//! ```
//! use csp_assert::{parse_assertion, ChannelInfo, EvalCtx, FuncTable};
//! use csp_lang::Env;
//! use csp_semantics::Universe;
//! use csp_trace::{Trace, Value};
//!
//! let info = ChannelInfo::new().with_channels(["wire", "input"]);
//! let r = parse_assertion("wire <= input", &info).unwrap();
//! let t = Trace::parse_like([("input", Value::nat(3)), ("wire", Value::nat(3))]);
//! let (env, h) = (Env::new(), t.history());
//! let (funcs, uni) = (FuncTable::with_builtins(), Universe::small());
//! assert!(EvalCtx::new(&env, &h, &funcs, &uni).assertion(&r).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod decide;
mod eval;
mod funcs;
mod parser;
mod simplify;
mod subst;

pub use ast::{Assertion, CmpOp, STerm, Term};
pub use decide::{decide_valid, free_vars, syntactic_valid, DecideConfig, Decision};
pub use eval::{AssertError, EvalCtx};
pub use funcs::{protocol_cancel, FuncTable, SeqFn};
pub use parser::{parse_assertion, AssertParseError, ChannelInfo};
pub use simplify::simplify;
pub use subst::{subst_chan_cons, subst_empty, subst_var};
