//! Assertion simplification: constant folding and the evident sequence
//! laws, used to keep rendered proof obligations readable and to give
//! the validity oracle smaller inputs.
//!
//! Simplification is *sound in both directions* — the result is
//! logically equivalent to the input in every environment — and
//! idempotent (tested). It performs:
//!
//! * boolean constant folding (`true and R → R`, `false ⇒ R → true`,
//!   `not not R → R`, …),
//! * sequence laws (`<> ≤ s → true`, `s ≤ s → true`, `s == s → true`,
//!   `#<e₁…eₙ> → n` for rigid literals),
//! * rigid-comparison folding: a comparison whose operands contain no
//!   channels and no variables is evaluated outright,
//! * vacuous-quantifier elimination (`∀x:M. true → true`).

use csp_lang::Env;
use csp_semantics::Universe;
use csp_trace::History;

use crate::{Assertion, EvalCtx, FuncTable, STerm, Term};

/// Simplifies an assertion to an equivalent, usually smaller one.
///
/// # Examples
///
/// ```
/// use csp_assert::{simplify, Assertion, STerm};
///
/// let r = Assertion::True.and(Assertion::prefix(STerm::Empty, STerm::chan("wire")));
/// assert_eq!(simplify(&r), Assertion::True);
///
/// let keep = Assertion::prefix(STerm::chan("wire"), STerm::chan("input"));
/// assert_eq!(simplify(&keep), keep);
/// ```
pub fn simplify(a: &Assertion) -> Assertion {
    match a {
        Assertion::True | Assertion::False => a.clone(),
        Assertion::Prefix(s, t) => {
            let (s, t) = (simplify_sterm(s), simplify_sterm(t));
            if s == STerm::Empty || s == t {
                Assertion::True
            } else {
                Assertion::Prefix(s, t)
            }
        }
        Assertion::SeqEq(s, t) => {
            let (s, t) = (simplify_sterm(s), simplify_sterm(t));
            if s == t {
                Assertion::True
            } else {
                Assertion::SeqEq(s, t)
            }
        }
        Assertion::Cmp(op, x, y) => {
            let (x, y) = (simplify_term(x), simplify_term(y));
            let folded = Assertion::Cmp(*op, x, y);
            match fold_rigid(&folded) {
                Some(b) => {
                    if b {
                        Assertion::True
                    } else {
                        Assertion::False
                    }
                }
                None => folded,
            }
        }
        Assertion::Not(inner) => match simplify(inner) {
            Assertion::True => Assertion::False,
            Assertion::False => Assertion::True,
            Assertion::Not(inner2) => *inner2,
            other => Assertion::Not(Box::new(other)),
        },
        Assertion::And(p, q) => match (simplify(p), simplify(q)) {
            (Assertion::True, r) | (r, Assertion::True) => r,
            (Assertion::False, _) | (_, Assertion::False) => Assertion::False,
            (p, q) if p == q => p,
            (p, q) => p.and(q),
        },
        Assertion::Or(p, q) => match (simplify(p), simplify(q)) {
            (Assertion::False, r) | (r, Assertion::False) => r,
            (Assertion::True, _) | (_, Assertion::True) => Assertion::True,
            (p, q) if p == q => p,
            (p, q) => p.or(q),
        },
        Assertion::Implies(p, q) => match (simplify(p), simplify(q)) {
            (Assertion::False, _) | (_, Assertion::True) => Assertion::True,
            (Assertion::True, r) => r,
            (p, q) if p == q => Assertion::True,
            (p, q) => p.implies(q),
        },
        Assertion::ForallIn(x, m, body) => match simplify(body) {
            Assertion::True => Assertion::True,
            other => Assertion::ForallIn(x.clone(), m.clone(), Box::new(other)),
        },
        Assertion::ExistsIn(x, m, body) => match simplify(body) {
            Assertion::False => Assertion::False,
            other => Assertion::ExistsIn(x.clone(), m.clone(), Box::new(other)),
        },
    }
}

fn simplify_sterm(s: &STerm) -> STerm {
    match s {
        STerm::Hist(_) | STerm::Empty => s.clone(),
        STerm::Lit(ts) => STerm::Lit(ts.iter().map(simplify_term).collect()),
        STerm::Cons(x, rest) => {
            STerm::Cons(Box::new(simplify_term(x)), Box::new(simplify_sterm(rest)))
        }
        STerm::Concat(a, b) => {
            let (a, b) = (simplify_sterm(a), simplify_sterm(b));
            match (a, b) {
                (STerm::Empty, r) | (r, STerm::Empty) => r,
                (a, b) => STerm::Concat(Box::new(a), Box::new(b)),
            }
        }
        STerm::App(name, arg) => STerm::App(name.clone(), Box::new(simplify_sterm(arg))),
    }
}

fn simplify_term(t: &Term) -> Term {
    match t {
        Term::Expr(_) => t.clone(),
        Term::Length(s) => {
            let s = simplify_sterm(s);
            match &s {
                STerm::Empty => Term::int(0),
                STerm::Lit(ts) => Term::int(ts.len() as i64),
                _ => Term::Length(Box::new(s)),
            }
        }
        Term::Index(s, i) => Term::Index(Box::new(simplify_sterm(s)), Box::new(simplify_term(i))),
        Term::Bin(op, a, b) => {
            Term::Bin(*op, Box::new(simplify_term(a)), Box::new(simplify_term(b)))
        }
        Term::Un(op, a) => Term::Un(*op, Box::new(simplify_term(a))),
    }
}

/// Evaluates a comparison outright when it is *rigid*: no channels, no
/// free variables, no function applications whose argument could vary.
fn fold_rigid(a: &Assertion) -> Option<bool> {
    if !a.channels().is_empty() || !crate::free_vars(a).is_empty() {
        return None;
    }
    let env = Env::new();
    let history = History::empty();
    let funcs = FuncTable::with_builtins();
    let uni = Universe::new(0);
    EvalCtx::new(&env, &history, &funcs, &uni).assertion(a).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;
    use csp_lang::Env;
    use csp_trace::{Trace, Value};

    fn eval(a: &Assertion, trace: &[(&'static str, u32)]) -> bool {
        let t = Trace::parse_like(trace.iter().map(|&(c, n)| (c, Value::nat(n))));
        let env = Env::new().bind("x", Value::nat(1));
        let h = t.history();
        let funcs = FuncTable::with_builtins();
        let uni = Universe::new(2);
        EvalCtx::new(&env, &h, &funcs, &uni).assertion(a).unwrap()
    }

    #[test]
    fn boolean_folding() {
        let r = Assertion::prefix(STerm::chan("a"), STerm::chan("b"));
        assert_eq!(simplify(&Assertion::True.and(r.clone())), r);
        assert_eq!(simplify(&Assertion::False.and(r.clone())), Assertion::False);
        assert_eq!(simplify(&Assertion::False.or(r.clone())), r);
        assert_eq!(
            simplify(&Assertion::False.implies(r.clone())),
            Assertion::True
        );
        assert_eq!(simplify(&r.clone().negate().negate()), r);
        assert_eq!(simplify(&r.clone().implies(r.clone())), Assertion::True);
    }

    #[test]
    fn sequence_laws() {
        assert_eq!(
            simplify(&Assertion::prefix(STerm::Empty, STerm::chan("a"))),
            Assertion::True
        );
        assert_eq!(
            simplify(&Assertion::prefix(STerm::chan("a"), STerm::chan("a"))),
            Assertion::True
        );
        // #<1,2> folds to 2; the whole comparison folds to true.
        let r = Assertion::Cmp(
            CmpOp::Le,
            Term::length(STerm::Lit(vec![Term::int(1), Term::int(2)])),
            Term::int(2),
        );
        assert_eq!(simplify(&r), Assertion::True);
        // <> ++ s collapses.
        let c = Assertion::SeqEq(
            STerm::Concat(Box::new(STerm::Empty), Box::new(STerm::chan("a"))),
            STerm::chan("a"),
        );
        assert_eq!(simplify(&c), Assertion::True);
    }

    #[test]
    fn rigid_comparisons_fold() {
        let r = Assertion::Cmp(CmpOp::Lt, Term::int(1), Term::int(2));
        assert_eq!(simplify(&r), Assertion::True);
        let r = Assertion::Cmp(CmpOp::Gt, Term::int(1), Term::int(2));
        assert_eq!(simplify(&r), Assertion::False);
        // Non-rigid comparisons stay.
        let keep = Assertion::Cmp(CmpOp::Le, Term::length(STerm::chan("a")), Term::int(2));
        assert_eq!(simplify(&keep), keep);
    }

    #[test]
    fn quantifier_elimination() {
        let r = Assertion::ForallIn(
            "i".into(),
            csp_lang::SetExpr::Nat,
            Box::new(Assertion::prefix(STerm::chan("a"), STerm::chan("a"))),
        );
        assert_eq!(simplify(&r), Assertion::True);
    }

    #[test]
    fn simplification_preserves_meaning() {
        // Spot-check equivalence on a few histories for a compound
        // assertion that partially folds.
        let r = Assertion::True
            .and(Assertion::prefix(STerm::chan("wire"), STerm::chan("input")))
            .or(Assertion::Cmp(CmpOp::Lt, Term::int(2), Term::int(1)));
        let s = simplify(&r);
        for trace in [vec![], vec![("input", 1), ("wire", 1)], vec![("wire", 1)]] {
            assert_eq!(eval(&r, &trace), eval(&s, &trace), "{trace:?}");
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let r = Assertion::True
            .and(Assertion::prefix(STerm::Empty, STerm::chan("a")))
            .implies(Assertion::Cmp(
                CmpOp::Le,
                Term::length(STerm::chan("a")),
                Term::length(STerm::chan("b")).add(Term::int(1)),
            ));
        let once = simplify(&r);
        assert_eq!(simplify(&once), once);
    }
}
