//! Causal-edge-annotated Chrome trace exporter: one track (`tid`) per
//! component, one complete slice per communication on each participant's
//! track, and a *flow event* (`ph:"s"` → `ph:"f"`) from the sender's
//! slice to the receiver's slice so the viewer draws the causal arrow
//! between process tracks. Supervision events become instant events on
//! the affected component's track.
//!
//! Timestamps are synthetic — the committed event index in microseconds
//! — because the causal order, not wall time, is the semantic content.

use crate::{json_str, CausalEventKind, CausalLog};

/// Renders the log as a Chrome trace-event JSON document
/// (`{"traceEvents":[…]}`), loadable by `chrome://tracing` and Perfetto.
pub fn chrome_causal_trace(log: &CausalLog) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, label) in log.labels().iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"name\":{}}}}}",
            json_str(label)
        ));
    }
    for e in log.events() {
        let ts = e.seq * 1000;
        match &e.kind {
            CausalEventKind::Comm {
                event,
                sender,
                receiver,
                hidden,
            } => {
                let name = json_str(&event.to_string());
                for &p in &e.participants {
                    events.push(format!(
                        "{{\"name\":{name},\"ph\":\"X\",\"pid\":1,\"tid\":{p},\"ts\":{ts},\"dur\":800,\
                         \"args\":{{\"seq\":{},\"step\":{},\"clock\":{},\"hidden\":{}}}}}",
                        e.seq,
                        e.step,
                        json_str(&e.clock.to_string()),
                        hidden
                    ));
                }
                if let (Some(s), Some(r)) = (sender, receiver) {
                    if s != r {
                        events.push(format!(
                            "{{\"name\":{name},\"cat\":\"causal\",\"ph\":\"s\",\"id\":{},\"pid\":1,\"tid\":{s},\"ts\":{}}}",
                            e.seq,
                            ts + 100
                        ));
                        events.push(format!(
                            "{{\"name\":{name},\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":1,\"tid\":{r},\"ts\":{}}}",
                            e.seq,
                            ts + 700
                        ));
                    }
                }
            }
            other => {
                let p = e.participants.first().copied().unwrap_or(0);
                events.push(format!(
                    "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{p},\"ts\":{ts},\
                     \"args\":{{\"seq\":{},\"clock\":{}}}}}",
                    json_str(&other.label()),
                    e.seq,
                    json_str(&e.clock.to_string())
                ));
            }
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CausalEventKind, CausalLog, VectorClock};
    use csp_trace::{Channel, Event, Value};

    #[test]
    fn flow_events_link_sender_to_receiver() {
        let mut log = CausalLog::new(vec!["a".into(), "b".into()], 8);
        let mut p0 = VectorClock::new(2);
        p0.tick(0);
        let mut p1 = VectorClock::new(2);
        p1.tick(1);
        let mut merged = p0.clone();
        merged.merge(&p1);
        log.push(
            0,
            CausalEventKind::Comm {
                event: Event::new(Channel::simple("w"), Value::nat(3)),
                sender: Some(0),
                receiver: Some(1),
                hidden: false,
            },
            vec![0, 1],
            vec![p0, p1],
            merged,
        );
        let json = chrome_causal_trace(&log);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"clock\":\"[1,1]\""));
        // Two slices (one per participant track) for the one event.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }
}
