//! Message-sequence-chart exporters for a [`CausalLog`], plus a parser
//! for the Mermaid form so the causal order can be round-tripped.
//!
//! Two renderings:
//!
//! * [`render_mermaid`] — a Mermaid `sequenceDiagram` (paste into any
//!   Mermaid renderer). Communications become arrows between the sender
//!   and receiver lifelines (self-arrows for local events, dashed arrows
//!   for hidden channels); supervision events become `Note over` lines.
//!   Every line carries the merged vector clock, so [`parse_mermaid`]
//!   can rebuild the happens-before relation without the original log.
//! * [`render_text`] — a compact one-line-per-event text MSC for
//!   terminals and diffs.

use crate::{CausalEventKind, CausalLog, VectorClock};

/// Renders the log as a Mermaid `sequenceDiagram`.
pub fn render_mermaid(log: &CausalLog) -> String {
    let mut out = String::from("sequenceDiagram\n");
    for (i, label) in log.labels().iter().enumerate() {
        out.push_str(&format!("    participant P{i} as {label}\n"));
    }
    for e in log.events() {
        match &e.kind {
            CausalEventKind::Comm {
                event,
                sender,
                receiver,
                hidden,
            } => {
                let from = sender
                    .or_else(|| e.participants.first().copied())
                    .unwrap_or(0);
                let to = receiver
                    .or_else(|| e.participants.iter().copied().find(|&p| p != from))
                    .unwrap_or(from);
                let arrow = if *hidden { "-->>" } else { "->>" };
                out.push_str(&format!("    P{from}{arrow}P{to}: {event} @ {}\n", e.clock));
            }
            other => {
                let p = e.participants.first().copied().unwrap_or(0);
                out.push_str(&format!(
                    "    Note over P{p}: {} @ {}\n",
                    other.label(),
                    e.clock
                ));
            }
        }
    }
    out
}

/// Renders the log as a compact text MSC, one line per event:
/// `#seq [clock] label from->to` (or `from` alone for local events).
pub fn render_text(log: &CausalLog) -> String {
    let name = |i: usize| -> &str { log.labels().get(i).map(String::as_str).unwrap_or("?") };
    let mut out = String::new();
    if log.dropped() > 0 {
        out.push_str(&format!(
            "# causal log truncated: {} event(s) dropped at cap {}\n",
            log.dropped(),
            log.cap()
        ));
    }
    for e in log.events() {
        match &e.kind {
            CausalEventKind::Comm {
                event,
                sender,
                receiver,
                hidden,
            } => {
                let from = sender
                    .or_else(|| e.participants.first().copied())
                    .unwrap_or(0);
                let mark = if *hidden { "~" } else { "" };
                match receiver.or_else(|| e.participants.iter().copied().find(|&p| p != from)) {
                    Some(to) if to != from => out.push_str(&format!(
                        "#{} {} {mark}{event} {} -> {}\n",
                        e.seq,
                        e.clock,
                        name(from),
                        name(to)
                    )),
                    _ => out.push_str(&format!(
                        "#{} {} {mark}{event} {}\n",
                        e.seq,
                        e.clock,
                        name(from)
                    )),
                }
            }
            other => {
                let p = e.participants.first().copied().unwrap_or(0);
                out.push_str(&format!(
                    "#{} {} ! {} {}\n",
                    e.seq,
                    e.clock,
                    other.label(),
                    name(p)
                ));
            }
        }
    }
    out
}

/// One arrow of a parsed Mermaid MSC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MscArrow {
    /// Sending participant index (as declared order in the diagram).
    pub from: usize,
    /// Receiving participant index (equal to `from` for local events).
    pub to: usize,
    /// The event label (`channel.value` text).
    pub label: String,
    /// True iff the arrow was dashed (hidden channel).
    pub hidden: bool,
    /// The merged vector clock carried on the line.
    pub clock: VectorClock,
}

/// A Mermaid `sequenceDiagram` parsed back into structure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedMsc {
    /// Participant display names, in declaration order.
    pub participants: Vec<String>,
    /// Communication arrows, in diagram order.
    pub arrows: Vec<MscArrow>,
}

impl ParsedMsc {
    /// Happens-before edges `(i, j)` over the parsed arrows, computed
    /// purely from the carried vector clocks — comparable with
    /// [`CausalLog::comm_hb_edges`] on the log that produced the MSC.
    pub fn hb_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.arrows.len() {
            for j in 0..self.arrows.len() {
                if i != j
                    && matches!(
                        self.arrows[i].clock.partial_cmp(&self.arrows[j].clock),
                        Some(std::cmp::Ordering::Less)
                    )
                {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Parses the output of [`render_mermaid`]. `Note over` lines are
/// skipped (supervision events are not part of the depicted message
/// flow). Returns `None` on anything that is not a sequence diagram in
/// the dialect this module emits.
pub fn parse_mermaid(src: &str) -> Option<ParsedMsc> {
    let mut lines = src.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next()? != "sequenceDiagram" {
        return None;
    }
    let mut msc = ParsedMsc::default();
    for line in lines {
        if let Some(rest) = line.strip_prefix("participant ") {
            let (_, label) = rest.split_once(" as ")?;
            msc.participants.push(label.to_string());
            continue;
        }
        if line.starts_with("Note over ") {
            continue;
        }
        // Arrow lines: `P0->>P1: label @ [clock]` or dashed `-->>`.
        let (head, body) = line.split_once(": ")?;
        let (hidden, arrow) = if head.contains("-->>") {
            (true, "-->>")
        } else {
            (false, "->>")
        };
        let (from_s, to_s) = head.split_once(arrow)?;
        let from = from_s.strip_prefix('P')?.parse::<usize>().ok()?;
        let to = to_s.strip_prefix('P')?.parse::<usize>().ok()?;
        let (label, clock_s) = body.rsplit_once(" @ ")?;
        let clock = VectorClock::parse(clock_s)?;
        msc.arrows.push(MscArrow {
            from,
            to,
            label: label.to_string(),
            hidden,
            clock,
        });
    }
    Some(msc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CausalEventKind;
    use csp_trace::{Channel, Event, Value};

    fn two_proc_log() -> CausalLog {
        let mut log = CausalLog::new(vec!["src".into(), "sink".into()], 16);
        let mut c0 = VectorClock::new(2);
        c0.tick(0);
        log.push(
            0,
            CausalEventKind::Comm {
                event: Event::new(Channel::simple("in"), Value::nat(1)),
                sender: None,
                receiver: None,
                hidden: false,
            },
            vec![0],
            vec![c0.clone()],
            c0.clone(),
        );
        let mut p0 = c0.clone();
        p0.tick(0);
        let mut p1 = VectorClock::new(2);
        p1.tick(1);
        let mut merged = p0.clone();
        merged.merge(&p1);
        log.push(
            1,
            CausalEventKind::Comm {
                event: Event::new(Channel::simple("mid"), Value::nat(1)),
                sender: Some(0),
                receiver: Some(1),
                hidden: true,
            },
            vec![0, 1],
            vec![p0, p1],
            merged.clone(),
        );
        let mut d = merged.clone();
        d.tick(1);
        log.push(
            2,
            CausalEventKind::Death {
                detail: "injected crash".into(),
            },
            vec![1],
            vec![d.clone()],
            d,
        );
        log
    }

    #[test]
    fn mermaid_renders_arrows_notes_and_clocks() {
        let log = two_proc_log();
        let msc = render_mermaid(&log);
        assert!(msc.starts_with("sequenceDiagram\n"));
        assert!(msc.contains("participant P0 as src"));
        assert!(msc.contains("P0->>P0: in.1 @ [1,0]"));
        assert!(msc.contains("P0-->>P1: mid.1 @ [2,1]"));
        assert!(msc.contains("Note over P1: death: injected crash @ [2,2]"));
    }

    #[test]
    fn mermaid_round_trips_the_causal_order() {
        let log = two_proc_log();
        let parsed = parse_mermaid(&render_mermaid(&log)).unwrap();
        assert_eq!(parsed.participants, vec!["src", "sink"]);
        assert_eq!(parsed.arrows.len(), 2);
        assert!(parsed.arrows[1].hidden);
        // Comm events are log seqs 0 and 1, in order, so edge indices
        // coincide and the relations must match exactly.
        assert_eq!(parsed.hb_edges(), log.comm_hb_edges());
    }

    #[test]
    fn text_msc_is_one_line_per_event() {
        let log = two_proc_log();
        let text = render_text(&log);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("in.1 src"));
        assert!(lines[1].contains("~mid.1 src -> sink"));
        assert!(lines[2].contains("! death: injected crash sink"));
    }

    #[test]
    fn parse_rejects_non_msc_input() {
        assert_eq!(parse_mermaid("flowchart TD\nA-->B"), None);
    }
}
