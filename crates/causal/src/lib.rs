//! Causal observability for concurrent CSP runs.
//!
//! The paper's semantic object is the *trace* — `P sat R` holds iff every
//! trace of `P` satisfies `R` (§2.2) — but an executing network produces
//! more structure than the flat trace the coordinator commits: every
//! synchronous communication is a joint action of the components whose
//! alphabets contain its channel, and actions of disjoint component sets
//! are causally unordered. This crate materializes that structure:
//!
//! * [`VectorClock`] — per-component Lamport vector clocks; the pointwise
//!   partial order *is* Lamport's happens-before relation.
//! * [`CausalEvent`] / [`CausalLog`] — a bounded log of communications and
//!   supervision events (faults, deaths, restarts), each stamped with the
//!   participants' pre-merge clocks and the merged clock.
//! * [`CausalLog::validate`] — re-simulates the clock protocol and rejects
//!   logs whose stamps are inconsistent (doctored or corrupted logs).
//! * [`CausalLog::linearizations`] — enumerates total orders consistent
//!   with the recorded partial order, i.e. the set of flat traces the same
//!   run could have produced under other schedulers.
//! * [`msc`] — message-sequence-chart exporters (Mermaid `sequenceDiagram`
//!   and a compact text MSC) plus a Mermaid parser for round-tripping.
//! * [`chrome`] — a causal-edge-annotated Chrome trace (flow events
//!   between per-process tracks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;

use csp_trace::Event;

pub mod chrome;
pub mod msc;

// ------------------------------------------------------------ clocks --

/// A per-component vector clock. Component `i` of a network of `n`
/// processes owns entry `i`; the pointwise partial order on clocks is the
/// happens-before relation of the run.
///
/// ```
/// use csp_causal::VectorClock;
/// let mut a = VectorClock::new(2);
/// a.tick(0);
/// let mut b = VectorClock::new(2);
/// b.tick(1);
/// assert!(a.partial_cmp(&b).is_none()); // concurrent
/// b.merge(&a);
/// assert!(a < b);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock for a network of `n` components.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Builds a clock from explicit entries.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock(entries)
    }

    /// Number of components this clock covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the clock covers zero components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Entry `i` (ticks of component `i` observed so far).
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// The raw entries.
    pub fn entries(&self) -> &[u64] {
        &self.0
    }

    /// Increments component `i`'s own entry (a local step of `i`).
    pub fn tick(&mut self, i: usize) {
        if let Some(slot) = self.0.get_mut(i) {
            *slot += 1;
        }
    }

    /// Pointwise maximum with `other` (receipt of `other`'s knowledge).
    pub fn merge(&mut self, other: &VectorClock) {
        for (slot, v) in self.0.iter_mut().zip(other.0.iter()) {
            *slot = (*slot).max(*v);
        }
    }

    /// True iff `self <= other` pointwise.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// True iff the clocks are incomparable — the stamped events are
    /// causally concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.partial_cmp(other).is_none()
    }
}

impl PartialOrd for VectorClock {
    /// The *pointwise* partial order (not lexicographic): `a < b` iff
    /// `a <= b` in every entry and `a != b`. Returns `None` for
    /// concurrent (incomparable) clocks.
    fn partial_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        if self.0.len() != other.0.len() {
            return None;
        }
        if self == other {
            return Some(Ordering::Equal);
        }
        if self.le(other) {
            return Some(Ordering::Less);
        }
        if other.le(self) {
            return Some(Ordering::Greater);
        }
        None
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl VectorClock {
    /// Parses the [`Display`](fmt::Display) form `"[1,0,2]"`.
    pub fn parse(s: &str) -> Option<VectorClock> {
        let inner = s.trim().strip_prefix('[')?.strip_suffix(']')?;
        if inner.trim().is_empty() {
            return Some(VectorClock(Vec::new()));
        }
        inner
            .split(',')
            .map(|p| p.trim().parse::<u64>().ok())
            .collect::<Option<Vec<_>>>()
            .map(VectorClock)
    }
}

// ------------------------------------------------------------ events --

/// What a [`CausalEvent`] records: a communication or a supervision
/// action (fault injection, component death, supervised restart).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CausalEventKind {
    /// A committed communication `channel.value`. `sender`/`receiver`
    /// are component indices when the direction could be inferred from
    /// the components' output alphabets (a channel with exactly one
    /// writer among the participants); multi-party or direction-less
    /// events keep the full participant list only.
    Comm {
        /// The communicated event.
        event: Event,
        /// Component that wrote the value, when unambiguous.
        sender: Option<usize>,
        /// First reading participant, when a sender is known.
        receiver: Option<usize>,
        /// True iff the channel is hidden at the network boundary.
        hidden: bool,
    },
    /// An injected fault (e.g. a stall window opening) on one component.
    Fault {
        /// Human-readable description of the fault.
        detail: String,
    },
    /// A component death (crash fault or poison).
    Death {
        /// Failure reason as reported by the supervisor.
        detail: String,
    },
    /// A supervised restart of a previously dead component.
    Restart,
}

impl CausalEventKind {
    /// Short label for MSC notes and Chrome instant events.
    pub fn label(&self) -> String {
        match self {
            CausalEventKind::Comm { event, .. } => event.to_string(),
            CausalEventKind::Fault { detail } => format!("fault: {detail}"),
            CausalEventKind::Death { detail } => format!("death: {detail}"),
            CausalEventKind::Restart => "restart".to_string(),
        }
    }
}

/// One entry of a [`CausalLog`]: an action, its participants, the
/// participants' clocks *after* ticking their own entry but *before* the
/// merge (`pre_clocks`, parallel to `participants`), and the merged
/// clock every participant adopts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalEvent {
    /// Position of this entry in the log (stable identity).
    pub seq: usize,
    /// Index in the run's committed full trace at which this happened
    /// (supervision events take the index of the next communication).
    pub step: usize,
    /// The recorded action.
    pub kind: CausalEventKind,
    /// Component indices that synchronized on this action.
    pub participants: Vec<usize>,
    /// Post-tick, pre-merge clock of each participant (the "VC pair"
    /// with [`CausalEvent::clock`]).
    pub pre_clocks: Vec<VectorClock>,
    /// The merged clock (pointwise max of `pre_clocks`) stamped on the
    /// event and adopted by every participant.
    pub clock: VectorClock,
}

impl CausalEvent {
    /// True iff this entry records a communication (not supervision).
    pub fn is_comm(&self) -> bool {
        matches!(self.kind, CausalEventKind::Comm { .. })
    }
}

/// Why [`CausalLog::validate`] rejected a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CausalError {
    /// An event names a participant outside `0..labels.len()`, or none.
    BadParticipants {
        /// Log position of the offending event.
        seq: usize,
    },
    /// A clock has the wrong number of entries.
    BadClockWidth {
        /// Log position of the offending event.
        seq: usize,
    },
    /// A participant's pre-merge clock is not its previous clock ticked
    /// once — the per-component order was tampered with.
    BadTick {
        /// Log position of the offending event.
        seq: usize,
        /// The participant whose tick is inconsistent.
        component: usize,
    },
    /// The merged clock is not the pointwise max of the pre-clocks.
    BadMerge {
        /// Log position of the offending event.
        seq: usize,
    },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::BadParticipants { seq } => {
                write!(f, "event #{seq}: participant set invalid")
            }
            CausalError::BadClockWidth { seq } => {
                write!(f, "event #{seq}: clock width does not match network size")
            }
            CausalError::BadTick { seq, component } => {
                write!(f, "event #{seq}: component {component} pre-clock is not its previous clock ticked once")
            }
            CausalError::BadMerge { seq } => {
                write!(
                    f,
                    "event #{seq}: merged clock is not the pointwise max of the pre-clocks"
                )
            }
        }
    }
}

impl std::error::Error for CausalError {}

// --------------------------------------------------------------- log --

/// A bounded causal event log for one run.
///
/// The coordinator that records it is single-threaded, so the log needs
/// no locking; boundedness comes from a capacity after which *new*
/// events are counted in [`CausalLog::dropped`] and discarded. Keeping
/// the prefix (rather than a ring of the suffix) means the retained log
/// is always a causally self-consistent observation — traces are
/// prefix-closed, a truncated suffix would dangle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalLog {
    labels: Vec<String>,
    events: Vec<CausalEvent>,
    cap: usize,
    dropped: usize,
}

impl CausalLog {
    /// An empty log for a network whose components carry `labels`,
    /// keeping at most `cap` events.
    pub fn new(labels: Vec<String>, cap: usize) -> Self {
        CausalLog {
            labels,
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Component labels, indexed by component id.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The retained events, in commit order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity after which events are dropped.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Appends an event, assigning its `seq`. Returns `false` (and
    /// counts a drop) when the log is at capacity.
    pub fn push(
        &mut self,
        step: usize,
        kind: CausalEventKind,
        participants: Vec<usize>,
        pre_clocks: Vec<VectorClock>,
        clock: VectorClock,
    ) -> bool {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return false;
        }
        let seq = self.events.len();
        self.events.push(CausalEvent {
            seq,
            step,
            kind,
            participants,
            pre_clocks,
            clock,
        });
        true
    }

    /// Re-simulates the vector-clock protocol over the log and checks
    /// every stamp: each participant's pre-clock must be its previous
    /// clock ticked once, and the merged clock must be the pointwise max
    /// of the pre-clocks. A doctored log fails here with the first
    /// inconsistent event.
    pub fn validate(&self) -> Result<(), CausalError> {
        let n = self.labels.len();
        let mut running = vec![VectorClock::new(n); n];
        for e in &self.events {
            if e.participants.is_empty()
                || e.participants.iter().any(|&p| p >= n)
                || e.participants.len() != e.pre_clocks.len()
            {
                return Err(CausalError::BadParticipants { seq: e.seq });
            }
            if e.clock.len() != n || e.pre_clocks.iter().any(|c| c.len() != n) {
                return Err(CausalError::BadClockWidth { seq: e.seq });
            }
            let mut merged = VectorClock::new(n);
            for (&p, pre) in e.participants.iter().zip(&e.pre_clocks) {
                let mut expect = running[p].clone();
                expect.tick(p);
                if *pre != expect {
                    return Err(CausalError::BadTick {
                        seq: e.seq,
                        component: p,
                    });
                }
                merged.merge(pre);
            }
            if e.clock != merged {
                return Err(CausalError::BadMerge { seq: e.seq });
            }
            for &p in &e.participants {
                running[p] = merged.clone();
            }
        }
        Ok(())
    }

    /// True iff log entry `a` happens-before entry `b` (strict pointwise
    /// clock order). Indices are `seq` values.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        match (self.events.get(a), self.events.get(b)) {
            (Some(ea), Some(eb)) => {
                matches!(ea.clock.partial_cmp(&eb.clock), Some(Ordering::Less))
            }
            _ => false,
        }
    }

    /// All happens-before edges `(a, b)` over the retained events
    /// (the full relation, not its transitive reduction).
    pub fn hb_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.events.len() {
            for b in 0..self.events.len() {
                if a != b && self.happens_before(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// [`CausalLog::hb_edges`] restricted to communication events,
    /// reindexed by *comm position* (the i-th communication in the log
    /// gets index `i`) — the relation an MSC depicts, directly
    /// comparable with [`msc::ParsedMsc::hb_edges`].
    pub fn comm_hb_edges(&self) -> Vec<(usize, usize)> {
        let mut pos = vec![usize::MAX; self.events.len()];
        let mut next = 0usize;
        for e in &self.events {
            if e.is_comm() {
                pos[e.seq] = next;
                next += 1;
            }
        }
        self.hb_edges()
            .into_iter()
            .filter(|&(a, b)| self.events[a].is_comm() && self.events[b].is_comm())
            .map(|(a, b)| (pos[a], pos[b]))
            .collect()
    }

    /// Seqs of events strictly happens-before event `seq`, in log order:
    /// the causal history (past cone) of that event.
    pub fn causal_history(&self, seq: usize) -> Vec<usize> {
        (0..self.events.len())
            .filter(|&a| a != seq && self.happens_before(a, seq))
            .collect()
    }

    /// Enumerates linearizations of the recorded partial order — total
    /// orders (as `seq` sequences) in which every happens-before edge
    /// goes forward — up to `limit` of them, in lexicographic order.
    /// The committed log order is always one of them (the first).
    pub fn linearizations(&self, limit: usize) -> Vec<Vec<usize>> {
        let n = self.events.len();
        // Predecessor bitmask per event over the full hb relation.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.hb_edges() {
            preds[b].push(a);
        }
        let mut out = Vec::new();
        let mut placed = vec![false; n];
        let mut prefix = Vec::with_capacity(n);
        fn go(
            n: usize,
            preds: &[Vec<usize>],
            placed: &mut Vec<bool>,
            prefix: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
            limit: usize,
        ) {
            if out.len() >= limit {
                return;
            }
            if prefix.len() == n {
                out.push(prefix.clone());
                return;
            }
            for c in 0..n {
                if placed[c] || !preds[c].iter().all(|&p| placed[p]) {
                    continue;
                }
                placed[c] = true;
                prefix.push(c);
                go(n, preds, placed, prefix, out, limit);
                prefix.pop();
                placed[c] = false;
                if out.len() >= limit {
                    return;
                }
            }
        }
        go(n, &preds, &mut placed, &mut prefix, &mut out, limit);
        out
    }

    /// Serializes the log as JSON-lines: a header line with labels,
    /// capacity and drop count, then one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(l));
        }
        out.push_str(&format!(
            "],\"cap\":{},\"dropped\":{}}}\n",
            self.cap, self.dropped
        ));
        for e in &self.events {
            let (kind, detail) = match &e.kind {
                CausalEventKind::Comm {
                    event,
                    sender,
                    receiver,
                    hidden,
                } => (
                    "comm",
                    format!(
                        "\"event\":{},\"sender\":{},\"receiver\":{},\"hidden\":{}",
                        json_str(&event.to_string()),
                        opt(*sender),
                        opt(*receiver),
                        hidden
                    ),
                ),
                CausalEventKind::Fault { detail } => {
                    ("fault", format!("\"detail\":{}", json_str(detail)))
                }
                CausalEventKind::Death { detail } => {
                    ("death", format!("\"detail\":{}", json_str(detail)))
                }
                CausalEventKind::Restart => ("restart", String::new()),
            };
            out.push_str(&format!(
                "{{\"seq\":{},\"step\":{},\"kind\":{}",
                e.seq,
                e.step,
                json_str(kind)
            ));
            if !detail.is_empty() {
                out.push(',');
                out.push_str(&detail);
            }
            out.push_str(",\"participants\":[");
            for (i, p) in e.participants.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&p.to_string());
            }
            out.push_str("],\"pre_clocks\":[");
            for (i, c) in e.pre_clocks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!("],\"clock\":{}}}\n", e.clock));
        }
        out
    }
}

fn opt(v: Option<usize>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{Channel, Value};

    fn ev(chan: &str, v: u32) -> Event {
        Event::new(Channel::simple(chan), Value::nat(v))
    }

    /// A tiny two-component log: `a` local to 0, `w` joint, `b` local to 1.
    fn sample() -> CausalLog {
        let mut log = CausalLog::new(vec!["left".into(), "right".into()], 16);
        let mut c0 = VectorClock::new(2);
        let mut c1 = VectorClock::new(2);
        c0.tick(0);
        log.push(
            0,
            CausalEventKind::Comm {
                event: ev("a", 0),
                sender: Some(0),
                receiver: None,
                hidden: false,
            },
            vec![0],
            vec![c0.clone()],
            c0.clone(),
        );
        let mut p0 = c0.clone();
        p0.tick(0);
        let mut p1 = c1.clone();
        p1.tick(1);
        let mut merged = p0.clone();
        merged.merge(&p1);
        log.push(
            1,
            CausalEventKind::Comm {
                event: ev("w", 1),
                sender: Some(0),
                receiver: Some(1),
                hidden: false,
            },
            vec![0, 1],
            vec![p0, p1],
            merged.clone(),
        );
        c0 = merged.clone();
        c1 = merged;
        let mut q1 = c1.clone();
        q1.tick(1);
        log.push(
            2,
            CausalEventKind::Comm {
                event: ev("b", 2),
                sender: Some(1),
                receiver: None,
                hidden: false,
            },
            vec![1],
            vec![q1.clone()],
            q1,
        );
        let _ = c0;
        log
    }

    #[test]
    fn clocks_order_pointwise_not_lexicographically() {
        let a = VectorClock::from_entries(vec![1, 0]);
        let b = VectorClock::from_entries(vec![0, 2]);
        assert!(a.partial_cmp(&b).is_none());
        assert!(a.concurrent(&b));
        let c = VectorClock::from_entries(vec![1, 2]);
        assert!(a < c && b < c);
    }

    #[test]
    fn display_round_trips() {
        let c = VectorClock::from_entries(vec![3, 0, 7]);
        assert_eq!(VectorClock::parse(&c.to_string()), Some(c));
        assert_eq!(VectorClock::parse("nope"), None);
    }

    #[test]
    fn sample_log_validates_and_orders() {
        let log = sample();
        log.validate().unwrap();
        assert!(log.happens_before(0, 1));
        assert!(log.happens_before(1, 2));
        assert!(log.happens_before(0, 2)); // transitive via clocks
        assert!(!log.happens_before(2, 0));
        assert_eq!(log.causal_history(2), vec![0, 1]);
    }

    #[test]
    fn doctored_log_fails_validation_at_first_bad_event() {
        let mut log = sample();
        log.events[1].clock = VectorClock::from_entries(vec![9, 9]);
        match log.validate() {
            Err(CausalError::BadMerge { seq }) => assert_eq!(seq, 1),
            other => panic!("expected BadMerge at #1, got {other:?}"),
        }
    }

    #[test]
    fn linearizations_respect_the_partial_order() {
        let log = sample();
        // The sample is a chain, so exactly one linearization exists.
        assert_eq!(log.linearizations(10), vec![vec![0, 1, 2]]);
        // Two concurrent singleton events admit both orders.
        let mut log2 = CausalLog::new(vec!["l".into(), "r".into()], 8);
        let mut c0 = VectorClock::new(2);
        c0.tick(0);
        let mut c1 = VectorClock::new(2);
        c1.tick(1);
        log2.push(
            0,
            CausalEventKind::Comm {
                event: ev("a", 0),
                sender: None,
                receiver: None,
                hidden: false,
            },
            vec![0],
            vec![c0.clone()],
            c0,
        );
        log2.push(
            1,
            CausalEventKind::Comm {
                event: ev("b", 0),
                sender: None,
                receiver: None,
                hidden: false,
            },
            vec![1],
            vec![c1.clone()],
            c1,
        );
        let lins = log2.linearizations(10);
        assert_eq!(lins.len(), 2);
        assert!(lins.contains(&vec![0, 1]) && lins.contains(&vec![1, 0]));
    }

    #[test]
    fn capacity_drops_new_events_and_counts_them() {
        let mut log = CausalLog::new(vec!["p".into()], 1);
        let mut c = VectorClock::new(1);
        c.tick(0);
        assert!(log.push(
            0,
            CausalEventKind::Restart,
            vec![0],
            vec![c.clone()],
            c.clone()
        ));
        assert!(!log.push(1, CausalEventKind::Restart, vec![0], vec![c.clone()], c));
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
        log.validate().unwrap();
    }

    #[test]
    fn jsonl_export_has_header_and_one_line_per_event() {
        let log = sample();
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"labels\":[\"left\",\"right\"]"));
        assert!(lines[2].contains("\"event\":\"w.1\""));
        assert!(lines[2].contains("\"clock\":[2,1]"));
    }
}
