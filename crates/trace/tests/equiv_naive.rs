//! Property-based equivalence of the interned [`TraceSet`] against the
//! retained naive reference implementation ([`NaiveTraceSet`]).
//!
//! The interned engine replaced the original `BTreeSet<Vec<Event>>`
//! representation with hash-consed, structurally shared traces. These
//! properties pin the refactor to the original observable behaviour:
//! every operator, applied to the same randomly generated prefix-closed
//! sets, must produce extensionally equal results — and the sorted
//! iteration order must match the reference's `BTreeSet` order exactly.

use csp_trace::{Channel, ChannelSet, Event, NaiveTraceSet, Trace, TraceSet, Value};
use proptest::prelude::*;

/// The closed alphabet the generators draw from. Three channels and
/// three values keep the event space small enough that random sets
/// collide, sync, and hide against each other often.
const CHANNELS: [&str; 3] = ["a", "b", "c"];

fn event(channel_idx: usize, value: u32) -> Event {
    Event::new(
        Channel::simple(CHANNELS[channel_idx % CHANNELS.len()]),
        Value::nat(value),
    )
}

fn channel_set(names: &[&str]) -> ChannelSet {
    names.iter().map(|n| Channel::simple(n)).collect()
}

/// A strategy for one trace: a short word over the alphabet.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0usize..3, 0u32..3), 0..6)
        .prop_map(|word| Trace::from_events(word.into_iter().map(|(c, v)| event(c, v))))
}

/// A strategy for a *pair* of equal sets in both representations,
/// built by prefix-closing the same random generator traces.
fn set_pair_strategy() -> impl Strategy<Value = (TraceSet, NaiveTraceSet)> {
    prop::collection::vec(trace_strategy(), 0..8).prop_map(|traces| {
        let fast = TraceSet::closure_of(traces.iter().cloned());
        let naive = NaiveTraceSet::closure_of(traces);
        (fast, naive)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn construction_agrees(pair in set_pair_strategy()) {
        let (fast, naive) = pair;
        prop_assert!(naive.agrees_with(&fast));
        prop_assert_eq!(fast.len(), naive.len());
        prop_assert!(fast.is_prefix_closed());
        prop_assert!(naive.is_prefix_closed());
    }

    #[test]
    fn sorted_iteration_matches_btreeset_order(pair in set_pair_strategy()) {
        let (fast, naive) = pair;
        let fast_order: Vec<&Trace> = fast.iter().collect();
        let naive_order: Vec<&Trace> = naive.iter().collect();
        prop_assert_eq!(fast_order, naive_order);
    }

    #[test]
    fn union_agrees(p in set_pair_strategy(), q in set_pair_strategy()) {
        let ((fa, na), (fb, nb)) = (p, q);
        prop_assert!(na.union(&nb).agrees_with(&fa.union(&fb)));
    }

    #[test]
    fn intersection_agrees(p in set_pair_strategy(), q in set_pair_strategy()) {
        let ((fa, na), (fb, nb)) = (p, q);
        prop_assert!(na.intersection(&nb).agrees_with(&fa.intersection(&fb)));
    }

    #[test]
    fn is_subset_agrees(p in set_pair_strategy(), q in set_pair_strategy()) {
        let ((fa, na), (fb, nb)) = (p, q);
        prop_assert_eq!(fa.is_subset(&fb), na.is_subset(&nb));
        // A set and its own union are always in the subset relation, in
        // both representations (sanity against vacuous agreement).
        prop_assert!(fa.is_subset(&fa.union(&fb)));
        prop_assert!(na.is_subset(&na.union(&nb)));
    }

    #[test]
    fn prefixed_agrees(pair in set_pair_strategy(), c in 0usize..3, v in 0u32..3) {
        let (fast, naive) = pair;
        let e = event(c, v);
        prop_assert!(naive.prefixed(e).agrees_with(&fast.prefixed(e)));
    }

    #[test]
    fn hide_agrees(pair in set_pair_strategy(), which in 0usize..3) {
        let (fast, naive) = pair;
        let hidden = channel_set(&[CHANNELS[which]]);
        prop_assert!(naive.hide(&hidden).agrees_with(&fast.hide(&hidden)));
    }

    #[test]
    fn parallel_agrees(p in set_pair_strategy(), q in set_pair_strategy()) {
        let ((fa, na), (fb, nb)) = (p, q);
        // Overlapping alphabets: the processes synchronise on `b`.
        let x = channel_set(&["a", "b"]);
        let y = channel_set(&["b", "c"]);
        let fast = fa.parallel(&x, &fb, &y);
        let naive = na.parallel(&x, &nb, &y);
        prop_assert!(naive.agrees_with(&fast));
    }

    #[test]
    fn parallel_disjoint_alphabets_agree(p in set_pair_strategy(), q in set_pair_strategy()) {
        let ((fa, na), (fb, nb)) = (p, q);
        // Disjoint alphabets: free interleaving, the combinatorial
        // worst case for the merge.
        let x = channel_set(&["a"]);
        let y = channel_set(&["c"]);
        prop_assert!(na.parallel(&x, &nb, &y).agrees_with(&fa.parallel(&x, &fb, &y)));
    }

    #[test]
    fn maximal_traces_and_depth_agree(pair in set_pair_strategy()) {
        let (fast, naive) = pair;
        prop_assert_eq!(fast.depth(), naive.depth());
        let fast_max: Vec<&Trace> = fast.maximal_traces();
        let naive_max: Vec<&Trace> = naive.maximal_traces();
        prop_assert_eq!(fast_max, naive_max);
    }

    #[test]
    fn contains_agrees_on_arbitrary_traces(pair in set_pair_strategy(), probe in trace_strategy()) {
        let (fast, naive) = pair;
        prop_assert_eq!(fast.contains(&probe), naive.contains(&probe));
        for prefix in probe.prefixes() {
            prop_assert_eq!(fast.contains(&prefix), naive.contains(&prefix));
        }
    }
}

/// Operators compose: a pipeline of union → parallel → hide stays in
/// agreement, so errors cannot hide in representation round-trips.
#[test]
fn composed_pipeline_agrees() {
    let words: Vec<Vec<(usize, u32)>> = vec![
        vec![(0, 1), (1, 2)],
        vec![(1, 2), (2, 0)],
        vec![(0, 0), (0, 1), (1, 1)],
        vec![(2, 2)],
    ];
    let traces: Vec<Trace> = words
        .iter()
        .map(|w| Trace::from_events(w.iter().map(|&(c, v)| event(c, v))))
        .collect();
    let fast_a = TraceSet::closure_of(traces[..2].iter().cloned());
    let fast_b = TraceSet::closure_of(traces[2..].iter().cloned());
    let naive_a = NaiveTraceSet::closure_of(traces[..2].iter().cloned());
    let naive_b = NaiveTraceSet::closure_of(traces[2..].iter().cloned());
    let x = channel_set(&["a", "b"]);
    let y = channel_set(&["b", "c"]);
    let hidden = channel_set(&["b"]);
    let fast = fast_a
        .union(&fast_b)
        .parallel(&x, &fast_b, &y)
        .hide(&hidden);
    let naive = naive_a
        .union(&naive_b)
        .parallel(&x, &naive_b, &y)
        .hide(&hidden);
    assert!(naive.agrees_with(&fast));
    assert_eq!(
        fast.iter().collect::<Vec<_>>(),
        naive.iter().collect::<Vec<_>>()
    );
}
