//! Channel names and channel sets.
//!
//! §1.1(10)–(13) of the paper introduces channel names (`input`, `wire`),
//! channel array names with subscripts (`col[0]`, `row[2]`), and lists of
//! channels used to declare the connections of a network. [`Channel`] is a
//! concrete, fully-subscripted channel name; [`ChannelSet`] is the finite
//! set of channels used for the alphabets `X`, `Y` of parallel composition
//! and the lists `L` of `chan L; P`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A concrete channel name, possibly subscripted: `wire`, `col[0]`,
/// `grid[1][2]`.
///
/// Subscripts are fully evaluated integers — a *channel array* (§1.1(12))
/// is a family of [`Channel`]s, one per subscript value; expansion of
/// symbolic subscripts happens in `csp-lang`/`csp-semantics`.
///
/// # Examples
///
/// ```
/// use csp_trace::Channel;
///
/// let wire = Channel::simple("wire");
/// let col0 = Channel::indexed("col", 0);
/// assert_eq!(wire.to_string(), "wire");
/// assert_eq!(col0.to_string(), "col[0]");
/// assert_eq!(col0.base(), "col");
/// assert_eq!(col0.indices(), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    base: Arc<str>,
    indices: Vec<i64>,
}

impl Channel {
    /// Creates an unsubscripted channel name.
    pub fn simple(base: &str) -> Self {
        Channel {
            base: Arc::from(base),
            indices: Vec::new(),
        }
    }

    /// Creates a singly-subscripted channel name, e.g. `col[3]`.
    pub fn indexed(base: &str, index: i64) -> Self {
        Channel {
            base: Arc::from(base),
            indices: vec![index],
        }
    }

    /// Creates a channel name with an arbitrary subscript path.
    ///
    /// # Examples
    ///
    /// ```
    /// # use csp_trace::Channel;
    /// let c = Channel::with_indices("grid", vec![1, 2]);
    /// assert_eq!(c.to_string(), "grid[1][2]");
    /// ```
    pub fn with_indices(base: &str, indices: Vec<i64>) -> Self {
        Channel {
            base: Arc::from(base),
            indices,
        }
    }

    /// The array (or plain) name without subscripts.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The subscript path; empty for a plain channel name.
    pub fn indices(&self) -> &[i64] {
        &self.indices
    }

    /// True if this channel is an element of the array `base`, i.e. has the
    /// given base name and at least one subscript.
    ///
    /// # Examples
    ///
    /// ```
    /// # use csp_trace::Channel;
    /// assert!(Channel::indexed("col", 1).is_element_of("col"));
    /// assert!(!Channel::simple("col").is_element_of("col"));
    /// ```
    pub fn is_element_of(&self, base: &str) -> bool {
        self.base() == base && !self.indices.is_empty()
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for i in &self.indices {
            write!(f, "[{i}]")?;
        }
        Ok(())
    }
}

impl From<&str> for Channel {
    fn from(base: &str) -> Self {
        Channel::simple(base)
    }
}

/// A finite set of channels: an *alphabet* in the sense of the parallel
/// operator `P ‖_{X,Y} Q` (§1.2(7)) or the local-channel list of
/// `chan L; P` (§1.2(8)).
///
/// # Examples
///
/// ```
/// use csp_trace::{Channel, ChannelSet};
///
/// let x: ChannelSet = ["input", "wire"].into_iter().collect();
/// let y: ChannelSet = ["wire", "output"].into_iter().collect();
/// let common = x.intersection(&y);
/// assert!(common.contains(&Channel::simple("wire")));
/// assert_eq!(common.len(), 1);
/// assert_eq!(x.difference(&y).iter().next().unwrap().to_string(), "input");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelSet {
    channels: BTreeSet<Channel>,
}

impl ChannelSet {
    /// Creates an empty channel set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of channels in the set.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if the set contains no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Inserts a channel; returns `true` if it was not already present.
    pub fn insert(&mut self, c: Channel) -> bool {
        self.channels.insert(c)
    }

    /// True if `c` is a member.
    pub fn contains(&self, c: &Channel) -> bool {
        self.channels.contains(c)
    }

    /// Set union `X ∪ Y`.
    pub fn union(&self, other: &ChannelSet) -> ChannelSet {
        ChannelSet {
            channels: self.channels.union(&other.channels).cloned().collect(),
        }
    }

    /// Set intersection `X ∩ Y` — the internal channels connecting the two
    /// operands of `‖`.
    pub fn intersection(&self, other: &ChannelSet) -> ChannelSet {
        ChannelSet {
            channels: self
                .channels
                .intersection(&other.channels)
                .cloned()
                .collect(),
        }
    }

    /// Set difference `X − Y` — the channels on which the left process of a
    /// parallel composition communicates privately.
    pub fn difference(&self, other: &ChannelSet) -> ChannelSet {
        ChannelSet {
            channels: self.channels.difference(&other.channels).cloned().collect(),
        }
    }

    /// True if every channel of `self` is in `other`.
    pub fn is_subset(&self, other: &ChannelSet) -> bool {
        self.channels.is_subset(&other.channels)
    }

    /// True if the two sets share no channel.
    pub fn is_disjoint(&self, other: &ChannelSet) -> bool {
        self.channels.is_disjoint(&other.channels)
    }

    /// Iterates over the channels in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter()
    }
}

impl FromIterator<Channel> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = Channel>>(iter: I) -> Self {
        ChannelSet {
            channels: iter.into_iter().collect(),
        }
    }
}

impl<'a> FromIterator<&'a str> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        iter.into_iter().map(Channel::simple).collect()
    }
}

impl Extend<Channel> for ChannelSet {
    fn extend<I: IntoIterator<Item = Channel>>(&mut self, iter: I) {
        self.channels.extend(iter);
    }
}

impl IntoIterator for ChannelSet {
    type Item = Channel;
    type IntoIter = std::collections::btree_set::IntoIter<Channel>;

    fn into_iter(self) -> Self::IntoIter {
        self.channels.into_iter()
    }
}

impl fmt::Display for ChannelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_of_subscripted_channels() {
        assert_eq!(Channel::simple("wire").to_string(), "wire");
        assert_eq!(Channel::indexed("col", 0).to_string(), "col[0]");
        assert_eq!(
            Channel::with_indices("grid", vec![1, 2]).to_string(),
            "grid[1][2]"
        );
    }

    #[test]
    fn subscripted_channels_are_distinct() {
        // §1.1(11): row[e] denotes a particular distinct channel for each
        // distinct value of e.
        assert_ne!(Channel::indexed("col", 0), Channel::indexed("col", 1));
        assert_ne!(Channel::simple("col"), Channel::indexed("col", 0));
    }

    #[test]
    fn element_of_checks_base_and_subscript() {
        assert!(Channel::indexed("row", 2).is_element_of("row"));
        assert!(!Channel::indexed("row", 2).is_element_of("col"));
        assert!(!Channel::simple("row").is_element_of("row"));
    }

    #[test]
    fn alphabet_algebra_matches_paper_pipeline() {
        // X = {input, wire}, Y = {wire, output} from §1.2(7).
        let x: ChannelSet = ["input", "wire"].into_iter().collect();
        let y: ChannelSet = ["wire", "output"].into_iter().collect();
        assert_eq!(x.intersection(&y).len(), 1);
        assert!(x.intersection(&y).contains(&Channel::simple("wire")));
        assert!(x.difference(&y).contains(&Channel::simple("input")));
        assert!(y.difference(&x).contains(&Channel::simple("output")));
        assert_eq!(x.union(&y).len(), 3);
    }

    #[test]
    fn subset_and_disjoint() {
        let x: ChannelSet = ["a", "b"].into_iter().collect();
        let y: ChannelSet = ["a", "b", "c"].into_iter().collect();
        let z: ChannelSet = ["d"].into_iter().collect();
        assert!(x.is_subset(&y));
        assert!(!y.is_subset(&x));
        assert!(x.is_disjoint(&z));
        assert!(!x.is_disjoint(&y));
    }

    #[test]
    fn insert_and_contains() {
        let mut s = ChannelSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Channel::simple("wire")));
        assert!(!s.insert(Channel::simple("wire")));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Channel::simple("wire")));
    }

    #[test]
    fn display_of_sets_is_sorted() {
        let s: ChannelSet = ["wire", "input", "output"].into_iter().collect();
        assert_eq!(s.to_string(), "{input, output, wire}");
    }
}
