//! Traces of process behaviour.
//!
//! §1.0: "The sequence of communications in which a process engages up to
//! some moment in time can be recorded as a trace of the behaviour of that
//! process." A [`Trace`] is a finite sequence of [`Event`]s together with
//! the trace-specific operators of §3.1/§3.3: the restriction `s\C`
//! (omitting all communications on channels of `C`), the projection
//! `ch(s)(c)` of the messages passed on one channel, and the full history
//! map `ch(s)`.

use std::fmt;

use crate::{Channel, ChannelSet, Event, History, Seq, Value};

/// A finite trace `⟨c₁.m₁, …, cₙ.mₙ⟩` of communications.
///
/// # Examples
///
/// The example trace of §3.3:
///
/// ```
/// use csp_trace::{Channel, Trace, Value};
///
/// let t = Trace::parse_like([
///     ("input", Value::nat(27)),
///     ("wire", Value::nat(27)),
///     ("input", Value::nat(0)),
///     ("wire", Value::nat(0)),
///     ("input", Value::nat(3)),
/// ]);
/// let h = t.history();
/// assert_eq!(h.on(&Channel::simple("input")).to_string(), "<27, 0, 3>");
/// assert_eq!(h.on(&Channel::simple("wire")).to_string(), "<27, 0>");
/// assert_eq!(h.on(&Channel::simple("output")).to_string(), "<>");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Trace {
    events: Seq<Event>,
}

impl Trace {
    /// The empty trace `<>` — a possible behaviour of every process.
    pub fn empty() -> Self {
        Trace {
            events: Seq::empty(),
        }
    }

    /// Builds a trace from any sequence of events.
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I) -> Self {
        Trace {
            events: events.into_iter().collect(),
        }
    }

    /// Convenience constructor from `(channel-name, value)` pairs on
    /// unsubscripted channels, mirroring the paper's `⟨input.3, wire.3⟩`
    /// notation.
    pub fn parse_like<'a, I: IntoIterator<Item = (&'a str, Value)>>(pairs: I) -> Self {
        Trace::from_events(
            pairs
                .into_iter()
                .map(|(c, v)| Event::new(Channel::simple(c), v)),
        )
    }

    /// `#s` — the number of communications recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if this is the empty trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `i`th communication, **1-based** as in the paper.
    pub fn at(&self, i: usize) -> Option<&Event> {
        self.events.at(i)
    }

    /// The first communication, if any.
    pub fn head(&self) -> Option<&Event> {
        self.events.head()
    }

    /// The trace after its first communication; `None` on `<>`.
    pub fn tail(&self) -> Option<Trace> {
        self.events.tail().map(|events| Trace { events })
    }

    /// The last communication, if any.
    pub fn last(&self) -> Option<&Event> {
        self.events.last()
    }

    /// Iterates over the events front to back.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// A view of the underlying events.
    pub fn events(&self) -> &[Event] {
        self.events.as_slice()
    }

    /// The underlying generic sequence.
    pub fn as_seq(&self) -> &Seq<Event> {
        &self.events
    }

    /// `e^s` — the trace with `e` prepended (the shape produced by the
    /// prefix operator `(a → P)` of §3.1).
    pub fn cons(&self, e: Event) -> Trace {
        Trace {
            events: self.events.cons(e),
        }
    }

    /// The trace with `e` appended — how a recorder extends a trace as a
    /// run proceeds.
    pub fn snoc(&self, e: Event) -> Trace {
        Trace {
            events: self.events.snoc(e),
        }
    }

    /// Concatenation `s⌢t`.
    pub fn concat(&self, other: &Trace) -> Trace {
        Trace {
            events: self.events.concat(&other.events),
        }
    }

    /// The prefix order on traces: `s ≤ t ⇔ ∃u. s⌢u = t`.
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        self.events.is_prefix_of(&other.events)
    }

    /// The prefix consisting of the first `n` events.
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            events: self.events.take(n),
        }
    }

    /// All prefixes, shortest first (`#s + 1` of them).
    pub fn prefixes(&self) -> Vec<Trace> {
        self.events
            .prefixes()
            .into_iter()
            .map(|events| Trace { events })
            .collect()
    }

    /// `s\C` — §3.1: "the sequence formed from `s` by omitting all
    /// communications along any of the channels of `C`".
    ///
    /// # Examples
    ///
    /// ```
    /// use csp_trace::{ChannelSet, Trace, Value};
    ///
    /// let s = Trace::parse_like([
    ///     ("input", Value::nat(1)),
    ///     ("wire", Value::nat(1)),
    ///     ("output", Value::nat(1)),
    /// ]);
    /// let hidden: ChannelSet = ["wire"].into_iter().collect();
    /// assert_eq!(s.restrict(&hidden).to_string(), "<input.1, output.1>");
    /// ```
    pub fn restrict(&self, hidden: &ChannelSet) -> Trace {
        Trace {
            events: self.events.filter(|e| !hidden.contains(e.channel())),
        }
    }

    /// The complement of [`restrict`](Self::restrict): keeps only the
    /// communications on channels of `kept`. `s\X` in the parallel-composition
    /// definition of §3.1 is `project` onto the *other* side's channels; we
    /// provide both directions because both readings occur in the paper.
    pub fn project(&self, kept: &ChannelSet) -> Trace {
        Trace {
            events: self.events.filter(|e| kept.contains(e.channel())),
        }
    }

    /// `ch(s)(c)` — the sequence of messages whose communication along `c`
    /// is recorded in `s` (§3.3).
    pub fn messages_on(&self, c: &Channel) -> Seq<Value> {
        self.events
            .iter()
            .filter(|e| e.channel() == c)
            .map(|e| e.value().clone())
            .collect()
    }

    /// `ch(s)` — the full channel-history map of §3.3.
    pub fn history(&self) -> History {
        History::of_trace(self)
    }

    /// The set of channels on which this trace communicates.
    pub fn channels(&self) -> ChannelSet {
        self.events.iter().map(|e| e.channel().clone()).collect()
    }

    /// True if every communication in the trace is on a channel of `alphabet`.
    pub fn is_over(&self, alphabet: &ChannelSet) -> bool {
        self.events.iter().all(|e| alphabet.contains(e.channel()))
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_events(iter)
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_vec().into_iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.events.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(n: u32) -> Value {
        Value::nat(n)
    }

    /// Traces (i)–(iii) of §1.0 for the copier process.
    #[test]
    fn copier_traces_display_as_in_paper() {
        assert_eq!(Trace::empty().to_string(), "<>");
        let t2 = Trace::parse_like([("input", nat(3)), ("wire", nat(3))]);
        assert_eq!(t2.to_string(), "<input.3, wire.3>");
        let t3 = Trace::parse_like([
            ("input", nat(27)),
            ("wire", nat(27)),
            ("input", nat(0)),
            ("wire", nat(0)),
            ("input", nat(3)),
        ]);
        assert_eq!(t3.len(), 5);
        assert_eq!(
            t3.to_string(),
            "<input.27, wire.27, input.0, wire.0, input.3>"
        );
    }

    #[test]
    fn restriction_removes_hidden_channels() {
        let s = Trace::parse_like([
            ("input", nat(1)),
            ("wire", nat(1)),
            ("wire", nat(2)),
            ("output", nat(1)),
        ]);
        let c: ChannelSet = ["wire"].into_iter().collect();
        assert_eq!(s.restrict(&c).to_string(), "<input.1, output.1>");
        // Restricting by nothing is the identity.
        assert_eq!(s.restrict(&ChannelSet::new()), s);
        // Projection is the complementary filter.
        assert_eq!(s.project(&c).to_string(), "<wire.1, wire.2>");
    }

    #[test]
    fn restriction_distributes_over_concat() {
        let a = Trace::parse_like([("x", nat(1)), ("h", nat(9))]);
        let b = Trace::parse_like([("h", nat(8)), ("y", nat(2))]);
        let c: ChannelSet = ["h"].into_iter().collect();
        assert_eq!(
            a.concat(&b).restrict(&c),
            a.restrict(&c).concat(&b.restrict(&c))
        );
    }

    #[test]
    fn messages_on_extracts_per_channel_history() {
        let t = Trace::parse_like([("input", nat(27)), ("wire", nat(27)), ("input", nat(0))]);
        assert_eq!(
            t.messages_on(&Channel::simple("input")).to_string(),
            "<27, 0>"
        );
        assert_eq!(t.messages_on(&Channel::simple("wire")).to_string(), "<27>");
        assert!(t.messages_on(&Channel::simple("nowhere")).is_empty());
    }

    #[test]
    fn prefixes_are_all_prefixes() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        let ps = t.prefixes();
        assert_eq!(ps.len(), 3);
        assert!(ps.iter().all(|p| p.is_prefix_of(&t)));
        assert_eq!(ps[0], Trace::empty());
        assert_eq!(ps[2], t);
    }

    #[test]
    fn channels_and_is_over() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2)), ("a", nat(3))]);
        let cs = t.channels();
        assert_eq!(cs.len(), 2);
        assert!(t.is_over(&cs));
        let just_a: ChannelSet = ["a"].into_iter().collect();
        assert!(!t.is_over(&just_a));
        assert!(Trace::empty().is_over(&ChannelSet::new()));
    }

    #[test]
    fn cons_and_snoc() {
        let t = Trace::parse_like([("b", nat(2))]);
        let e = Event::new(Channel::simple("a"), nat(1));
        assert_eq!(t.cons(e.clone()).to_string(), "<a.1, b.2>");
        assert_eq!(t.snoc(e).to_string(), "<b.2, a.1>");
    }

    #[test]
    fn one_based_event_indexing() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        assert_eq!(t.at(1).unwrap().to_string(), "a.1");
        assert_eq!(t.at(2).unwrap().to_string(), "b.2");
        assert!(t.at(0).is_none());
        assert!(t.at(3).is_none());
    }
}
