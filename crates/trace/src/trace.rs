//! Traces of process behaviour.
//!
//! §1.0: "The sequence of communications in which a process engages up to
//! some moment in time can be recorded as a trace of the behaviour of that
//! process." A [`Trace`] is a finite sequence of [`Event`]s together with
//! the trace-specific operators of §3.1/§3.3: the restriction `s\C`
//! (omitting all communications on channels of `C`), the projection
//! `ch(s)(c)` of the messages passed on one channel, and the full history
//! map `ch(s)`.
//!
//! Representation: a trace is a *view of a shared buffer* — an
//! `Arc<Buf>` holding the events plus a running chain of 64-bit content
//! hashes, and a length. Cloning a trace, taking a prefix (`take`,
//! `prefixes`), hashing it, and extending it along an already-recorded
//! continuation (`snoc` of the event the buffer already holds next) are
//! all O(1); every prefix of a trace shares its storage. This is what
//! lets [`TraceSet`](crate::TraceSet) hold millions of prefix-closed
//! traces without quadratic copying.

use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::fx::fx_mix;
use crate::{Channel, ChannelSet, Event, History, Seq, Value};

/// Chain-hash of the empty trace (an arbitrary odd constant; every
/// non-empty chain hash is derived from it via [`fx_mix`]).
const EMPTY_HASH: u64 = 0x9e37_79b9_7f4a_7c15;

/// The shared storage behind one or more [`Trace`] views.
#[derive(Debug)]
struct Buf {
    /// The recorded events, longest extension first recorded wins.
    events: Vec<Event>,
    /// `hashes[i]` is the chain hash of the prefix `events[..=i]`.
    hashes: Vec<u64>,
}

impl Buf {
    /// Chain hash of the prefix of length `n`.
    #[inline]
    fn hash_at(&self, n: usize) -> u64 {
        if n == 0 {
            EMPTY_HASH
        } else {
            self.hashes[n - 1]
        }
    }
}

fn empty_buf() -> Arc<Buf> {
    static EMPTY: OnceLock<Arc<Buf>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        Arc::new(Buf {
            events: Vec::new(),
            hashes: Vec::new(),
        })
    }))
}

/// A finite trace `⟨c₁.m₁, …, cₙ.mₙ⟩` of communications.
///
/// # Examples
///
/// The example trace of §3.3:
///
/// ```
/// use csp_trace::{Channel, Trace, Value};
///
/// let t = Trace::parse_like([
///     ("input", Value::nat(27)),
///     ("wire", Value::nat(27)),
///     ("input", Value::nat(0)),
///     ("wire", Value::nat(0)),
///     ("input", Value::nat(3)),
/// ]);
/// let h = t.history();
/// assert_eq!(h.on(&Channel::simple("input")).to_string(), "<27, 0, 3>");
/// assert_eq!(h.on(&Channel::simple("wire")).to_string(), "<27, 0>");
/// assert_eq!(h.on(&Channel::simple("output")).to_string(), "<>");
/// ```
#[derive(Clone)]
pub struct Trace {
    buf: Arc<Buf>,
    len: u32,
}

impl Trace {
    /// The empty trace `<>` — a possible behaviour of every process.
    pub fn empty() -> Self {
        Trace {
            buf: empty_buf(),
            len: 0,
        }
    }

    fn from_vec(events: Vec<Event>) -> Self {
        if events.is_empty() {
            return Trace::empty();
        }
        let mut hashes = Vec::with_capacity(events.len());
        let mut h = EMPTY_HASH;
        for e in &events {
            h = fx_mix(h, e.content_hash());
            hashes.push(h);
        }
        let len = u32::try_from(events.len()).expect("trace length fits u32");
        Trace {
            buf: Arc::new(Buf { events, hashes }),
            len,
        }
    }

    /// Builds a trace from any sequence of events.
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I) -> Self {
        Trace::from_vec(events.into_iter().collect())
    }

    /// Convenience constructor from `(channel-name, value)` pairs on
    /// unsubscripted channels, mirroring the paper's `⟨input.3, wire.3⟩`
    /// notation.
    pub fn parse_like<'a, I: IntoIterator<Item = (&'a str, Value)>>(pairs: I) -> Self {
        Trace::from_events(
            pairs
                .into_iter()
                .map(|(c, v)| Event::new(Channel::simple(c), v)),
        )
    }

    /// `#s` — the number of communications recorded.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if this is the empty trace.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`th communication, **1-based** as in the paper.
    pub fn at(&self, i: usize) -> Option<&Event> {
        if i == 0 {
            None
        } else {
            self.events().get(i - 1)
        }
    }

    /// The first communication, if any.
    pub fn head(&self) -> Option<&Event> {
        self.events().first()
    }

    /// The trace after its first communication; `None` on `<>`.
    pub fn tail(&self) -> Option<Trace> {
        if self.is_empty() {
            None
        } else {
            Some(Trace::from_vec(self.events()[1..].to_vec()))
        }
    }

    /// The last communication, if any.
    pub fn last(&self) -> Option<&Event> {
        self.events().last()
    }

    /// Iterates over the events front to back.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events().iter()
    }

    /// A view of the underlying events.
    pub fn events(&self) -> &[Event] {
        &self.buf.events[..self.len as usize]
    }

    /// The structural 64-bit chain hash of this trace: a deterministic
    /// function of the event contents, shared by every copy and
    /// recomputed incrementally on extension. O(1).
    #[inline]
    pub fn hash64(&self) -> u64 {
        self.buf.hash_at(self.len as usize)
    }

    /// `e^s` — the trace with `e` prepended (the shape produced by the
    /// prefix operator `(a → P)` of §3.1).
    pub fn cons(&self, e: Event) -> Trace {
        let mut events = Vec::with_capacity(self.len() + 1);
        events.push(e);
        events.extend_from_slice(self.events());
        Trace::from_vec(events)
    }

    /// The trace with `e` appended — how a recorder extends a trace as a
    /// run proceeds. If the shared buffer already records `e` as the next
    /// communication, the extension is O(1) and allocation-free.
    pub fn snoc(&self, e: Event) -> Trace {
        let n = self.len as usize;
        if let Some(next) = self.buf.events.get(n) {
            if *next == e {
                return Trace {
                    buf: Arc::clone(&self.buf),
                    len: self.len + 1,
                };
            }
        }
        let mut events = Vec::with_capacity(n + 1);
        events.extend_from_slice(self.events());
        events.push(e);
        Trace::from_vec(events)
    }

    /// Concatenation `s⌢t`.
    pub fn concat(&self, other: &Trace) -> Trace {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut events = Vec::with_capacity(self.len() + other.len());
        events.extend_from_slice(self.events());
        events.extend_from_slice(other.events());
        Trace::from_vec(events)
    }

    /// The prefix order on traces: `s ≤ t ⇔ ∃u. s⌢u = t`.
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        let n = self.len as usize;
        if n > other.len() {
            return false;
        }
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return true;
        }
        // Chain hashes give a near-certain fast answer; confirm on match.
        self.hash64() == other.buf.hash_at(n) && self.events() == &other.buf.events[..n]
    }

    /// The prefix consisting of the first `n` events. O(1): the result
    /// shares this trace's buffer.
    pub fn take(&self, n: usize) -> Trace {
        Trace {
            buf: Arc::clone(&self.buf),
            len: self.len.min(u32::try_from(n).unwrap_or(u32::MAX)),
        }
    }

    /// All prefixes, shortest first (`#s + 1` of them). O(#s): every
    /// prefix shares this trace's buffer.
    pub fn prefixes(&self) -> Vec<Trace> {
        (0..=self.len)
            .map(|len| Trace {
                buf: Arc::clone(&self.buf),
                len,
            })
            .collect()
    }

    /// `s\C` — §3.1: "the sequence formed from `s` by omitting all
    /// communications along any of the channels of `C`".
    ///
    /// # Examples
    ///
    /// ```
    /// use csp_trace::{ChannelSet, Trace, Value};
    ///
    /// let s = Trace::parse_like([
    ///     ("input", Value::nat(1)),
    ///     ("wire", Value::nat(1)),
    ///     ("output", Value::nat(1)),
    /// ]);
    /// let hidden: ChannelSet = ["wire"].into_iter().collect();
    /// assert_eq!(s.restrict(&hidden).to_string(), "<input.1, output.1>");
    /// ```
    pub fn restrict(&self, hidden: &ChannelSet) -> Trace {
        if self.iter().all(|e| !hidden.contains(e.channel())) {
            return self.clone();
        }
        Trace::from_events(
            self.iter()
                .filter(|e| !hidden.contains(e.channel()))
                .copied(),
        )
    }

    /// The complement of [`restrict`](Self::restrict): keeps only the
    /// communications on channels of `kept`. `s\X` in the parallel-composition
    /// definition of §3.1 is `project` onto the *other* side's channels; we
    /// provide both directions because both readings occur in the paper.
    pub fn project(&self, kept: &ChannelSet) -> Trace {
        Trace::from_events(self.iter().filter(|e| kept.contains(e.channel())).copied())
    }

    /// `ch(s)(c)` — the sequence of messages whose communication along `c`
    /// is recorded in `s` (§3.3).
    pub fn messages_on(&self, c: &Channel) -> Seq<Value> {
        self.iter()
            .filter(|e| e.channel() == c)
            .map(|e| e.value().clone())
            .collect()
    }

    /// `ch(s)` — the full channel-history map of §3.3.
    pub fn history(&self) -> History {
        History::of_trace(self)
    }

    /// The set of channels on which this trace communicates.
    pub fn channels(&self) -> ChannelSet {
        self.iter().map(|e| e.channel().clone()).collect()
    }

    /// True if every communication in the trace is on a channel of `alphabet`.
    pub fn is_over(&self, alphabet: &ChannelSet) -> bool {
        self.iter().all(|e| alphabet.contains(e.channel()))
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::empty()
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        if Arc::ptr_eq(&self.buf, &other.buf) {
            return true;
        }
        self.hash64() == other.hash64() && self.events() == other.events()
    }
}

impl Eq for Trace {}

impl std::hash::Hash for Trace {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl PartialOrd for Trace {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Trace {
    /// Lexicographic by events under the semantic event order — matching
    /// the order the original `Vec<Event>` representation derived, so
    /// sorted enumerations and displays are unchanged.
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.buf, &other.buf) && self.len == other.len {
            return Ordering::Equal;
        }
        self.events().cmp(other.events())
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_events(iter)
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events().to_vec().into_iter()
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({self})")
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(n: u32) -> Value {
        Value::nat(n)
    }

    /// Traces (i)–(iii) of §1.0 for the copier process.
    #[test]
    fn copier_traces_display_as_in_paper() {
        assert_eq!(Trace::empty().to_string(), "<>");
        let t2 = Trace::parse_like([("input", nat(3)), ("wire", nat(3))]);
        assert_eq!(t2.to_string(), "<input.3, wire.3>");
        let t3 = Trace::parse_like([
            ("input", nat(27)),
            ("wire", nat(27)),
            ("input", nat(0)),
            ("wire", nat(0)),
            ("input", nat(3)),
        ]);
        assert_eq!(t3.len(), 5);
        assert_eq!(
            t3.to_string(),
            "<input.27, wire.27, input.0, wire.0, input.3>"
        );
    }

    #[test]
    fn restriction_removes_hidden_channels() {
        let s = Trace::parse_like([
            ("input", nat(1)),
            ("wire", nat(1)),
            ("wire", nat(2)),
            ("output", nat(1)),
        ]);
        let c: ChannelSet = ["wire"].into_iter().collect();
        assert_eq!(s.restrict(&c).to_string(), "<input.1, output.1>");
        // Restricting by nothing is the identity.
        assert_eq!(s.restrict(&ChannelSet::new()), s);
        // Projection is the complementary filter.
        assert_eq!(s.project(&c).to_string(), "<wire.1, wire.2>");
    }

    #[test]
    fn restriction_distributes_over_concat() {
        let a = Trace::parse_like([("x", nat(1)), ("h", nat(9))]);
        let b = Trace::parse_like([("h", nat(8)), ("y", nat(2))]);
        let c: ChannelSet = ["h"].into_iter().collect();
        assert_eq!(
            a.concat(&b).restrict(&c),
            a.restrict(&c).concat(&b.restrict(&c))
        );
    }

    #[test]
    fn messages_on_extracts_per_channel_history() {
        let t = Trace::parse_like([("input", nat(27)), ("wire", nat(27)), ("input", nat(0))]);
        assert_eq!(
            t.messages_on(&Channel::simple("input")).to_string(),
            "<27, 0>"
        );
        assert_eq!(t.messages_on(&Channel::simple("wire")).to_string(), "<27>");
        assert!(t.messages_on(&Channel::simple("nowhere")).is_empty());
    }

    #[test]
    fn prefixes_are_all_prefixes() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        let ps = t.prefixes();
        assert_eq!(ps.len(), 3);
        assert!(ps.iter().all(|p| p.is_prefix_of(&t)));
        assert_eq!(ps[0], Trace::empty());
        assert_eq!(ps[2], t);
    }

    #[test]
    fn channels_and_is_over() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2)), ("a", nat(3))]);
        let cs = t.channels();
        assert_eq!(cs.len(), 2);
        assert!(t.is_over(&cs));
        let just_a: ChannelSet = ["a"].into_iter().collect();
        assert!(!t.is_over(&just_a));
        assert!(Trace::empty().is_over(&ChannelSet::new()));
    }

    #[test]
    fn cons_and_snoc() {
        let t = Trace::parse_like([("b", nat(2))]);
        let e = Event::new(Channel::simple("a"), nat(1));
        assert_eq!(t.cons(e).to_string(), "<a.1, b.2>");
        assert_eq!(t.snoc(e).to_string(), "<b.2, a.1>");
    }

    #[test]
    fn one_based_event_indexing() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        assert_eq!(t.at(1).unwrap().to_string(), "a.1");
        assert_eq!(t.at(2).unwrap().to_string(), "b.2");
        assert!(t.at(0).is_none());
        assert!(t.at(3).is_none());
    }

    #[test]
    fn prefixes_share_storage_and_resnoc_is_shared() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2)), ("c", nat(3))]);
        let p = t.take(2);
        assert_eq!(p.to_string(), "<a.1, b.2>");
        // Re-appending the event the buffer already records next must
        // yield a view of the same buffer (the O(1) snoc fast path).
        let q = p.snoc(Event::new(Channel::simple("c"), nat(3)));
        assert_eq!(q, t);
        assert!(Arc::ptr_eq(&q.buf, &t.buf));
        // Diverging from the recorded continuation copies.
        let r = p.snoc(Event::new(Channel::simple("d"), nat(4)));
        assert_eq!(r.to_string(), "<a.1, b.2, d.4>");
        assert!(!Arc::ptr_eq(&r.buf, &t.buf));
    }

    #[test]
    fn chain_hash_agrees_between_shared_and_rebuilt_traces() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2)), ("c", nat(3))]);
        let shared_prefix = t.take(2);
        let rebuilt = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        assert_eq!(shared_prefix, rebuilt);
        assert_eq!(shared_prefix.hash64(), rebuilt.hash64());
        assert_eq!(Trace::empty().hash64(), Trace::from_events([]).hash64());
    }

    #[test]
    fn ordering_matches_event_lexicographic_order() {
        let empty = Trace::empty();
        let a = Trace::parse_like([("a", nat(1))]);
        let ab = Trace::parse_like([("a", nat(1)), ("b", nat(2))]);
        let b = Trace::parse_like([("b", nat(2))]);
        let mut v = vec![b.clone(), ab.clone(), empty.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![empty, a, ab, b]);
    }
}
