//! Message values.
//!
//! The paper deliberately leaves the type system open (§1.1 note); message
//! values range over naturals (`NAT`), signal atoms such as `ACK`/`NACK`,
//! and in principle structured data. [`Value`] covers all of these with a
//! total order so values can live in ordered sets and be enumerated
//! deterministically.

use std::fmt;
use std::sync::Arc;

/// A message value communicated along a channel.
///
/// Values are cheap to clone (`Sym` shares its backing string) and totally
/// ordered so that trace sets and message sets can be stored in ordered
/// collections with deterministic iteration order.
///
/// # Examples
///
/// ```
/// use csp_trace::Value;
///
/// let three = Value::nat(3);
/// let ack = Value::sym("ACK");
/// assert_eq!(three.to_string(), "3");
/// assert_eq!(ack.to_string(), "ACK");
/// assert!(three.as_int().is_some());
/// assert!(ack.as_int().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer. The paper's examples use `NAT`, but intermediate
    /// arithmetic (e.g. `3 × i + j`) is naturally integer-valued.
    Int(i64),
    /// A boolean, used by derived expressions in assertions.
    Bool(bool),
    /// A signal atom such as `ACK` or `NACK` (§1.1 example (4)).
    Sym(Arc<str>),
    /// A tuple of values, for structured messages.
    Tuple(Vec<Value>),
}

impl Value {
    /// Creates a natural-number value.
    ///
    /// # Examples
    ///
    /// ```
    /// # use csp_trace::Value;
    /// assert_eq!(Value::nat(7), Value::Int(7));
    /// ```
    pub fn nat(n: u32) -> Self {
        Value::Int(i64::from(n))
    }

    /// Creates a signal atom such as `ACK`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use csp_trace::Value;
    /// let a = Value::sym("ACK");
    /// let b = Value::sym("ACK");
    /// assert_eq!(a, b);
    /// ```
    pub fn sym(name: &str) -> Self {
        Value::Sym(Arc::from(name))
    }

    /// Returns the integer content, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean content, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the symbol name, if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is a non-negative integer, i.e. an element of the
    /// paper's `NAT`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use csp_trace::Value;
    /// assert!(Value::nat(0).is_nat());
    /// assert!(!Value::Int(-1).is_nat());
    /// assert!(!Value::sym("ACK").is_nat());
    /// ```
    pub fn is_nat(&self) -> bool {
        matches!(self, Value::Int(n) if *n >= 0)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nat_constructor_yields_int() {
        assert_eq!(Value::nat(3), Value::Int(3));
        assert_eq!(Value::nat(0), Value::Int(0));
    }

    #[test]
    fn sym_equality_is_structural() {
        assert_eq!(Value::sym("ACK"), Value::sym("ACK"));
        assert_ne!(Value::sym("ACK"), Value::sym("NACK"));
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::sym("x").as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::sym("ACK").as_sym(), Some("ACK"));
        assert_eq!(Value::Int(1).as_sym(), None);
    }

    #[test]
    fn is_nat_excludes_negatives_and_symbols() {
        assert!(Value::Int(0).is_nat());
        assert!(Value::Int(41).is_nat());
        assert!(!Value::Int(-3).is_nat());
        assert!(!Value::Bool(true).is_nat());
        assert!(!Value::sym("NACK").is_nat());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::sym("ACK").to_string(), "ACK");
        assert_eq!(
            Value::Tuple(vec![Value::Int(1), Value::sym("a")]).to_string(),
            "(1, a)"
        );
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::sym("b"),
            Value::Int(2),
            Value::Int(1),
            Value::sym("a"),
        ];
        vs.sort();
        // All ints sort before all syms (variant order), ints numerically,
        // syms lexicographically.
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::sym("a"),
                Value::sym("b")
            ]
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(9i64), Value::Int(9));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("ACK"), Value::sym("ACK"));
    }
}
