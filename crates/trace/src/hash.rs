//! The workspace's canonical FNV-1a content hashing.
//!
//! One 64-bit FNV-1a implementation, shared by every layer that
//! content-addresses data: the incremental analysis database keys
//! per-definition results on [`content_hash`], and the verification
//! service's cross-request cache builds compound keys with the
//! length-prefixed [`hash_field`] chain. Keeping a single definition here
//! (the bottom of the crate graph) guarantees that a hash computed by one
//! layer can be recomputed bit-for-bit by any other — the property the
//! cross-request cache's correctness rests on.

/// The FNV-1a offset basis — the seed for [`hash_field`] chains and the
/// initial state of [`content_hash`].
pub const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a of one byte string — tiny, dependency-free, and plenty
/// for change detection on definition-sized inputs.
pub fn content_hash(bytes: &[u8]) -> u64 {
    fold(HASH_SEED, bytes)
}

/// Extends a running FNV-1a hash with one more field, separator
/// included — the canonical way compound cache keys are built from
/// `(endpoint, source, parameters)` tuples so that no concatenation of
/// fields can collide with a different split of the same bytes.
pub fn hash_field(h: u64, bytes: &[u8]) -> u64 {
    // Length prefix acts as an unambiguous separator.
    fold(fold(h, &(bytes.len() as u64).to_le_bytes()), bytes)
}

fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_fields_do_not_collide_across_splits() {
        // ("ab","c") and ("a","bc") must key differently.
        let k1 = hash_field(hash_field(HASH_SEED, b"ab"), b"c");
        let k2 = hash_field(hash_field(HASH_SEED, b"a"), b"bc");
        assert_ne!(k1, k2);
        // And a single field agrees with nothing else by construction.
        assert_ne!(hash_field(HASH_SEED, b""), HASH_SEED);
    }
}
