//! # csp-trace
//!
//! Trace substrate for the Zhou & Hoare (1981) model of Communicating
//! Sequential Processes, *Partial Correctness of Communicating Sequential
//! Processes*.
//!
//! In the paper a process is identified with the set of all possible
//! *traces* of its communications: a communication is a pair `c.m` of a
//! channel name `c` and a message value `m` (§1.0), a trace is a finite
//! sequence of communications, and the meaning of a process is a
//! *prefix-closed* set of traces (§3.1).
//!
//! This crate provides those ground objects and every operation on them
//! that the paper uses:
//!
//! * [`Value`] — message values (naturals, signals such as `ACK`, tuples),
//! * [`Channel`] — possibly-subscripted channel names such as `col[2]`,
//! * [`Event`] — a communication `c.m`,
//! * [`Trace`] — a finite sequence of events,
//! * [`Seq`] — the generic sequence algebra of §2 (`x^s`, `#s`, `s_i`,
//!   prefix `s ≤ t`, concatenation),
//! * [`History`] — the channel-history map `ch(s)` of §3.3,
//! * [`TraceSet`] — finite prefix-closed trace sets with the operators of
//!   §3.1 (`s\C` restriction, interleaving-based padding, union,
//!   intersection).
//!
//! Everything here is finite and concrete; symbolic/unbounded reasoning
//! lives in the `csp-assert` and `csp-proof` crates.
//!
//! ```
//! use csp_trace::{Channel, Event, Trace, Value};
//!
//! let input = Channel::simple("input");
//! let wire = Channel::simple("wire");
//! let t = Trace::from_events([
//!     Event::new(input.clone(), Value::nat(3)),
//!     Event::new(wire.clone(), Value::nat(3)),
//! ]);
//! assert_eq!(t.to_string(), "<input.3, wire.3>");
//! assert_eq!(t.history().on(&input).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod display;
mod event;
pub mod fx;
pub mod hash;
mod history;
mod interleave;
mod intern;
mod naive;
mod seq;
pub mod stats;
mod trace;
mod traceset;
mod value;

pub use channel::{Channel, ChannelSet};
pub use display::timeline;
pub use event::Event;
pub use fx::{FxHashMap, FxHashSet};
pub use history::History;
pub use interleave::{interleave_pair, Interleavings};
pub use intern::interned_events;
pub use naive::NaiveTraceSet;
pub use seq::Seq;
pub use stats::OpStats;
pub use trace::Trace;
pub use traceset::TraceSet;
pub use value::Value;
