//! Channel histories — the `ch(s)` map of §3.3.
//!
//! "We define `ch(s)` as the function which maps every channel name `c`
//! onto the sequence of messages whose communication along `c` is recorded
//! in `s`." A [`History`] is that function, represented finitely: channels
//! not mentioned map to `<>`.
//!
//! Assertions (`csp-assert`) are evaluated in an environment extended by a
//! history: the free channel names of an assertion denote exactly these
//! per-channel message sequences.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Channel, Seq, Trace, Value};

/// The channel-history function `ch(s)`: channel name → sequence of
/// messages communicated on it so far.
///
/// # Examples
///
/// ```
/// use csp_trace::{Channel, History, Trace, Value};
///
/// let s = Trace::parse_like([
///     ("input", Value::nat(27)),
///     ("wire", Value::nat(27)),
///     ("input", Value::nat(0)),
/// ]);
/// let h = History::of_trace(&s);
/// assert_eq!(h.on(&Channel::simple("input")).to_string(), "<27, 0>");
/// // Channels not mentioned in s map to the empty sequence:
/// assert_eq!(h.on(&Channel::simple("output")).to_string(), "<>");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    sequences: BTreeMap<Channel, Seq<Value>>,
}

impl History {
    /// `ch(<>)` — the history in which every channel is empty.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Computes `ch(s)` for a trace `s`.
    pub fn of_trace(trace: &Trace) -> Self {
        let mut h = History::empty();
        for e in trace.iter() {
            h.push(e.channel().clone(), e.value().clone());
        }
        h
    }

    /// `ch(s)(c)` — the messages recorded on channel `c`, `<>` if none.
    pub fn on(&self, c: &Channel) -> Seq<Value> {
        self.sequences.get(c).cloned().unwrap_or_default()
    }

    /// Borrowing variant of [`on`](Self::on); `None` means `<>`.
    pub fn get(&self, c: &Channel) -> Option<&Seq<Value>> {
        self.sequences.get(c)
    }

    /// Appends one message to the history of `c` — how `ch` evolves as a
    /// trace is extended at the back.
    pub fn push(&mut self, c: Channel, v: Value) {
        self.sequences.entry(c).or_default().extend([v]);
    }

    /// Replaces the history of channel `c` wholesale. Used by the
    /// substitution lemmas of §3.4, where `R^c_{e^c}` is evaluated by
    /// consing `e` onto `c`'s history.
    pub fn set(&mut self, c: Channel, s: Seq<Value>) {
        if s.is_empty() {
            self.sequences.remove(&c);
        } else {
            self.sequences.insert(c, s);
        }
    }

    /// The history with `v` *consed onto the front* of channel `c`'s
    /// sequence — the semantic counterpart of the output rule's
    /// substitution `R^c_{e^c}` (lemma (c) of §3.4:
    /// `(ρ + ch(s))[R^c_{e^c}] = (ρ + ch((c.e)^s))[R]`).
    pub fn cons_on(&self, c: &Channel, v: Value) -> History {
        let mut out = self.clone();
        let s = out.on(c).cons(v);
        out.set(c.clone(), s);
        out
    }

    /// Channels with a non-empty recorded history, in sorted order.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.sequences.keys()
    }

    /// Number of channels with non-empty history.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True if every channel maps to `<>`.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Iterates over `(channel, messages)` pairs in sorted channel order.
    pub fn iter(&self) -> impl Iterator<Item = (&Channel, &Seq<Value>)> {
        self.sequences.iter()
    }

    /// Total number of messages across all channels. Equal to `#s` for
    /// `ch(s)` because every communication lands on exactly one channel.
    pub fn total_messages(&self) -> usize {
        self.sequences.values().map(Seq::len).sum()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, s)) in self.sequences.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c} ↦ {s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(n: u32) -> Value {
        Value::nat(n)
    }

    /// The worked `ch(s)` example of §3.3.
    #[test]
    fn section_3_3_example() {
        let s = Trace::parse_like([
            ("input", nat(27)),
            ("wire", nat(27)),
            ("input", nat(0)),
            ("wire", nat(0)),
            ("input", nat(3)),
        ]);
        let h = History::of_trace(&s);
        assert_eq!(h.on(&Channel::simple("input")).to_string(), "<27, 0, 3>");
        assert_eq!(h.on(&Channel::simple("wire")).to_string(), "<27, 0>");
        assert_eq!(h.on(&Channel::simple("anything-else")).to_string(), "<>");
    }

    #[test]
    fn empty_history_maps_everything_to_empty() {
        let h = History::empty();
        assert!(h.is_empty());
        assert!(h.on(&Channel::simple("wire")).is_empty());
        assert_eq!(h.total_messages(), 0);
    }

    #[test]
    fn push_appends_in_order() {
        let mut h = History::empty();
        let c = Channel::simple("wire");
        h.push(c.clone(), nat(1));
        h.push(c.clone(), nat(2));
        assert_eq!(h.on(&c).to_string(), "<1, 2>");
        assert_eq!(h.total_messages(), 2);
    }

    #[test]
    fn cons_on_prepends_like_output_substitution() {
        // ch((c.e)^s)(c) = e ^ ch(s)(c)   — recursive clause of ch in §3.3.
        let s = Trace::parse_like([("wire", nat(2))]);
        let h = History::of_trace(&s);
        let c = Channel::simple("wire");
        let h2 = h.cons_on(&c, nat(1));
        assert_eq!(h2.on(&c).to_string(), "<1, 2>");
        // Other channels unaffected:
        assert!(h2.on(&Channel::simple("input")).is_empty());
        // Original unchanged (value semantics):
        assert_eq!(h.on(&c).to_string(), "<2>");
    }

    #[test]
    fn ch_respects_restriction_lemma_d() {
        // Lemma (d) §3.4: ch(s)(c) = ch(s\C)(c) whenever c ∉ C.
        let s = Trace::parse_like([("a", nat(1)), ("h", nat(5)), ("a", nat(2)), ("h", nat(6))]);
        let hidden: crate::ChannelSet = ["h"].into_iter().collect();
        let restricted = s.restrict(&hidden);
        let c = Channel::simple("a");
        assert_eq!(
            History::of_trace(&s).on(&c),
            History::of_trace(&restricted).on(&c)
        );
    }

    #[test]
    fn set_with_empty_sequence_removes_entry() {
        let mut h = History::empty();
        let c = Channel::simple("x");
        h.push(c.clone(), nat(1));
        assert_eq!(h.len(), 1);
        h.set(c.clone(), Seq::empty());
        assert!(h.is_empty());
        // Equal to a genuinely fresh empty history.
        assert_eq!(h, History::empty());
    }

    #[test]
    fn history_of_trace_equals_incremental_pushes() {
        let t = Trace::parse_like([("a", nat(1)), ("b", nat(2)), ("a", nat(3))]);
        let mut h = History::empty();
        for e in t.iter() {
            h.push(e.channel().clone(), e.value().clone());
        }
        assert_eq!(h, t.history());
    }

    #[test]
    fn display_lists_sorted_channels() {
        let t = Trace::parse_like([("b", nat(2)), ("a", nat(1))]);
        assert_eq!(t.history().to_string(), "{a ↦ <1>, b ↦ <2>}");
    }
}
