//! The retained `BTreeSet` reference implementation of trace sets.
//!
//! [`NaiveTraceSet`] is the crate's previous [`TraceSet`] implementation,
//! kept verbatim as an executable specification: every operator is the
//! direct transcription of its §3.1 definition over an ordered set, with
//! none of the hashed-set representation tricks of the production type
//! (shared buffers, chain hashes, parent-index maximality). The
//! equivalence harness in `tests/equiv_naive.rs` checks, operator by
//! operator and on randomly generated inputs, that [`TraceSet`] and
//! `NaiveTraceSet` denote the same sets.
//!
//! Keep this module boring. Any optimisation applied here would defeat
//! its purpose as an oracle.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{ChannelSet, Event, Trace, TraceSet};

/// A finite, prefix-closed set of traces over an ordered set — the
/// reference oracle for [`TraceSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveTraceSet {
    traces: BTreeSet<Trace>,
}

impl NaiveTraceSet {
    /// `{<>}` — the denotation of `STOP`.
    pub fn stop() -> Self {
        let mut traces = BTreeSet::new();
        traces.insert(Trace::empty());
        NaiveTraceSet { traces }
    }

    /// Builds a prefix-closed set by closing the input under prefixes.
    pub fn closure_of<I: IntoIterator<Item = Trace>>(traces: I) -> Self {
        let mut set = NaiveTraceSet::stop();
        for t in traces {
            for p in t.prefixes() {
                set.traces.insert(p);
            }
        }
        set
    }

    /// Number of traces in the set.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Mirrors the collection convention; never true for a closure.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Trace) -> bool {
        self.traces.contains(t)
    }

    /// Iterates in sorted order (the `BTreeSet` order).
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// The two §3.1 closure conditions, checked by definition.
    pub fn is_prefix_closed(&self) -> bool {
        self.traces.contains(&Trace::empty())
            && self
                .traces
                .iter()
                .all(|t| t.is_empty() || self.traces.contains(&t.take(t.len() - 1)))
    }

    /// `(a → P) = {<>} ∪ {a^s | s ∈ P}` — §3.1, transcribed.
    pub fn prefixed(&self, a: Event) -> NaiveTraceSet {
        let mut traces = BTreeSet::new();
        traces.insert(Trace::empty());
        for s in &self.traces {
            traces.insert(s.cons(a));
        }
        NaiveTraceSet { traces }
    }

    /// Binary union.
    pub fn union(&self, other: &NaiveTraceSet) -> NaiveTraceSet {
        NaiveTraceSet {
            traces: self.traces.union(&other.traces).cloned().collect(),
        }
    }

    /// Binary intersection.
    pub fn intersection(&self, other: &NaiveTraceSet) -> NaiveTraceSet {
        NaiveTraceSet {
            traces: self.traces.intersection(&other.traces).cloned().collect(),
        }
    }

    /// Subset test.
    pub fn is_subset(&self, other: &NaiveTraceSet) -> bool {
        self.traces.is_subset(&other.traces)
    }

    /// `P\C = {s\C | s ∈ P}` — the image under restriction.
    pub fn hide(&self, hidden: &ChannelSet) -> NaiveTraceSet {
        NaiveTraceSet {
            traces: self.traces.iter().map(|t| t.restrict(hidden)).collect(),
        }
    }

    /// Alphabetised parallel composition by synchronised merge over the
    /// ordered child index — algorithmically the same exploration as
    /// [`TraceSet::parallel`], on the ordered-set substrate.
    pub fn parallel(&self, x: &ChannelSet, other: &NaiveTraceSet, y: &ChannelSet) -> NaiveTraceSet {
        let sync = x.intersection(y);
        let kids_p = self.children_index();
        let kids_q = other.children_index();
        let mut out = BTreeSet::new();
        let mut queue = vec![(Trace::empty(), Trace::empty(), Trace::empty())];
        out.insert(Trace::empty());
        while let Some((s, pp, qq)) = queue.pop() {
            let empty = Vec::new();
            let p_next = kids_p.get(&pp).unwrap_or(&empty);
            let q_next = kids_q.get(&qq).unwrap_or(&empty);
            for &e in p_next {
                let joint = sync.contains(e.channel());
                if joint && !q_next.contains(&e) {
                    continue;
                }
                let s2 = s.snoc(e);
                if out.insert(s2.clone()) {
                    let qq2 = if joint { qq.snoc(e) } else { qq.clone() };
                    queue.push((s2, pp.snoc(e), qq2));
                }
            }
            for &e in q_next {
                if sync.contains(e.channel()) {
                    continue;
                }
                let s2 = s.snoc(e);
                if out.insert(s2.clone()) {
                    queue.push((s2, pp.clone(), qq.snoc(e)));
                }
            }
        }
        NaiveTraceSet { traces: out }
    }

    fn children_index(&self) -> BTreeMap<Trace, Vec<Event>> {
        let mut index: BTreeMap<Trace, Vec<Event>> = BTreeMap::new();
        for t in &self.traces {
            if let Some(&last) = t.last() {
                index.entry(t.take(t.len() - 1)).or_default().push(last);
            }
        }
        index
    }

    /// The maximal traces, by the quantified definition: members that are
    /// not a strict prefix of any other member. Quadratic on purpose.
    pub fn maximal_traces(&self) -> Vec<&Trace> {
        self.traces
            .iter()
            .filter(|t| {
                !self
                    .traces
                    .iter()
                    .any(|u| t.is_prefix_of(u) && u.len() > t.len())
            })
            .collect()
    }

    /// The length of the longest member trace.
    pub fn depth(&self) -> usize {
        self.traces.iter().map(Trace::len).max().unwrap_or(0)
    }

    /// Converts to the production representation.
    pub fn to_trace_set(&self) -> TraceSet {
        TraceSet::closure_of(self.traces.iter().cloned())
    }

    /// Builds the oracle from a production set.
    pub fn of_trace_set(ts: &TraceSet) -> NaiveTraceSet {
        NaiveTraceSet {
            traces: ts.iter_unordered().cloned().collect(),
        }
    }

    /// True when this oracle and the production set denote the same set
    /// of traces (checked extensionally, both directions).
    pub fn agrees_with(&self, ts: &TraceSet) -> bool {
        self.len() == ts.len()
            && self.traces.iter().all(|t| ts.contains(t))
            && ts.iter_unordered().all(|t| self.traces.contains(t))
    }
}

impl Default for NaiveTraceSet {
    fn default() -> Self {
        NaiveTraceSet::stop()
    }
}

impl FromIterator<Trace> for NaiveTraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        NaiveTraceSet::closure_of(iter)
    }
}

impl fmt::Display for NaiveTraceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for t in &self.traces {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, Value};

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn oracle_round_trips_through_production_set() {
        let naive = NaiveTraceSet::closure_of([tr(&[("a", 1), ("b", 2)]), tr(&[("c", 3)])]);
        let prod = naive.to_trace_set();
        assert!(naive.agrees_with(&prod));
        assert_eq!(NaiveTraceSet::of_trace_set(&prod), naive);
    }

    #[test]
    fn oracle_parallel_agrees_on_the_copier() {
        let p = tr(&[("in", 1), ("w", 1)]);
        let q = tr(&[("w", 1), ("out", 1)]);
        let x: ChannelSet = ["in", "w"].into_iter().collect();
        let y: ChannelSet = ["w", "out"].into_iter().collect();
        let naive = NaiveTraceSet::closure_of([p.clone()]).parallel(
            &x,
            &NaiveTraceSet::closure_of([q.clone()]),
            &y,
        );
        let prod = TraceSet::closure_of([p]).parallel(&x, &TraceSet::closure_of([q]), &y);
        assert!(naive.agrees_with(&prod));
        assert!(naive.contains(&tr(&[("in", 1), ("w", 1), ("out", 1)])));
    }

    #[test]
    fn oracle_is_boring_and_closed() {
        let s = NaiveTraceSet::closure_of([Trace::from_events([Event::new(
            Channel::simple("a"),
            Value::nat(1),
        )])]);
        assert!(s.is_prefix_closed());
        assert_eq!(s.maximal_traces().len(), 1);
        assert_eq!(s.depth(), 1);
    }
}
