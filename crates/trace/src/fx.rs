//! A fast, deterministic, non-cryptographic hasher (the `FxHash`
//! algorithm from the Firefox/rustc tradition) plus `HashMap`/`HashSet`
//! aliases built on it.
//!
//! The trace engine hashes interned ids and precomputed 64-bit trace
//! hashes on every set operation, so the default SipHash of `std` —
//! designed to resist adversarial keys — is pure overhead here. FxHash
//! is unseeded, so iteration order of the aliased collections depends
//! only on the inserted values and the insertion history, never on
//! process-level randomness: repeated runs see identical behaviour.
//! (The build environment is offline, so the `fxhash`/`rustc-hash`
//! crates are reimplemented here; the algorithm is a few lines.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier FxHash derives its avalanche from (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Mixes one 64-bit word into a running FxHash state.
#[inline]
pub fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Streaming FxHash state implementing [`std::hash::Hasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte chunk"));
            self.hash = fx_mix(self.hash, word);
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.hash = fx_mix(self.hash, u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = fx_mix(self.hash, n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = fx_mix(self.hash, u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = fx_mix(self.hash, u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = fx_mix(self.hash, n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(x: &T) -> u64 {
        let mut h = FxHasher::default();
        x.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&"wire"), hash_of(&"wire"));
        assert_eq!(hash_of(&(1u64, "a")), hash_of(&(1u64, "a")));
        assert_ne!(hash_of(&"wire"), hash_of(&"input"));
    }

    #[test]
    fn unaligned_tails_are_hashed() {
        // 9 bytes: one full word plus a 1-byte tail.
        assert_ne!(hash_of(&[0u8; 9][..]), hash_of(&[1u8; 9][..]));
    }

    #[test]
    fn collections_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u32> = [1, 2, 3].into_iter().collect();
        assert!(s.contains(&2));
    }
}
