//! Communications (events).
//!
//! §1.0: "Each communication between a process and one of its neighbours
//! … is denoted as a pair `c.m`, where `m` is the value of the message and
//! `c` is the name of the channel along which it passes." Transmission and
//! receipt are *the same event*, occurring only when all parties are ready.

use std::fmt;

use crate::{Channel, Value};

/// A single communication `c.m`: message value `m` passing on channel `c`.
///
/// # Examples
///
/// ```
/// use csp_trace::{Channel, Event, Value};
///
/// let e = Event::new(Channel::simple("wire"), Value::sym("ACK"));
/// assert_eq!(e.to_string(), "wire.ACK");
/// assert_eq!(e.channel().base(), "wire");
/// assert_eq!(e.value(), &Value::sym("ACK"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    channel: Channel,
    value: Value,
}

impl Event {
    /// Creates the communication `channel.value`.
    pub fn new(channel: Channel, value: Value) -> Self {
        Event { channel, value }
    }

    /// The channel the message passed on.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The message value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Splits the event into its channel and value.
    pub fn into_parts(self) -> (Channel, Value) {
        (self.channel, self.value)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.channel, self.value)
    }
}

/// Convenience constructor used pervasively in tests and examples:
/// `ev("wire", Value::nat(3))` is `wire.3`.
impl From<(&str, Value)> for Event {
    fn from((c, v): (&str, Value)) -> Self {
        Event::new(Channel::simple(c), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_channel_dot_message() {
        // "output.3" denotes communication of the value 3 on the channel
        // named "output" (§1.0).
        let e = Event::new(Channel::simple("output"), Value::nat(3));
        assert_eq!(e.to_string(), "output.3");
        let w = Event::new(Channel::simple("wire"), Value::sym("ACK"));
        assert_eq!(w.to_string(), "wire.ACK");
    }

    #[test]
    fn same_value_different_channel_is_different_event() {
        // §1.0: "input.3" denotes communication of the same value on a
        // *different* channel.
        let a = Event::new(Channel::simple("output"), Value::nat(3));
        let b = Event::new(Channel::simple("input"), Value::nat(3));
        assert_ne!(a, b);
    }

    #[test]
    fn into_parts_roundtrip() {
        let e = Event::new(Channel::indexed("col", 2), Value::nat(5));
        let (c, v) = e.clone().into_parts();
        assert_eq!(Event::new(c, v), e);
    }

    #[test]
    fn tuple_conversion() {
        let e: Event = ("wire", Value::nat(1)).into();
        assert_eq!(e.channel(), &Channel::simple("wire"));
    }
}
