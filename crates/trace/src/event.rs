//! Communications (events).
//!
//! §1.0: "Each communication between a process and one of its neighbours
//! … is denoted as a pair `c.m`, where `m` is the value of the message and
//! `c` is the name of the channel along which it passes." Transmission and
//! receipt are *the same event*, occurring only when all parties are ready.
//!
//! Events are **interned**: each distinct `(channel, value)` pair is
//! stored once for the process lifetime (see [`crate::intern`]), and an
//! [`Event`] is a single pointer to that record. Events are therefore
//! `Copy`, equality is a pointer comparison, and hashing reuses a
//! precomputed digest — the properties the trace-set engine's hot paths
//! are built on. The comparison order ([`Ord`]) remains the semantic
//! `(channel, value)` order so displays and sorted enumerations are
//! independent of interning history.

use std::cmp::Ordering;
use std::fmt;

use crate::intern::{intern, EventData};
use crate::{Channel, Value};

/// A single communication `c.m`: message value `m` passing on channel `c`.
///
/// # Examples
///
/// ```
/// use csp_trace::{Channel, Event, Value};
///
/// let e = Event::new(Channel::simple("wire"), Value::sym("ACK"));
/// assert_eq!(e.to_string(), "wire.ACK");
/// assert_eq!(e.channel().base(), "wire");
/// assert_eq!(e.value(), &Value::sym("ACK"));
/// ```
#[derive(Clone, Copy)]
pub struct Event {
    data: &'static EventData,
}

impl Event {
    /// Creates (or re-uses) the communication `channel.value`.
    pub fn new(channel: Channel, value: Value) -> Self {
        Event {
            data: intern(channel, value),
        }
    }

    /// The channel the message passed on.
    pub fn channel(&self) -> &Channel {
        &self.data.channel
    }

    /// The message value.
    pub fn value(&self) -> &Value {
        &self.data.value
    }

    /// Splits the event into its channel and value.
    pub fn into_parts(self) -> (Channel, Value) {
        (self.data.channel.clone(), self.data.value.clone())
    }

    /// The deterministic 64-bit digest of this event's content, shared
    /// with every copy of the event. Trace hashes are chained from it.
    #[inline]
    pub fn content_hash(&self) -> u64 {
        self.data.content_hash
    }

    /// The interner sequence number — unique in this process, but not
    /// stable across runs. Diagnostics only.
    pub fn intern_id(&self) -> u32 {
        self.data.id
    }
}

impl PartialEq for Event {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

impl Eq for Event {}

impl std::hash::Hash for Event {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.data.content_hash);
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        if std::ptr::eq(self.data, other.data) {
            return Ordering::Equal;
        }
        (self.channel(), self.value()).cmp(&(other.channel(), other.value()))
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("channel", self.channel())
            .field("value", self.value())
            .finish()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.channel(), self.value())
    }
}

/// Convenience constructor used pervasively in tests and examples:
/// `ev("wire", Value::nat(3))` is `wire.3`.
impl From<(&str, Value)> for Event {
    fn from((c, v): (&str, Value)) -> Self {
        Event::new(Channel::simple(c), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_channel_dot_message() {
        // "output.3" denotes communication of the value 3 on the channel
        // named "output" (§1.0).
        let e = Event::new(Channel::simple("output"), Value::nat(3));
        assert_eq!(e.to_string(), "output.3");
        let w = Event::new(Channel::simple("wire"), Value::sym("ACK"));
        assert_eq!(w.to_string(), "wire.ACK");
    }

    #[test]
    fn same_value_different_channel_is_different_event() {
        // §1.0: "input.3" denotes communication of the same value on a
        // *different* channel.
        let a = Event::new(Channel::simple("output"), Value::nat(3));
        let b = Event::new(Channel::simple("input"), Value::nat(3));
        assert_ne!(a, b);
    }

    #[test]
    fn into_parts_roundtrip() {
        let e = Event::new(Channel::indexed("col", 2), Value::nat(5));
        let (c, v) = e.into_parts();
        assert_eq!(Event::new(c, v), e);
    }

    #[test]
    fn tuple_conversion() {
        let e: Event = ("wire", Value::nat(1)).into();
        assert_eq!(e.channel(), &Channel::simple("wire"));
    }

    #[test]
    fn interning_makes_equality_pointer_cheap() {
        let a = Event::new(Channel::simple("etest_c"), Value::nat(9));
        let b = Event::new(Channel::simple("etest_c"), Value::nat(9));
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.intern_id(), b.intern_id());
    }

    #[test]
    fn ordering_is_semantic_not_interning_order() {
        // Intern in reverse lexicographic order; Ord must still sort by
        // (channel, value).
        let z = Event::new(Channel::simple("etest_z"), Value::nat(0));
        let a = Event::new(Channel::simple("etest_a"), Value::nat(0));
        let a1 = Event::new(Channel::simple("etest_a"), Value::nat(1));
        let mut v = vec![z, a1, a];
        v.sort();
        assert_eq!(v, vec![a, a1, z]);
    }
}
