//! Trace interleavings.
//!
//! §3.1 uses interleaving implicitly: if `P` contains no communication on
//! channels of `C`, the padded set `P↑C` "is the set of traces formed by
//! interleaving a trace of `P` with an arbitrary sequence of communications
//! on the channels of `C`". [`interleave_pair`] enumerates all order-
//! preserving merges of two traces; the semantics crate builds the padding
//! operator from it.

use crate::Trace;

/// An iterator over all interleavings of two traces, produced in a
/// deterministic (left-biased, depth-first) order.
///
/// The number of interleavings of traces of lengths `m` and `n` is the
/// binomial coefficient `C(m+n, m)`, so callers should keep operand traces
/// short (they are bounded by the enumeration depth everywhere this is
/// used).
#[derive(Debug)]
pub struct Interleavings {
    /// Stack of partial merges: (built-prefix, remaining-left-index,
    /// remaining-right-index), explored depth-first.
    stack: Vec<(Vec<usize>, usize, usize)>,
    left: Trace,
    right: Trace,
}

impl Interleavings {
    /// Creates the iterator over all interleavings of `left` and `right`.
    pub fn new(left: Trace, right: Trace) -> Self {
        Interleavings {
            stack: vec![(Vec::new(), 0, 0)],
            left,
            right,
        }
    }
}

impl Iterator for Interleavings {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        while let Some((prefix, i, j)) = self.stack.pop() {
            let nl = self.left.len();
            let nr = self.right.len();
            if i == nl && j == nr {
                // prefix encodes a complete merge; decode choice bits.
                let mut li = 0usize;
                let mut ri = 0usize;
                let mut out = Vec::with_capacity(nl + nr);
                for &choice in &prefix {
                    if choice == 0 {
                        out.push(*self.left.at(li + 1).expect("left index in range"));
                        li += 1;
                    } else {
                        out.push(*self.right.at(ri + 1).expect("right index in range"));
                        ri += 1;
                    }
                }
                return Some(Trace::from_events(out));
            }
            // Push right-choice first so left-biased orders pop first.
            if j < nr {
                let mut p = prefix.clone();
                p.push(1);
                self.stack.push((p, i, j + 1));
            }
            if i < nl {
                let mut p = prefix;
                p.push(0);
                self.stack.push((p, i + 1, j));
            }
        }
        None
    }
}

/// Collects every order-preserving merge of `left` and `right`.
///
/// # Examples
///
/// ```
/// use csp_trace::{interleave_pair, Trace, Value};
///
/// let l = Trace::parse_like([("a", Value::nat(1))]);
/// let r = Trace::parse_like([("b", Value::nat(2))]);
/// let merges = interleave_pair(&l, &r);
/// assert_eq!(merges.len(), 2); // <a.1,b.2> and <b.2,a.1>
/// ```
pub fn interleave_pair(left: &Trace, right: &Trace) -> Vec<Trace> {
    Interleavings::new(left.clone(), right.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn interleave_with_empty_is_identity() {
        let t = tr(&[("a", 1), ("b", 2)]);
        assert_eq!(interleave_pair(&t, &Trace::empty()), vec![t.clone()]);
        assert_eq!(interleave_pair(&Trace::empty(), &t), vec![t]);
    }

    #[test]
    fn counts_are_binomial() {
        let l = tr(&[("a", 1), ("a", 2)]);
        let r = tr(&[("b", 1), ("b", 2), ("b", 3)]);
        // C(5, 2) = 10.
        assert_eq!(interleave_pair(&l, &r).len(), 10);
    }

    #[test]
    fn merges_preserve_relative_order() {
        let l = tr(&[("a", 1), ("a", 2)]);
        let r = tr(&[("b", 9)]);
        for m in interleave_pair(&l, &r) {
            let positions: Vec<usize> = m
                .iter()
                .enumerate()
                .filter(|(_, e)| e.channel().base() == "a")
                .map(|(i, _)| i)
                .collect();
            assert_eq!(positions.len(), 2);
            assert!(positions[0] < positions[1]);
            // a.1 before a.2:
            assert_eq!(m.at(positions[0] + 1).unwrap().value(), &Value::nat(1));
        }
    }

    #[test]
    fn all_merges_distinct_for_distinct_events() {
        let l = tr(&[("a", 1)]);
        let r = tr(&[("b", 2), ("c", 3)]);
        let ms = interleave_pair(&l, &r);
        assert_eq!(ms.len(), 3);
        let mut sorted = ms.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn left_biased_first_result() {
        let l = tr(&[("a", 1)]);
        let r = tr(&[("b", 2)]);
        let first = Interleavings::new(l, r).next().unwrap();
        assert_eq!(first.to_string(), "<a.1, b.2>");
    }
}
