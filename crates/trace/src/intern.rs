//! The global event interner.
//!
//! Every [`Event`](crate::Event) is a communication `c.m` drawn from the
//! finite alphabet of the model under study, and the same communication
//! recurs in millions of traces. Interning gives each distinct
//! `(channel, value)` pair one immortal [`EventData`] record; an `Event`
//! is then a single pointer, so copying an event is free, equality is a
//! pointer comparison, and hashing reuses a precomputed 64-bit digest.
//!
//! Invariants (relied on throughout the crate; see `DESIGN.md`):
//!
//! * **Stability** — an interned record is never moved or freed, so the
//!   `&'static` references handed out stay valid for the process
//!   lifetime. Records are `Box::leak`ed; the leak is bounded by the
//!   number of *distinct* events, which is finite for every workload
//!   (alphabet × message universe).
//! * **Identity** — two `Event`s are equal iff their data pointers are
//!   equal; the interner guarantees one record per `(channel, value)`.
//! * **Determinism** — `content_hash` is computed with the unseeded
//!   [`FxHasher`](crate::fx::FxHasher) from the channel and value alone,
//!   so hashes (and therefore trace hashes and hash-set behaviour) do
//!   not depend on the order in which threads first intern events.
//! * The sequence number `id` records interning order. It is unique
//!   within the process but **not** stable across runs or threads —
//!   use it for diagnostics, never for ordering or hashing.

use std::sync::{OnceLock, RwLock};

use crate::fx::{FxHashMap, FxHasher};
use crate::{Channel, Value};

/// The immortal record backing one distinct event.
#[derive(Debug)]
pub(crate) struct EventData {
    /// The channel the message passed on.
    pub(crate) channel: Channel,
    /// The message value.
    pub(crate) value: Value,
    /// Deterministic digest of `(channel, value)` under FxHash.
    pub(crate) content_hash: u64,
    /// Interning sequence number (diagnostics only).
    pub(crate) id: u32,
}

type Table = RwLock<FxHashMap<(Channel, Value), &'static EventData>>;

fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(FxHashMap::default()))
}

/// Interns `(channel, value)`, returning the canonical record.
pub(crate) fn intern(channel: Channel, value: Value) -> &'static EventData {
    let key = (channel, value);
    if let Some(data) = table().read().expect("interner lock").get(&key) {
        crate::stats::record_intern_hit();
        return data;
    }
    let mut map = table().write().expect("interner lock");
    if let Some(data) = map.get(&key) {
        crate::stats::record_intern_hit();
        return data; // raced: another thread interned it first
    }
    crate::stats::record_intern_miss();
    let content_hash = {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        h.finish()
    };
    let id = u32::try_from(map.len()).expect("interner capacity");
    let data: &'static EventData = Box::leak(Box::new(EventData {
        channel: key.0.clone(),
        value: key.1.clone(),
        content_hash,
        id,
    }));
    map.insert(key, data);
    data
}

/// Number of distinct events interned so far (diagnostics).
pub fn interned_events() -> usize {
    table().read().expect("interner lock").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern(Channel::simple("itest_wire"), Value::nat(3));
        let b = intern(Channel::simple("itest_wire"), Value::nat(3));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.content_hash, b.content_hash);
    }

    #[test]
    fn distinct_pairs_get_distinct_records() {
        let a = intern(Channel::simple("itest_a"), Value::nat(0));
        let b = intern(Channel::simple("itest_a"), Value::nat(1));
        let c = intern(Channel::simple("itest_b"), Value::nat(0));
        assert!(!std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, c));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn content_hash_ignores_interning_order() {
        // The digest is a pure function of channel and value.
        use std::hash::{Hash, Hasher};
        let d = intern(Channel::indexed("itest_col", 2), Value::sym("ACK"));
        let mut h = crate::fx::FxHasher::default();
        (Channel::indexed("itest_col", 2), Value::sym("ACK")).hash(&mut h);
        assert_eq!(d.content_hash, h.finish());
    }
}
