//! Finite prefix-closed trace sets — the denotations of §3.1.
//!
//! "A prefix closure is any subset `P` of `A*` which satisfies the two
//! conditions: `<> ∈ P` and `st ∈ P ⇒ s ∈ P`."
//!
//! [`TraceSet`] maintains prefix-closure as an invariant: every constructor
//! and operator closes its result. The operators provided are exactly the
//! ones the paper's semantics needs: the prefix operator `(a → P)`, finite
//! unions and intersections, the hiding image `P\C`, and alphabetised
//! parallel composition `P ‖_{X,Y} Q` (computed generatively by
//! synchronised merge rather than via the unbounded padding operator `P↑C`;
//! the two agree on traces over `X ∪ Y` — see the crate tests).
//!
//! Representation: an [`FxHashSet`] keyed by the traces' precomputed
//! chain hashes, so membership tests, closure maintenance, and the child
//! index behind `parallel` are O(1) expected per trace instead of a
//! lexicographic comparison per tree level. Public iteration
//! ([`iter`](TraceSet::iter), [`Display`]) is in sorted trace order, so
//! everything user-visible stays deterministic; internal hot loops use
//! the unordered set directly. The previous `BTreeSet`-backed
//! implementation is retained verbatim as
//! [`NaiveTraceSet`](crate::NaiveTraceSet) and serves as the reference
//! oracle for the equivalence harness in `tests/equiv_naive.rs`.

use std::fmt;

use crate::fx::{FxHashMap, FxHashSet};
use crate::{Channel, ChannelSet, Event, Trace};

/// A finite, prefix-closed set of traces.
///
/// # Examples
///
/// ```
/// use csp_trace::{Channel, Event, TraceSet, Value};
///
/// // (a → STOP): traces <> and <a.1>.
/// let a = Event::new(Channel::simple("a"), Value::nat(1));
/// let p = TraceSet::stop().prefixed(a);
/// assert_eq!(p.len(), 2);
/// assert!(p.is_prefix_closed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSet {
    traces: FxHashSet<Trace>,
}

impl TraceSet {
    /// `{<>}` — the denotation of `STOP`, the least prefix closure.
    pub fn stop() -> Self {
        let mut traces = FxHashSet::default();
        traces.insert(Trace::empty());
        TraceSet { traces }
    }

    /// Builds a prefix-closed set from arbitrary traces by closing under
    /// prefixes.
    ///
    /// # Examples
    ///
    /// ```
    /// use csp_trace::{Trace, TraceSet, Value};
    ///
    /// let t = Trace::parse_like([("a", Value::nat(1)), ("b", Value::nat(2))]);
    /// let p = TraceSet::closure_of([t]);
    /// assert_eq!(p.len(), 3); // <>, <a.1>, <a.1, b.2>
    /// ```
    pub fn closure_of<I: IntoIterator<Item = Trace>>(traces: I) -> Self {
        let mut set = TraceSet::stop();
        for t in traces {
            set.insert_closed(t);
        }
        set
    }

    /// Inserts `t` together with all its prefixes, maintaining closure.
    /// O(#t) expected: prefixes share `t`'s buffer and each membership
    /// probe is a hash lookup.
    pub fn insert_closed(&mut self, t: Trace) {
        // Walk prefixes longest-first; stop as soon as one is present,
        // since the set is already closed below it.
        let mut prefixes = t.prefixes();
        while let Some(p) = prefixes.pop() {
            if !self.traces.insert(p) {
                break;
            }
        }
    }

    /// Number of traces in the set (always ≥ 1: `<>` is a member).
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// A prefix closure is never empty, but this mirrors the collection
    /// convention; it returns `true` only for a (never constructible)
    /// empty set.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Membership test. O(1) expected.
    pub fn contains(&self, t: &Trace) -> bool {
        self.traces.contains(t)
    }

    /// Iterates over the traces in sorted order.
    ///
    /// Sorting makes every user-visible enumeration deterministic; code
    /// that only needs *some* order should prefer
    /// [`iter_unordered`](Self::iter_unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        let mut out: Vec<&Trace> = self.traces.iter().collect();
        out.sort();
        out.into_iter()
    }

    /// Iterates over the traces in unspecified (hash) order, without the
    /// O(n log n) sort of [`iter`](Self::iter).
    pub fn iter_unordered(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Verifies the two §3.1 closure conditions. The invariant is
    /// maintained by construction; this is used by tests and debug
    /// assertions. O(n) expected: each member's immediate parent is an
    /// O(1) shared-buffer view probed with one hash lookup.
    pub fn is_prefix_closed(&self) -> bool {
        self.traces.contains(&Trace::empty())
            && self
                .traces
                .iter()
                .all(|t| t.is_empty() || self.traces.contains(&t.take(t.len() - 1)))
    }

    /// `(a → P) = {<>} ∪ {a^s | s ∈ P}` — §3.1.
    pub fn prefixed(&self, a: Event) -> TraceSet {
        let mut traces = FxHashSet::with_capacity_and_hasher(self.len() + 1, Default::default());
        traces.insert(Trace::empty());
        for s in &self.traces {
            traces.insert(s.cons(a));
        }
        TraceSet { traces }
    }

    /// Binary union — the denotation of `P | Q` (§3.2). Unions of prefix
    /// closures are prefix closures. Clones trace *handles* (an `Arc`
    /// bump each), never event storage.
    pub fn union(&self, other: &TraceSet) -> TraceSet {
        // Start from the larger operand so the per-insert work covers
        // only the smaller one.
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut traces = big.traces.clone();
        for t in &small.traces {
            if !traces.contains(t) {
                traces.insert(t.clone());
            }
        }
        crate::stats::record_union(traces.len());
        TraceSet { traces }
    }

    /// Binary intersection. Intersections of prefix closures are prefix
    /// closures (both contain `<>`).
    pub fn intersection(&self, other: &TraceSet) -> TraceSet {
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        TraceSet {
            traces: small
                .traces
                .iter()
                .filter(|t| big.traces.contains(*t))
                .cloned()
                .collect(),
        }
    }

    /// Subset test — trace refinement. `P ⊆ Q` means every behaviour of
    /// `P` is a behaviour of `Q`. O(|P|) expected.
    pub fn is_subset(&self, other: &TraceSet) -> bool {
        self.traces.is_subset(&other.traces)
    }

    /// `P\C = {s\C | s ∈ P}` — the image under restriction, used for
    /// `chan L; P` (§3.1). The image of a prefix closure under `\C` is
    /// prefix-closed.
    pub fn hide(&self, hidden: &ChannelSet) -> TraceSet {
        let set = TraceSet {
            traces: self.traces.iter().map(|t| t.restrict(hidden)).collect(),
        };
        crate::stats::record_hide(set.len());
        set
    }

    /// Alphabetised parallel composition `P ‖_{X,Y} Q` (§3.1), computed by
    /// synchronised merge: the result contains every trace `s` over `X ∪ Y`
    /// such that `s` projected on `X` is in `P` and `s` projected on `Y`
    /// is in `Q`. Events on channels of `X ∩ Y` require simultaneous
    /// participation of both operands; all other events interleave.
    ///
    /// # Examples
    ///
    /// Two independent processes interleave freely:
    ///
    /// ```
    /// use csp_trace::{Channel, ChannelSet, Event, TraceSet, Value};
    ///
    /// let a = Event::new(Channel::simple("a"), Value::nat(1));
    /// let b = Event::new(Channel::simple("b"), Value::nat(2));
    /// let p = TraceSet::stop().prefixed(a);
    /// let q = TraceSet::stop().prefixed(b);
    /// let x: ChannelSet = ["a"].into_iter().collect();
    /// let y: ChannelSet = ["b"].into_iter().collect();
    /// let par = p.parallel(&x, &q, &y);
    /// assert_eq!(par.len(), 5); // <>, <a.1>, <b.2>, and both 2-event orders
    /// ```
    pub fn parallel(&self, x: &ChannelSet, other: &TraceSet, y: &ChannelSet) -> TraceSet {
        let sync = x.intersection(y);
        // Explore the synchronised product of the two prefix trees on the
        // fly: a state is a composite trace s, whose component positions are
        // its projections s↾X and s↾Y. Only reachable states are visited,
        // so mismatched synchronisations are pruned immediately instead of
        // being enumerated and discarded.
        let kids_p = self.children_index();
        let kids_q = other.children_index();
        let mut out = FxHashSet::default();
        let mut queue = vec![(Trace::empty(), Trace::empty(), Trace::empty())];
        out.insert(Trace::empty());
        while let Some((s, pp, qq)) = queue.pop() {
            let empty = Vec::new();
            let p_next = kids_p.get(&pp).unwrap_or(&empty);
            let q_next = kids_q.get(&qq).unwrap_or(&empty);
            for &e in p_next {
                let joint = sync.contains(e.channel());
                if joint && !q_next.contains(&e) {
                    continue;
                }
                let s2 = s.snoc(e);
                if out.insert(s2.clone()) {
                    let qq2 = if joint { qq.snoc(e) } else { qq.clone() };
                    queue.push((s2, pp.snoc(e), qq2));
                }
            }
            for &e in q_next {
                if sync.contains(e.channel()) {
                    continue; // joint steps were taken from the p side
                }
                let s2 = s.snoc(e);
                if out.insert(s2.clone()) {
                    queue.push((s2, pp.clone(), qq.snoc(e)));
                }
            }
        }
        let set = TraceSet { traces: out };
        crate::stats::record_parallel(set.len());
        debug_assert!(set.is_prefix_closed());
        set
    }

    /// Index mapping each member trace to its one-step extensions' final
    /// events — the prefix-tree child relation. Built once per parallel
    /// composition; O(n) expected, since each parent is an O(1) view of
    /// the child's buffer.
    fn children_index(&self) -> FxHashMap<Trace, Vec<Event>> {
        let mut index: FxHashMap<Trace, Vec<Event>> = FxHashMap::default();
        for t in &self.traces {
            if let Some(&last) = t.last() {
                index.entry(t.take(t.len() - 1)).or_default().push(last);
            }
        }
        index
    }

    /// `P↑C` — the §3.1 *padding* operator: "the set of traces formed by
    /// interleaving a trace of `P` with an arbitrary sequence of
    /// communications on the channels of `C`". Infinite in general, so
    /// this enumeration is bounded: pad events are drawn from the finite
    /// `pad_events` list and results are truncated at `depth`.
    ///
    /// Used by tests to validate the paper's *definition* of parallel
    /// composition, `P ‖_{X,Y} Q = (P↑(Y−X)) ∩ (Q↑(X−Y))`, against the
    /// on-the-fly implementation of [`parallel`](Self::parallel).
    pub fn pad(&self, pad_events: &[Event], depth: usize) -> TraceSet {
        let mut out = FxHashSet::default();
        // All pad sequences up to the remaining length, interleaved with
        // each member trace.
        for t in &self.traces {
            if t.len() > depth {
                continue;
            }
            let budget = depth - t.len();
            for pad_seq in sequences_over(pad_events, budget) {
                for merged in crate::interleave_pair(t, &pad_seq) {
                    out.insert(merged);
                }
            }
        }
        let set = TraceSet { traces: out };
        debug_assert!(set.is_prefix_closed());
        set
    }

    /// The traces of length at most `depth` — used to compare sets that
    /// were enumerated to different depths.
    pub fn up_to_depth(&self, depth: usize) -> TraceSet {
        TraceSet {
            traces: self
                .traces
                .iter()
                .filter(|t| t.len() <= depth)
                .cloned()
                .collect(),
        }
    }

    /// The maximal traces: members that are not a strict prefix of another
    /// member. These summarise the set compactly. Returned in sorted
    /// order. O(n log m) expected (m maximal members): since the set is
    /// prefix-closed, a member is a strict prefix of another iff it is
    /// some member's immediate parent.
    pub fn maximal_traces(&self) -> Vec<&Trace> {
        let parents: FxHashSet<Trace> = self
            .traces
            .iter()
            .filter(|t| !t.is_empty())
            .map(|t| t.take(t.len() - 1))
            .collect();
        let mut out: Vec<&Trace> = self
            .traces
            .iter()
            .filter(|t| !parents.contains(*t))
            .collect();
        out.sort();
        out
    }

    /// The length of the longest member trace.
    pub fn depth(&self) -> usize {
        self.traces.iter().map(Trace::len).max().unwrap_or(0)
    }

    /// The set of channels mentioned by any member trace.
    pub fn channels(&self) -> ChannelSet {
        let mut cs = ChannelSet::new();
        // Maximal traces cover every channel in a prefix-closed set.
        for t in &self.traces {
            cs.extend(t.iter().map(|e| e.channel().clone()));
        }
        cs
    }

    /// The set of events enabled after trace `t`: events `e` with
    /// `t⌢⟨e⟩` in the set, in sorted order. Drives simulation and the
    /// operational/denotational agreement tests.
    pub fn enabled_after(&self, t: &Trace) -> Vec<Event> {
        let mut out = Vec::new();
        for u in &self.traces {
            if u.len() == t.len() + 1 && t.is_prefix_of(u) {
                out.push(*u.last().expect("non-empty by length"));
            }
        }
        out.sort();
        out
    }

    /// The messages enabled on a specific channel after `t`.
    pub fn enabled_on(&self, t: &Trace, c: &Channel) -> Vec<Event> {
        self.enabled_after(t)
            .into_iter()
            .filter(|e| e.channel() == c)
            .collect()
    }
}

/// All traces over the given events with length ≤ `max_len`.
fn sequences_over(events: &[Event], max_len: usize) -> Vec<Trace> {
    let mut out = vec![Trace::empty()];
    let mut frontier = vec![Trace::empty()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for t in &frontier {
            for &e in events {
                let ext = t.snoc(e);
                out.push(ext.clone());
                next.push(ext);
            }
        }
        frontier = next;
    }
    out
}

impl Default for TraceSet {
    fn default() -> Self {
        TraceSet::stop()
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        TraceSet::closure_of(iter)
    }
}

impl fmt::Display for TraceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for t in self.iter() {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn ev(c: &str, n: u32) -> Event {
        Event::new(Channel::simple(c), Value::nat(n))
    }

    fn tr(pairs: &[(&'static str, u32)]) -> Trace {
        Trace::parse_like(pairs.iter().map(|&(c, n)| (c, Value::nat(n))))
    }

    #[test]
    fn stop_is_least_prefix_closure() {
        let s = TraceSet::stop();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Trace::empty()));
        assert!(s.is_prefix_closed());
        // {<>} ⊆ P for every prefix closure P (§3.1).
        let p = TraceSet::closure_of([tr(&[("a", 1)])]);
        assert!(s.is_subset(&p));
    }

    #[test]
    fn closure_of_closes_under_prefixes() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2), ("c", 3)])]);
        assert_eq!(p.len(), 4);
        assert!(p.is_prefix_closed());
        assert!(p.contains(&tr(&[("a", 1)])));
        assert!(p.contains(&tr(&[("a", 1), ("b", 2)])));
    }

    #[test]
    fn prefix_operator_matches_definition() {
        // (a → P) = {<>} ∪ {a^s | s ∈ P}
        let p = TraceSet::closure_of([tr(&[("b", 2)])]);
        let ap = p.prefixed(ev("a", 1));
        assert_eq!(ap.len(), 3); // <>, <a.1>, <a.1, b.2>
        assert!(ap.contains(&Trace::empty()));
        assert!(ap.contains(&tr(&[("a", 1)])));
        assert!(ap.contains(&tr(&[("a", 1), ("b", 2)])));
        assert!(ap.is_prefix_closed());
    }

    #[test]
    fn prefix_distributes_over_union() {
        // (a → ∪ Px) = ∪ (a → Px) — the distributivity theorem of §3.1.
        let p1 = TraceSet::closure_of([tr(&[("b", 1)])]);
        let p2 = TraceSet::closure_of([tr(&[("c", 2)])]);
        let a = ev("a", 0);
        let lhs = p1.union(&p2).prefixed(a);
        let rhs = p1.prefixed(a).union(&p2.prefixed(a));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn union_and_intersection_preserve_closure() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)])]);
        let q = TraceSet::closure_of([tr(&[("a", 1), ("c", 3)])]);
        let u = p.union(&q);
        let i = p.intersection(&q);
        assert!(u.is_prefix_closed());
        assert!(i.is_prefix_closed());
        assert_eq!(i.len(), 2); // <> and <a.1>
        assert_eq!(u.len(), 4); // <>, <a.1>, <a.1 b.2>, <a.1 c.3>
    }

    #[test]
    fn hide_removes_channel_events() {
        let p = TraceSet::closure_of([tr(&[("in", 1), ("w", 1), ("out", 1)])]);
        let c: ChannelSet = ["w"].into_iter().collect();
        let h = p.hide(&c);
        assert!(h.is_prefix_closed());
        assert!(h.contains(&tr(&[("in", 1), ("out", 1)])));
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn parallel_synchronises_on_common_channels() {
        // copier-like: P = <in.1, w.1>, Q = <w.1, out.1>, sync on w.
        let p = TraceSet::closure_of([tr(&[("in", 1), ("w", 1)])]);
        let q = TraceSet::closure_of([tr(&[("w", 1), ("out", 1)])]);
        let x: ChannelSet = ["in", "w"].into_iter().collect();
        let y: ChannelSet = ["w", "out"].into_iter().collect();
        let par = p.parallel(&x, &q, &y);
        // Maximal behaviour: in.1 then joint w.1 then out.1.
        assert!(par.contains(&tr(&[("in", 1), ("w", 1), ("out", 1)])));
        // w cannot happen before in (P must participate and P does in first).
        assert!(!par.contains(&tr(&[("w", 1)])));
        // out cannot precede w.
        assert!(!par.contains(&tr(&[("in", 1), ("out", 1)])));
        assert!(par.is_prefix_closed());
    }

    #[test]
    fn parallel_mismatched_sync_value_deadlocks() {
        let p = TraceSet::closure_of([tr(&[("w", 1)])]);
        let q = TraceSet::closure_of([tr(&[("w", 2)])]);
        let x: ChannelSet = ["w"].into_iter().collect();
        let par = p.parallel(&x, &q, &x);
        // Only the empty trace: the two ends disagree on the message.
        assert_eq!(par.len(), 1);
    }

    #[test]
    fn parallel_disjoint_alphabets_interleaves() {
        let p = TraceSet::closure_of([tr(&[("a", 1)])]);
        let q = TraceSet::closure_of([tr(&[("b", 2)])]);
        let x: ChannelSet = ["a"].into_iter().collect();
        let y: ChannelSet = ["b"].into_iter().collect();
        let par = p.parallel(&x, &q, &y);
        // <>, <a.1>, <b.2>, <a.1 b.2>, <b.2 a.1>
        assert_eq!(par.len(), 5);
    }

    #[test]
    fn parallel_projections_agree_with_membership() {
        // Characterisation: s ∈ P ‖ Q  ⇒  s↾X ∈ P ∧ s↾Y ∈ Q.
        let p = TraceSet::closure_of([tr(&[("in", 1), ("w", 1), ("in", 2)])]);
        let q = TraceSet::closure_of([tr(&[("w", 1), ("out", 1)])]);
        let x: ChannelSet = ["in", "w"].into_iter().collect();
        let y: ChannelSet = ["w", "out"].into_iter().collect();
        let par = p.parallel(&x, &q, &y);
        for s in par.iter() {
            assert!(p.contains(&s.project(&x)), "s↾X ∉ P for {s}");
            assert!(q.contains(&s.project(&y)), "s↾Y ∉ Q for {s}");
        }
    }

    #[test]
    fn maximal_traces_summary() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)]), tr(&[("c", 3)])]);
        let max = p.maximal_traces();
        assert_eq!(max.len(), 2);
    }

    #[test]
    fn enabled_after_computes_next_steps() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)]), tr(&[("a", 1), ("c", 3)])]);
        let next = p.enabled_after(&tr(&[("a", 1)]));
        assert_eq!(next.len(), 2);
        let on_b = p.enabled_on(&tr(&[("a", 1)]), &Channel::simple("b"));
        assert_eq!(on_b.len(), 1);
        assert!(p.enabled_after(&tr(&[("a", 1), ("b", 2)])).is_empty());
    }

    #[test]
    fn up_to_depth_truncates() {
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2), ("c", 3)])]);
        let d = p.up_to_depth(1);
        assert_eq!(d.len(), 2);
        assert!(d.is_prefix_closed());
    }

    #[test]
    fn stop_choice_identity_of_section_4() {
        // §4: STOP | P = P in this model — the model's admitted defect.
        let p = TraceSet::closure_of([tr(&[("a", 1), ("b", 2)])]);
        assert_eq!(TraceSet::stop().union(&p), p);
    }

    #[test]
    fn padding_interleaves_foreign_events() {
        // P = {<>, <a.1>} padded with b-events.
        let p = TraceSet::closure_of([tr(&[("a", 1)])]);
        let b = ev("b", 9);
        let padded = p.pad(std::slice::from_ref(&b), 2);
        assert!(padded.contains(&tr(&[("b", 9), ("a", 1)])));
        assert!(padded.contains(&tr(&[("a", 1), ("b", 9)])));
        assert!(padded.contains(&tr(&[("b", 9), ("b", 9)])));
        assert!(padded.is_prefix_closed());
    }

    #[test]
    fn parallel_matches_paper_padding_definition() {
        // §3.1: P ‖_{X,Y} Q = (P ↑ (Y−X)) ∩ (Q ↑ (X−Y)), on traces over
        // X ∪ Y — validated exhaustively on a small instance against the
        // on-the-fly implementation.
        let p = TraceSet::closure_of([tr(&[("a", 1), ("w", 1)])]);
        let q = TraceSet::closure_of([tr(&[("w", 1), ("b", 2)])]);
        let x: ChannelSet = ["a", "w"].into_iter().collect();
        let y: ChannelSet = ["w", "b"].into_iter().collect();
        let depth = 3;

        // Pad events: every event either set can perform on the other's
        // private channels (finite because the operand sets are finite).
        let events_on = |ts: &TraceSet, cs: &ChannelSet| -> Vec<Event> {
            let mut out: Vec<Event> = ts
                .iter()
                .flat_map(|t| t.iter().copied())
                .filter(|e| cs.contains(e.channel()))
                .collect();
            out.sort();
            out.dedup();
            out
        };
        let y_minus_x = y.difference(&x);
        let x_minus_y = x.difference(&y);
        let p_pad = p.pad(&events_on(&q, &y_minus_x), depth);
        let q_pad = q.pad(&events_on(&p, &x_minus_y), depth);
        let by_definition = p_pad.intersection(&q_pad);

        let by_implementation = p.parallel(&x, &q, &y).up_to_depth(depth);
        assert_eq!(by_definition, by_implementation);
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let p = TraceSet::closure_of([
            tr(&[("c", 3), ("a", 1)]),
            tr(&[("a", 1), ("b", 2)]),
            tr(&[("b", 2)]),
        ]);
        let listed: Vec<String> = p.iter().map(|t| t.to_string()).collect();
        // Lexicographic trace order: prefixes first, then by event order.
        assert_eq!(
            listed,
            ["<>", "<a.1>", "<a.1, b.2>", "<b.2>", "<c.3>", "<c.3, a.1>",]
        );
    }

    #[test]
    fn large_closure_is_near_linear() {
        // Satellite regression test: closing over one 10_000-event trace
        // plus its siblings used to be quadratic (every prefix copied in
        // full). With shared buffers this builds 10_001 views of one
        // buffer and must finish essentially instantly.
        let long: Trace = (0..10_000)
            .map(|i| ev("deep", i % 7))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        let set = TraceSet::closure_of([long.clone()]);
        assert_eq!(set.len(), 10_001);
        assert!(set.is_prefix_closed());
        assert_eq!(set.depth(), 10_000);
        let max = set.maximal_traces();
        assert_eq!(max.len(), 1);
        assert_eq!(*max[0], long);
    }
}
