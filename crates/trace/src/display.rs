//! Timeline rendering of traces.
//!
//! The paper reads traces as "the sequence of communications … up to
//! some moment in time"; [`timeline`] renders that reading as a
//! message-sequence-style chart with one column per channel and one row
//! per moment, which makes recorded runs (especially interleavings of a
//! network's channels) much easier to inspect than the flat
//! `⟨c₁.m₁, …⟩` form.

use crate::Trace;

/// Renders a trace as a channel/time grid.
///
/// # Examples
///
/// ```
/// use csp_trace::{timeline, Trace, Value};
///
/// let t = Trace::parse_like([
///     ("input", Value::nat(3)),
///     ("wire", Value::nat(3)),
///     ("input", Value::nat(5)),
/// ]);
/// let chart = timeline(&t);
/// assert!(chart.contains("input"));
/// assert!(chart.lines().count() >= 4); // header + 3 moments
/// ```
pub fn timeline(trace: &Trace) -> String {
    let channels: Vec<_> = trace.channels().into_iter().collect();
    if channels.is_empty() {
        return "  (empty trace)\n".to_string();
    }
    let names: Vec<String> = channels.iter().map(|c| c.to_string()).collect();
    let widths: Vec<usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            trace
                .iter()
                .filter(|e| e.channel() == &channels[i])
                .map(|e| e.value().to_string().len())
                .chain([n.len()])
                .max()
                .unwrap_or(n.len())
        })
        .collect();

    let mut out = String::new();
    out.push_str("  t  ");
    for (n, w) in names.iter().zip(&widths) {
        out.push_str(&format!("{n:>w$}  "));
    }
    out.push('\n');
    for (i, e) in trace.iter().enumerate() {
        out.push_str(&format!("{:>3}  ", i + 1));
        for (c, w) in channels.iter().zip(&widths) {
            if e.channel() == c {
                out.push_str(&format!("{:>w$}  ", e.value().to_string()));
            } else {
                out.push_str(&format!("{:>w$}  ", "."));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(timeline(&Trace::empty()).contains("empty"));
    }

    #[test]
    fn events_land_in_their_channel_column() {
        let t = Trace::parse_like([
            ("a", Value::nat(1)),
            ("b", Value::nat(2)),
            ("a", Value::nat(3)),
        ]);
        let chart = timeline(&t);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
        // Row 1 has the value under `a` and a dot under `b`.
        assert!(lines[1].contains('1'));
        assert!(lines[1].contains('.'));
        // Row ordering matches trace ordering.
        assert!(lines[3].contains('3'));
    }

    #[test]
    fn column_widths_accommodate_values() {
        let t = Trace::parse_like([("c", Value::Int(12345))]);
        let chart = timeline(&t);
        assert!(chart.contains("12345"));
    }

    #[test]
    fn signals_render_in_grid() {
        let t = Trace::from_events([
            ("wire", Value::nat(1)).into(),
            ("wire", Value::sym("NACK")).into(),
        ]);
        let chart = timeline(&t);
        assert!(chart.contains("NACK"));
    }
}
