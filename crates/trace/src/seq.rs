//! The generic sequence algebra of §2.
//!
//! The paper defines, for message sequences (and implicitly for traces):
//!
//! * `x^s` — prefixing a single element (`cons`),
//! * `#s` — length,
//! * `s_i` — the `i`th element, **1-based**, for `i ∈ {1, …, #s}`,
//! * `s ≤ t ⇔ ∃u. s⌢u = t` — the prefix order,
//! * concatenation `s⌢t` (written `st` in the paper).
//!
//! [`Seq`] implements all of these for any ordered element type; channel
//! histories are `Seq<Value>` and traces wrap `Seq<Event>`.

use std::fmt;

/// An immutable-in-spirit finite sequence with the paper's operators.
///
/// # Examples
///
/// ```
/// use csp_trace::Seq;
///
/// let s: Seq<i32> = [1, 2].into_iter().collect();
/// let t: Seq<i32> = [1, 2, 3].into_iter().collect();
/// assert!(s.is_prefix_of(&t));       // s ≤ t
/// assert_eq!(t.len(), 3);            // #t
/// assert_eq!(t.at(1), Some(&1));     // t₁ (1-based!)
/// assert_eq!(s.cons(0).at(1), Some(&0)); // (0^s)₁ = 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Seq<T> {
    items: Vec<T>,
}

impl<T> Seq<T> {
    /// The empty sequence `<>`.
    pub fn empty() -> Self {
        Seq { items: Vec::new() }
    }

    /// Builds a sequence from a vector of elements.
    pub fn from_vec(items: Vec<T>) -> Self {
        Seq { items }
    }

    /// `#s` — the length of the sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the sequence is `<>`.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `s_i` — the `i`th message of `s`, **1-based** as in the paper
    /// (`i ∈ {1, …, #s}`). Returns `None` when `i` is `0` or exceeds `#s`.
    pub fn at(&self, i: usize) -> Option<&T> {
        if i == 0 {
            None
        } else {
            self.items.get(i - 1)
        }
    }

    /// The first element, if any.
    pub fn head(&self) -> Option<&T> {
        self.items.first()
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.items.last()
    }

    /// Iterates over the elements front to back.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// A view of the underlying elements.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consumes the sequence and returns its elements.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T: Clone> Seq<T> {
    /// `x^s` — the sequence whose first element is `x` and whose remainder
    /// is `s` (§2 operator (1)).
    pub fn cons(&self, x: T) -> Seq<T> {
        let mut items = Vec::with_capacity(self.items.len() + 1);
        items.push(x);
        items.extend_from_slice(&self.items);
        Seq { items }
    }

    /// The sequence with `x` appended at the back.
    pub fn snoc(&self, x: T) -> Seq<T> {
        let mut items = self.items.clone();
        items.push(x);
        Seq { items }
    }

    /// Concatenation `s⌢t` (written `st` in the paper's prefix definition
    /// `s ≤ t ⇔ ∃u. su = t`).
    pub fn concat(&self, other: &Seq<T>) -> Seq<T> {
        let mut items = self.items.clone();
        items.extend_from_slice(&other.items);
        Seq { items }
    }

    /// The remainder after removing the first element; `None` on `<>`.
    pub fn tail(&self) -> Option<Seq<T>> {
        if self.items.is_empty() {
            None
        } else {
            Some(Seq {
                items: self.items[1..].to_vec(),
            })
        }
    }

    /// The prefix consisting of the first `n` elements (all of `s` if
    /// `n ≥ #s`).
    pub fn take(&self, n: usize) -> Seq<T> {
        Seq {
            items: self.items.iter().take(n).cloned().collect(),
        }
    }

    /// The suffix after dropping the first `n` elements.
    pub fn drop_front(&self, n: usize) -> Seq<T> {
        Seq {
            items: self.items.iter().skip(n).cloned().collect(),
        }
    }

    /// The sub-sequence of elements satisfying `keep`.
    pub fn filter(&self, mut keep: impl FnMut(&T) -> bool) -> Seq<T> {
        Seq {
            items: self.items.iter().filter(|x| keep(x)).cloned().collect(),
        }
    }

    /// All prefixes of the sequence, shortest (`<>`) first; `#s + 1` of
    /// them. This is the pointwise prefix closure used by
    /// [`TraceSet`](crate::TraceSet).
    pub fn prefixes(&self) -> Vec<Seq<T>> {
        (0..=self.items.len()).map(|n| self.take(n)).collect()
    }
}

impl<T: PartialEq> Seq<T> {
    /// The prefix order `s ≤ t ⇔ ∃u. s⌢u = t` (§2).
    pub fn is_prefix_of(&self, other: &Seq<T>) -> bool {
        self.items.len() <= other.items.len()
            && self
                .items
                .iter()
                .zip(other.items.iter())
                .all(|(a, b)| a == b)
    }

    /// Strict prefix: `s ≤ t` and `s ≠ t`.
    pub fn is_strict_prefix_of(&self, other: &Seq<T>) -> bool {
        self.items.len() < other.items.len() && self.is_prefix_of(other)
    }
}

impl<T> Default for Seq<T> {
    fn default() -> Self {
        Seq::empty()
    }
}

impl<T> FromIterator<T> for Seq<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Seq {
            items: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<T> for Seq<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<T> IntoIterator for Seq<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Seq<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T: fmt::Display> fmt::Display for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, x) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(xs: &[i32]) -> Seq<i32> {
        xs.iter().copied().collect()
    }

    #[test]
    fn empty_is_prefix_of_everything() {
        assert!(Seq::<i32>::empty().is_prefix_of(&seq(&[1, 2, 3])));
        assert!(Seq::<i32>::empty().is_prefix_of(&Seq::empty()));
    }

    #[test]
    fn prefix_order_definition() {
        // s ≤ t ⇔ ∃u. su = t
        let s = seq(&[1, 2]);
        let t = seq(&[1, 2, 3]);
        assert!(s.is_prefix_of(&t));
        let u = seq(&[3]);
        assert_eq!(s.concat(&u), t);
        assert!(!t.is_prefix_of(&s));
        assert!(!seq(&[2]).is_prefix_of(&t));
        // Reflexive:
        assert!(t.is_prefix_of(&t));
        assert!(!t.is_strict_prefix_of(&t));
        assert!(s.is_strict_prefix_of(&t));
    }

    #[test]
    fn cons_prepends() {
        let s = seq(&[2, 3]);
        let xs = s.cons(1);
        assert_eq!(xs, seq(&[1, 2, 3]));
        assert_eq!(xs.head(), Some(&1));
        assert_eq!(xs.tail().unwrap(), s);
    }

    #[test]
    fn one_based_indexing() {
        let s = seq(&[10, 20, 30]);
        assert_eq!(s.at(0), None);
        assert_eq!(s.at(1), Some(&10));
        assert_eq!(s.at(3), Some(&30));
        assert_eq!(s.at(4), None);
    }

    #[test]
    fn length_and_emptiness() {
        assert_eq!(Seq::<i32>::empty().len(), 0);
        assert!(Seq::<i32>::empty().is_empty());
        assert_eq!(seq(&[1, 2, 3]).len(), 3);
    }

    #[test]
    fn take_drop_filter() {
        let s = seq(&[1, 2, 3, 4]);
        assert_eq!(s.take(2), seq(&[1, 2]));
        assert_eq!(s.take(9), s);
        assert_eq!(s.drop_front(2), seq(&[3, 4]));
        assert_eq!(s.filter(|x| x % 2 == 0), seq(&[2, 4]));
    }

    #[test]
    fn prefixes_enumerates_shortest_first() {
        let s = seq(&[1, 2]);
        let ps = s.prefixes();
        assert_eq!(ps, vec![seq(&[]), seq(&[1]), seq(&[1, 2])]);
    }

    #[test]
    fn snoc_appends() {
        assert_eq!(seq(&[1]).snoc(2), seq(&[1, 2]));
    }

    #[test]
    fn display_uses_angle_brackets() {
        assert_eq!(seq(&[]).to_string(), "<>");
        assert_eq!(seq(&[27, 0, 3]).to_string(), "<27, 0, 3>");
    }

    #[test]
    fn concat_associativity_spot_check() {
        let a = seq(&[1]);
        let b = seq(&[2]);
        let c = seq(&[3]);
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }
}
